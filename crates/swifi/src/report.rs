//! Campaign reporting: the file-based analogue of the paper's GUI controller
//! ("we use a GUI-based controller program to automate this evaluation
//! process when many experiments are needed", §IV.B) — per-experiment CSV
//! records plus a human-readable summary.

use crate::campaign::CampaignResult;
use crate::classify::FiOutcome;
use crate::stats::{aggregate, by_bits, by_class};
use hauberk_telemetry::json::Json;
use std::fmt::Write as _;

/// CSV header for [`to_csv`].
pub const CSV_HEADER: &str = "program,class,hw,bits,delivered,outcome";

/// Serialize every experiment of a campaign as CSV rows (one line per
/// injection, after the header).
pub fn to_csv(r: &CampaignResult) -> String {
    let mut out = String::from(CSV_HEADER);
    out.push('\n');
    for rec in &r.results {
        let _ = writeln!(
            out,
            "{},{},{},{},{},{}",
            r.program, rec.class, rec.hw, rec.bits, rec.delivered, rec.outcome
        );
    }
    out
}

/// Parse [`to_csv`] output back into (program, outcome) pairs — enough for
/// cross-run aggregation in scripts and for round-trip testing.
pub fn outcomes_from_csv(csv: &str) -> Result<Vec<(String, FiOutcome)>, String> {
    let mut lines = csv.lines();
    let header = lines.next().ok_or("empty csv")?;
    if header != CSV_HEADER {
        return Err(format!("unexpected header: {header}"));
    }
    let mut out = Vec::new();
    for (i, line) in lines.enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let cols: Vec<&str> = line.split(',').collect();
        if cols.len() != 6 {
            return Err(format!("line {}: expected 6 columns", i + 2));
        }
        let outcome = FiOutcome::parse(cols[5])
            .ok_or_else(|| format!("line {}: unknown outcome `{}`", i + 2, cols[5]))?;
        out.push((cols[0].to_string(), outcome));
    }
    Ok(out)
}

/// Human-readable campaign summary.
pub fn summarize(r: &CampaignResult) -> String {
    let agg = aggregate(&r.results);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "campaign `{}`: {} experiments, baseline {} work cycles, {} loop detector(s)",
        r.program,
        agg.total(),
        r.golden_cycles,
        r.detectors
    );
    let _ = writeln!(
        out,
        "  failure {:5.1}%  masked {:5.1}%  det&masked {:5.1}%  detected {:5.1}%  undetected {:5.1}%",
        agg.ratio(FiOutcome::Failure) * 100.0,
        agg.ratio(FiOutcome::Masked) * 100.0,
        agg.ratio(FiOutcome::DetectedMasked) * 100.0,
        agg.ratio(FiOutcome::Detected) * 100.0,
        agg.ratio(FiOutcome::Undetected) * 100.0,
    );
    let _ = writeln!(out, "  detection coverage: {:.1}%", agg.coverage() * 100.0);
    if let Some(h) = r.metrics.histogram("detection_latency_cycles") {
        if h.count > 0 {
            let _ = writeln!(
                out,
                "  detection latency (cycles): n={} mean {:.0} p50 {} p99 {} max {}",
                h.count,
                h.mean().unwrap_or(0.0),
                h.quantile(0.5).unwrap_or(0),
                h.quantile(0.99).unwrap_or(0),
                h.max
            );
        }
    }
    for (class, counts) in by_class(&r.results) {
        let _ = writeln!(
            out,
            "  {class:<14} n={:<4} failure {:4.1}% sdc {:4.1}%",
            counts.total(),
            counts.ratio(FiOutcome::Failure) * 100.0,
            counts.sdc_ratio() * 100.0
        );
    }
    for (bits, counts) in by_bits(&r.results) {
        let _ = writeln!(
            out,
            "  {bits:>2}-bit masks    n={:<4} coverage {:5.1}%",
            counts.total(),
            counts.coverage() * 100.0
        );
    }
    out
}

/// Machine-readable campaign summary (mirrors [`summarize`]): outcome
/// ratios, coverage, and the derived metrics snapshot.
pub fn summary_json(r: &CampaignResult) -> Json {
    let agg = aggregate(&r.results);
    let outcomes = [
        FiOutcome::Failure,
        FiOutcome::Masked,
        FiOutcome::DetectedMasked,
        FiOutcome::Detected,
        FiOutcome::Undetected,
    ]
    .iter()
    .map(|&o| (o.to_string(), Json::Num(agg.ratio(o))))
    .collect();
    Json::obj([
        ("program", Json::str(r.program)),
        ("experiments", Json::uint(agg.total() as u64)),
        ("golden_cycles", Json::uint(r.golden_cycles)),
        ("detectors", Json::uint(r.detectors as u64)),
        ("outcome_ratios", Json::Obj(outcomes)),
        ("coverage", Json::Num(agg.coverage())),
        ("metrics", r.metrics.to_json()),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::InjectionResult;
    use hauberk_kir::types::DataClass;
    use hauberk_kir::HwComponent;

    fn sample() -> CampaignResult {
        CampaignResult {
            program: "CP",
            results: vec![
                InjectionResult {
                    class: DataClass::Float,
                    hw: HwComponent::Fpu,
                    bits: 1,
                    delivered: true,
                    outcome: FiOutcome::Detected,
                },
                InjectionResult {
                    class: DataClass::Integer,
                    hw: HwComponent::IAlu,
                    bits: 3,
                    delivered: true,
                    outcome: FiOutcome::Undetected,
                },
                InjectionResult {
                    class: DataClass::Pointer,
                    hw: HwComponent::Mem,
                    bits: 1,
                    delivered: false,
                    outcome: FiOutcome::Masked,
                },
            ],
            golden_cycles: 1234,
            detectors: 2,
            metrics: Default::default(),
        }
    }

    #[test]
    fn csv_round_trips() {
        let r = sample();
        let csv = to_csv(&r);
        assert!(csv.starts_with(CSV_HEADER));
        assert_eq!(csv.lines().count(), 4);
        let back = outcomes_from_csv(&csv).unwrap();
        assert_eq!(back.len(), 3);
        assert_eq!(back[0], ("CP".to_string(), FiOutcome::Detected));
        assert_eq!(back[1].1, FiOutcome::Undetected);
    }

    #[test]
    fn csv_rejects_garbage() {
        assert!(outcomes_from_csv("").is_err());
        assert!(outcomes_from_csv("bad,header\n").is_err());
        let bad_outcome = format!("{CSV_HEADER}\nCP,x,y,1,true,exploded\n");
        assert!(outcomes_from_csv(&bad_outcome).is_err());
    }

    #[test]
    fn summary_contains_key_numbers() {
        let s = summarize(&sample());
        assert!(s.contains("3 experiments"));
        assert!(s.contains("coverage: 66.7%"));
        assert!(s.contains("pointer"));
        assert!(s.contains("3-bit masks"));
    }
}
