//! Random XOR error masks (§VII fault types: single- and multi-bit).

use rand::Rng;

/// The bit counts of the paper's multi-bit study (Fig. 14 / Fig. 15).
pub const PAPER_BIT_COUNTS: [u32; 5] = [1, 3, 6, 10, 15];

/// A random mask with exactly `bits` distinct set bits in a 32-bit word.
pub fn random_mask(rng: &mut impl Rng, bits: u32) -> u32 {
    assert!((1..=32).contains(&bits), "bits must be in 1..=32");
    let mut mask = 0u32;
    while mask.count_ones() < bits {
        mask |= 1u32 << rng.gen_range(0..32u32);
    }
    mask
}

/// `count` random masks of `bits` bits each.
pub fn mask_set(rng: &mut impl Rng, bits: u32, count: usize) -> Vec<u32> {
    (0..count).map(|_| random_mask(rng, bits)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn masks_have_exact_popcount() {
        let mut rng = SmallRng::seed_from_u64(1);
        for bits in PAPER_BIT_COUNTS {
            for _ in 0..100 {
                assert_eq!(random_mask(&mut rng, bits).count_ones(), bits);
            }
        }
    }

    #[test]
    fn masks_are_varied() {
        let mut rng = SmallRng::seed_from_u64(2);
        let set = mask_set(&mut rng, 1, 64);
        let distinct: std::collections::BTreeSet<u32> = set.iter().copied().collect();
        assert!(distinct.len() > 16, "single-bit masks cover many positions");
    }

    #[test]
    #[should_panic(expected = "bits must be")]
    fn zero_bits_rejected() {
        let mut rng = SmallRng::seed_from_u64(3);
        random_mask(&mut rng, 0);
    }
}
