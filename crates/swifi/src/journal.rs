//! Append-only campaign checkpoint journal.
//!
//! The orchestrator journals every completed work unit as one JSONL record,
//! so an interrupted campaign resumes by replaying the journal and skipping
//! finished units — the resumed summary is byte-identical to an
//! uninterrupted run (asserted in `tests/determinism.rs`). The format is
//! documented in `DESIGN.md` §13; in short:
//!
//! ```text
//! {"rec":"meta", "program":…, "kind":…, "seed":…, "plan_len":…,
//!  "shard_size":…, "fingerprint":…, "engine":…} // first line, identity check
//! {"rec":"ckpt", "identity":…, "sections":…, "boundaries":…, "engine":…}
//! {"rec":"unit", "stratum":…, "chunk":…, "lo":…, "hi":…, "results":[…]}
//! {"rec":"quarantine", "stratum":…, "chunk":…, "attempts":…, "error":…}
//! {"rec":"profile", "plan_ns":…, "execute_ns":…, …} // trailing, optional
//! ```
//!
//! Records are self-contained: each `unit` carries every per-injection field
//! the summary needs (outcome, delivery, detection latency, alarms), so a
//! resume never re-executes finished work. Writes happen one flushed line at
//! a time — a kill can tear at most the final line, and the reader
//! tolerates that: a torn/corrupt line is dropped with a warning and its
//! work unit simply re-executes (injections are idempotent: same plan, same
//! seed, same result).

use crate::classify::FiOutcome;
use crate::profile::PhaseProfile;
use hauberk::units::{Stratum, WorkUnitId};
use hauberk_telemetry::json::{self, Json};
use std::collections::BTreeMap;
use std::fs::OpenOptions;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;

/// Journal format version; bumped on incompatible record changes.
/// Version 2 added the `engine` field to the meta record; version 3 added
/// the `sections`/`checkpoint` identity fields and the optional `ckpt`
/// record.
pub const JOURNAL_VERSION: u64 = 3;

/// Campaign identity, written as the journal's first record and checked on
/// resume: resuming a journal written by a different campaign (program,
/// kind, seed, plan, or shard size) is an error, not silent corruption.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalMeta {
    /// Program under test.
    pub program: String,
    /// `"sensitivity"` or `"coverage"`.
    pub kind: String,
    /// Campaign planning seed.
    pub seed: u64,
    /// Number of planned injections.
    pub plan_len: u64,
    /// Injections per work unit.
    pub shard_size: u64,
    /// FNV-1a fingerprint over the full plan (sites, threads, occurrences,
    /// masks) — catches "same seed, different code/config" mismatches.
    pub fingerprint: u64,
    /// Execution engine name (`ExecEngine::name()`). All engines are
    /// observationally equivalent, so mixing them would be *safe* — but a
    /// mixed-engine journal can no longer certify which tier produced the
    /// results, so resume and merge refuse the mix instead.
    pub engine: String,
    /// Number of kernel sections the partitioner found (version 3) — part of
    /// the campaign identity: a different section structure means different
    /// code, even if the plan fingerprint happened to collide.
    pub sections: u64,
    /// Checkpoint identity (version 3): `"off"` for a plain campaign, or the
    /// 16-hex-digit hash of (plan fingerprint, section hash, engine) when
    /// the campaign ran from a shared fault-free checkpoint. Checkpointed
    /// and plain campaigns produce byte-identical summaries, but the journal
    /// certifies which mode produced its records, so resume refuses a mode
    /// mismatch like it refuses an engine mismatch.
    pub checkpoint: String,
}

impl JournalMeta {
    fn to_json(&self) -> Json {
        Json::obj([
            ("rec", Json::str("meta")),
            ("version", Json::uint(JOURNAL_VERSION)),
            ("program", Json::str(self.program.clone())),
            ("kind", Json::str(self.kind.clone())),
            ("seed", Json::uint(self.seed)),
            ("plan_len", Json::uint(self.plan_len)),
            ("shard_size", Json::uint(self.shard_size)),
            // Hex string: the full 64-bit hash does not survive an f64-backed
            // JSON number round-trip.
            (
                "fingerprint",
                Json::str(format!("{:016x}", self.fingerprint)),
            ),
            ("engine", Json::str(self.engine.clone())),
            ("sections", Json::uint(self.sections)),
            ("checkpoint", Json::str(self.checkpoint.clone())),
        ])
    }

    fn from_json(j: &Json) -> Option<JournalMeta> {
        Some(JournalMeta {
            program: j.get("program")?.as_str()?.to_string(),
            kind: j.get("kind")?.as_str()?.to_string(),
            seed: j.get("seed")?.as_u64()?,
            plan_len: j.get("plan_len")?.as_u64()?,
            shard_size: j.get("shard_size")?.as_u64()?,
            fingerprint: u64::from_str_radix(j.get("fingerprint")?.as_str()?, 16).ok()?,
            // Absent in version-1 journals: those were all written by the
            // bytecode-default era, but guessing would defeat the point of
            // recording it — refuse to parse instead (the meta drops and the
            // orchestrator reports the journal as unusable).
            engine: j.get("engine")?.as_str()?.to_string(),
            // Absent before version 3 — same policy: refuse to parse rather
            // than guess whether the journal's records came from a
            // checkpointed run.
            sections: j.get("sections")?.as_u64()?,
            checkpoint: j.get("checkpoint")?.as_str()?.to_string(),
        })
    }
}

/// FNV-1a over a byte stream; the journal's plan fingerprint. Re-exported
/// from [`hauberk::canon`], where all campaign-identity hashing lives (plan
/// fingerprints, checkpoint identities, and the serve daemon's
/// content-addressed cache keys share one implementation).
pub use hauberk::canon::Fnv1a;

/// One journaled injection: everything the summary derivation needs. The
/// static plan fields (class, hw, bits) are *not* journaled — they are
/// re-derived from the deterministically re-generated plan on resume.
#[derive(Debug, Clone, PartialEq)]
pub struct RecordedInjection {
    /// Index into the campaign plan.
    pub index: u64,
    /// Classified five-way outcome.
    pub outcome: FiOutcome,
    /// Whether the armed fault activated.
    pub delivered: bool,
    /// Cycles from delivery to first alarm, when both happened.
    pub latency: Option<u64>,
    /// Labels of detectors that fired (`"nl"` or the detector index).
    pub alarms: Vec<String>,
}

impl RecordedInjection {
    fn to_json(&self) -> Json {
        Json::obj([
            ("i", Json::uint(self.index)),
            ("o", Json::str(self.outcome.to_string())),
            ("d", Json::Bool(self.delivered)),
            ("l", self.latency.map_or(Json::Null, Json::uint)),
            ("a", Json::Arr(self.alarms.iter().map(Json::str).collect())),
        ])
    }

    fn from_json(j: &Json) -> Option<RecordedInjection> {
        Some(RecordedInjection {
            index: j.get("i")?.as_u64()?,
            outcome: FiOutcome::parse(j.get("o")?.as_str()?)?,
            delivered: j.get("d")?.as_bool()?,
            latency: match j.get("l")? {
                Json::Null => None,
                v => Some(v.as_u64()?),
            },
            alarms: j
                .get("a")?
                .as_arr()?
                .iter()
                .map(|a| a.as_str().map(str::to_string))
                .collect::<Option<Vec<_>>>()?,
        })
    }
}

/// A completed work unit's journal record.
#[derive(Debug, Clone, PartialEq)]
pub struct UnitRecord {
    /// Which unit.
    pub id: WorkUnitId,
    /// Plan-index span `[lo, hi)` the unit covered (for human inspection;
    /// the authoritative membership is the re-generated plan's).
    pub lo: u64,
    /// Exclusive upper bound of the span.
    pub hi: u64,
    /// Per-injection records, in plan order.
    pub results: Vec<RecordedInjection>,
}

impl UnitRecord {
    fn to_json(&self) -> Json {
        Json::obj([
            ("rec", Json::str("unit")),
            ("stratum", Json::str(self.id.stratum.key())),
            ("chunk", Json::uint(self.id.chunk as u64)),
            ("lo", Json::uint(self.lo)),
            ("hi", Json::uint(self.hi)),
            (
                "results",
                Json::Arr(self.results.iter().map(|r| r.to_json()).collect()),
            ),
        ])
    }

    fn from_json(j: &Json) -> Option<UnitRecord> {
        Some(UnitRecord {
            id: unit_id_from_json(j)?,
            lo: j.get("lo")?.as_u64()?,
            hi: j.get("hi")?.as_u64()?,
            results: j
                .get("results")?
                .as_arr()?
                .iter()
                .map(RecordedInjection::from_json)
                .collect::<Option<Vec<_>>>()?,
        })
    }
}

/// A quarantined work unit's journal record.
#[derive(Debug, Clone, PartialEq)]
pub struct QuarantineRecord {
    /// Which unit.
    pub id: WorkUnitId,
    /// Execution attempts made (1 + retries).
    pub attempts: u64,
    /// Last failure message.
    pub error: String,
}

impl QuarantineRecord {
    fn to_json(&self) -> Json {
        Json::obj([
            ("rec", Json::str("quarantine")),
            ("stratum", Json::str(self.id.stratum.key())),
            ("chunk", Json::uint(self.id.chunk as u64)),
            ("attempts", Json::uint(self.attempts)),
            ("error", Json::str(self.error.clone())),
        ])
    }

    fn from_json(j: &Json) -> Option<QuarantineRecord> {
        Some(QuarantineRecord {
            id: unit_id_from_json(j)?,
            attempts: j.get("attempts")?.as_u64()?,
            error: j.get("error")?.as_str()?.to_string(),
        })
    }
}

/// Checkpoint-identity record (version 3): written right after the meta of
/// a checkpointed campaign. Where the meta's `checkpoint` field carries only
/// the identity hash, this record spells the identity out for inspection and
/// lets a resume verify the journal's checkpoint provenance even if the meta
/// healed from a fresh rewrite.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointRecord {
    /// 16-hex-digit identity hash — same value as the meta's `checkpoint`.
    pub identity: String,
    /// Kernel sections the partitioner found.
    pub sections: u64,
    /// Distinct block boundaries the store snapshotted.
    pub boundaries: u64,
    /// Engine the checkpoints were captured on.
    pub engine: String,
}

impl CheckpointRecord {
    fn to_json(&self) -> Json {
        Json::obj([
            ("rec", Json::str("ckpt")),
            ("identity", Json::str(self.identity.clone())),
            ("sections", Json::uint(self.sections)),
            ("boundaries", Json::uint(self.boundaries)),
            ("engine", Json::str(self.engine.clone())),
        ])
    }

    fn from_json(j: &Json) -> Option<CheckpointRecord> {
        Some(CheckpointRecord {
            identity: j.get("identity")?.as_str()?.to_string(),
            sections: j.get("sections")?.as_u64()?,
            boundaries: j.get("boundaries")?.as_u64()?,
            engine: j.get("engine")?.as_str()?.to_string(),
        })
    }
}

fn unit_id_from_json(j: &Json) -> Option<WorkUnitId> {
    Some(WorkUnitId {
        stratum: Stratum::parse_key(j.get("stratum")?.as_str()?)?,
        chunk: u32::try_from(j.get("chunk")?.as_u64()?).ok()?,
    })
}

/// Everything a journal replay recovers.
#[derive(Debug, Default)]
pub struct JournalReplay {
    /// Campaign identity (absent only for empty/torn-to-nothing journals).
    pub meta: Option<JournalMeta>,
    /// Completed units by id (later duplicates win — harmless, results are
    /// deterministic, but merge dedup keeps files tidy anyway).
    pub units: BTreeMap<WorkUnitId, UnitRecord>,
    /// Quarantined units by id.
    pub quarantined: BTreeMap<WorkUnitId, QuarantineRecord>,
    /// The latest trailing phase profile, when the journal holds one
    /// (observational timing; never input to resume decisions).
    pub profile: Option<PhaseProfile>,
    /// The checkpoint-identity record of a checkpointed campaign, when
    /// present and untorn (a resume of a checkpointed campaign rewrites a
    /// missing one).
    pub ckpt: Option<CheckpointRecord>,
    /// Lines dropped because they were torn or unparsable.
    pub dropped_lines: usize,
}

impl JournalReplay {
    /// Total injections recovered from completed units.
    pub fn recovered_injections(&self) -> usize {
        self.units.values().map(|u| u.results.len()).sum()
    }
}

/// Read a journal, tolerating a torn final line (and, defensively, any
/// other unparsable line): bad lines are dropped with a warning on stderr
/// and counted in [`JournalReplay::dropped_lines`]. The affected unit is
/// simply re-executed on resume.
pub fn read_journal(path: impl AsRef<Path>) -> Result<JournalReplay, String> {
    let path = path.as_ref();
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let mut replay = JournalReplay::default();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let parsed =
            json::parse(line)
                .ok()
                .and_then(|j| match j.get("rec").and_then(|r| r.as_str()) {
                    Some("meta") => {
                        replay.meta = Some(JournalMeta::from_json(&j)?);
                        Some(())
                    }
                    Some("unit") => {
                        let u = UnitRecord::from_json(&j)?;
                        replay.units.insert(u.id, u);
                        Some(())
                    }
                    Some("quarantine") => {
                        let q = QuarantineRecord::from_json(&j)?;
                        replay.quarantined.insert(q.id, q);
                        Some(())
                    }
                    Some("profile") => {
                        // Trailing timing record; a resumed run appends a
                        // fresh one, so the last profile wins.
                        replay.profile = Some(PhaseProfile::from_json(&j)?);
                        Some(())
                    }
                    Some("ckpt") => {
                        replay.ckpt = Some(CheckpointRecord::from_json(&j)?);
                        Some(())
                    }
                    _ => None,
                });
        if parsed.is_none() {
            eprintln!(
                "warning: {}: dropping torn/corrupt journal record at line {} \
                 ({} bytes); its work unit will re-execute",
                path.display(),
                lineno + 1,
                line.len()
            );
            replay.dropped_lines += 1;
        }
    }
    Ok(replay)
}

/// Append-only journal writer. One record per line, flushed per record, so
/// an interruption tears at most the line being written.
#[derive(Debug)]
pub struct JournalWriter {
    w: Mutex<BufWriter<std::fs::File>>,
}

impl JournalWriter {
    /// Create (or truncate) `path` as a fresh journal and write its meta
    /// record.
    pub fn create(path: impl AsRef<Path>, meta: &JournalMeta) -> Result<Self, String> {
        let path = path.as_ref();
        let f = std::fs::File::create(path).map_err(|e| format!("{}: {e}", path.display()))?;
        let w = JournalWriter {
            w: Mutex::new(BufWriter::new(f)),
        };
        w.write_line(&meta.to_json())?;
        Ok(w)
    }

    /// Open `path` for appending (creating it if needed). When `meta` is
    /// given, it is written immediately — pass it only for fresh journals;
    /// resumed journals already begin with one.
    ///
    /// A journal torn mid-write ends without a newline; appending directly
    /// would weld the next record onto the fragment and corrupt both, so a
    /// missing final newline is healed first.
    pub fn append(path: impl AsRef<Path>, meta: Option<&JournalMeta>) -> Result<Self, String> {
        let path = path.as_ref();
        let torn_tail = std::fs::read(path)
            .map(|d| d.last().is_some_and(|&b| b != b'\n'))
            .unwrap_or(false);
        let mut f = OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(|e| format!("{}: {e}", path.display()))?;
        if torn_tail {
            f.write_all(b"\n")
                .map_err(|e| format!("{}: {e}", path.display()))?;
        }
        let w = JournalWriter {
            w: Mutex::new(BufWriter::new(f)),
        };
        if let Some(m) = meta {
            w.write_line(&m.to_json())?;
        }
        Ok(w)
    }

    fn write_line(&self, j: &Json) -> Result<(), String> {
        let mut g = hauberk_telemetry::lock_recover(&self.w);
        writeln!(g, "{j}").map_err(|e| e.to_string())?;
        g.flush().map_err(|e| e.to_string())
    }

    /// Journal one completed unit.
    pub fn unit(&self, u: &UnitRecord) -> Result<(), String> {
        self.write_line(&u.to_json())
    }

    /// Journal one quarantined unit.
    pub fn quarantine(&self, q: &QuarantineRecord) -> Result<(), String> {
        self.write_line(&q.to_json())
    }

    /// Journal the checkpoint-identity record of a checkpointed campaign.
    /// Written right after the meta; a resume whose replay found none (torn
    /// mid-record, say) appends a fresh copy — the record is identity, not
    /// state, so duplicates are harmless and the last parse wins.
    pub fn ckpt(&self, c: &CheckpointRecord) -> Result<(), String> {
        self.write_line(&c.to_json())
    }

    /// Journal the run's trailing phase profile. Written last (after all
    /// units), never merged across shards, and ignored by the resume
    /// identity check — it is timing observation, not campaign state.
    pub fn profile(&self, p: &PhaseProfile) -> Result<(), String> {
        let mut j = match p.to_json() {
            Json::Obj(m) => m,
            _ => unreachable!("profile serializes to an object"),
        };
        j.insert("rec".into(), Json::str("profile"));
        self.write_line(&Json::Obj(j))
    }
}

/// Write raw journal lines — as streamed back from a remote shard — to
/// `path`, validating each against the record grammar first. Lines that do
/// not parse as a known record are dropped (they would be dropped on replay
/// anyway; dropping them here keeps the per-shard files clean and surfaces
/// transport corruption at collection time). Returns `(written, dropped)`.
///
/// This is the fleet coordinator's journal-collection entry point: a worker
/// daemon emits its finished journal line-by-line over its events stream,
/// the coordinator funnels the lines through here into one file per shard,
/// and [`merge_journals`] then folds the shard files — with the same
/// meta-identity checking a CLI `merge-journals` gets.
pub fn write_journal_lines<'a>(
    path: impl AsRef<Path>,
    lines: impl IntoIterator<Item = &'a str>,
) -> Result<(usize, usize), String> {
    let path = path.as_ref();
    let f = std::fs::File::create(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let mut w = BufWriter::new(f);
    let mut written = 0usize;
    let mut dropped = 0usize;
    for line in lines {
        let valid = json::parse(line)
            .ok()
            .and_then(|j| match j.get("rec").and_then(|r| r.as_str()) {
                Some("meta") => JournalMeta::from_json(&j).map(|_| ()),
                Some("unit") => UnitRecord::from_json(&j).map(|_| ()),
                Some("quarantine") => QuarantineRecord::from_json(&j).map(|_| ()),
                Some("ckpt") => CheckpointRecord::from_json(&j).map(|_| ()),
                Some("profile") => PhaseProfile::from_json(&j).map(|_| ()),
                _ => None,
            })
            .is_some();
        if valid {
            writeln!(w, "{line}").map_err(|e| format!("{}: {e}", path.display()))?;
            written += 1;
        } else {
            dropped += 1;
        }
    }
    w.flush().map_err(|e| format!("{}: {e}", path.display()))?;
    Ok((written, dropped))
}

/// Merge shard journals of one campaign into a single journal at `out`.
///
/// All inputs must carry the same [`JournalMeta`] (same program, kind, seed,
/// plan fingerprint, shard size) — shards of *different* campaigns do not
/// merge. Duplicate unit records deduplicate (first occurrence wins; all
/// copies are identical by determinism); a unit both completed and
/// quarantined resolves to completed. Returns the number of merged unit
/// records.
pub fn merge_journals(out: impl AsRef<Path>, inputs: &[impl AsRef<Path>]) -> Result<usize, String> {
    if inputs.is_empty() {
        return Err("merge-journals: no input journals given".into());
    }
    let mut meta: Option<JournalMeta> = None;
    let mut ckpt: Option<CheckpointRecord> = None;
    let mut units: BTreeMap<WorkUnitId, UnitRecord> = BTreeMap::new();
    let mut quarantined: BTreeMap<WorkUnitId, QuarantineRecord> = BTreeMap::new();
    for input in inputs {
        let replay = read_journal(input)?;
        let m = replay
            .meta
            .ok_or_else(|| format!("{}: journal has no meta record", input.as_ref().display()))?;
        match &meta {
            None => meta = Some(m),
            Some(prev) if *prev != m => {
                return Err(format!(
                    "{}: journal belongs to a different campaign \
                     (fingerprint {:#x} vs {:#x}, engine {} vs {})",
                    input.as_ref().display(),
                    m.fingerprint,
                    prev.fingerprint,
                    m.engine,
                    prev.engine
                ));
            }
            Some(_) => {}
        }
        // Checkpoint identity: the meta equality above already proved every
        // shard shares one, so keep the first spelled-out record we see.
        if ckpt.is_none() {
            ckpt = replay.ckpt;
        }
        for (id, u) in replay.units {
            units.entry(id).or_insert(u);
        }
        for (id, q) in replay.quarantined {
            quarantined.entry(id).or_insert(q);
        }
    }
    // Completed wins over quarantined across shards.
    quarantined.retain(|id, _| !units.contains_key(id));

    let out = out.as_ref();
    let f = std::fs::File::create(out).map_err(|e| format!("{}: {e}", out.display()))?;
    let mut w = BufWriter::new(f);
    let meta = meta.expect("nonempty inputs");
    writeln!(w, "{}", meta.to_json()).map_err(|e| e.to_string())?;
    if let Some(c) = &ckpt {
        writeln!(w, "{}", c.to_json()).map_err(|e| e.to_string())?;
    }
    for u in units.values() {
        writeln!(w, "{}", u.to_json()).map_err(|e| e.to_string())?;
    }
    for q in quarantined.values() {
        writeln!(w, "{}", q.to_json()).map_err(|e| e.to_string())?;
    }
    w.flush().map_err(|e| e.to_string())?;
    Ok(units.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use hauberk_kir::types::DataClass;
    use hauberk_kir::HwComponent;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("hauberk-journal-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{}-{name}", std::process::id()))
    }

    fn meta() -> JournalMeta {
        JournalMeta {
            program: "CP".into(),
            kind: "coverage".into(),
            seed: 0xFEED,
            plan_len: 64,
            shard_size: 8,
            fingerprint: 0xDEADBEEF,
            engine: "bytecode".into(),
            sections: 3,
            checkpoint: "off".into(),
        }
    }

    fn unit(chunk: u32, base: u64) -> UnitRecord {
        let id = WorkUnitId {
            stratum: Stratum {
                hw: HwComponent::Fpu,
                class: DataClass::Float,
            },
            chunk,
        };
        UnitRecord {
            id,
            lo: base,
            hi: base + 2,
            results: vec![
                RecordedInjection {
                    index: base,
                    outcome: FiOutcome::Masked,
                    delivered: true,
                    latency: None,
                    alarms: vec![],
                },
                RecordedInjection {
                    index: base + 1,
                    outcome: FiOutcome::Detected,
                    delivered: true,
                    latency: Some(512),
                    alarms: vec!["nl".into(), "0".into()],
                },
            ],
        }
    }

    #[test]
    fn journal_round_trips() {
        let path = tmp("roundtrip.jsonl");
        let _ = std::fs::remove_file(&path);
        let w = JournalWriter::append(&path, Some(&meta())).unwrap();
        w.unit(&unit(0, 0)).unwrap();
        w.unit(&unit(1, 2)).unwrap();
        w.quarantine(&QuarantineRecord {
            id: WorkUnitId {
                stratum: Stratum {
                    hw: HwComponent::Scheduler,
                    class: DataClass::Integer,
                },
                chunk: 7,
            },
            attempts: 3,
            error: "worker panicked".into(),
        })
        .unwrap();
        drop(w);

        let replay = read_journal(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(replay.meta, Some(meta()));
        assert_eq!(replay.units.len(), 2);
        assert_eq!(replay.quarantined.len(), 1);
        assert_eq!(replay.dropped_lines, 0);
        assert_eq!(replay.recovered_injections(), 4);
        let u = replay.units.values().next().unwrap();
        assert_eq!(u, &unit(0, 0));
        assert_eq!(u.results[1].latency, Some(512));
        assert_eq!(u.results[1].alarms, vec!["nl".to_string(), "0".into()]);
    }

    #[test]
    fn ckpt_record_round_trips_and_survives_merge() {
        let path = tmp("ckpt.jsonl");
        let out = tmp("ckpt-merged.jsonl");
        for p in [&path, &out] {
            let _ = std::fs::remove_file(p);
        }
        let mut m = meta();
        m.checkpoint = "00ff00ff00ff00ff".into();
        let c = CheckpointRecord {
            identity: m.checkpoint.clone(),
            sections: m.sections,
            boundaries: 5,
            engine: m.engine.clone(),
        };
        let w = JournalWriter::append(&path, Some(&m)).unwrap();
        w.ckpt(&c).unwrap();
        w.unit(&unit(0, 0)).unwrap();
        drop(w);

        let replay = read_journal(&path).unwrap();
        assert_eq!(replay.ckpt, Some(c.clone()));
        assert_eq!(replay.dropped_lines, 0);

        // The merged journal preserves the checkpoint-identity record.
        merge_journals(&out, &[&path]).unwrap();
        let merged = read_journal(&out).unwrap();
        assert_eq!(merged.ckpt, Some(c));
        assert_eq!(merged.units.len(), 1);
        for p in [&path, &out] {
            let _ = std::fs::remove_file(p);
        }
    }

    #[test]
    fn raw_lines_round_trip_and_invalid_lines_drop() {
        // Write a journal, re-read it as raw text, funnel the lines through
        // the coordinator's collection entry point, and confirm the replay
        // is unchanged — with garbage lines filtered out along the way.
        let src = tmp("raw-src.jsonl");
        let dst = tmp("raw-dst.jsonl");
        for p in [&src, &dst] {
            let _ = std::fs::remove_file(p);
        }
        let w = JournalWriter::append(&src, Some(&meta())).unwrap();
        w.unit(&unit(0, 0)).unwrap();
        w.unit(&unit(1, 2)).unwrap();
        drop(w);
        let text = std::fs::read_to_string(&src).unwrap();
        let mut lines: Vec<&str> = text.lines().collect();
        lines.push("{\"rec\":\"unit\",\"torn\":tru"); // transport corruption
        lines.push("not json at all");
        let (written, dropped) = write_journal_lines(&dst, lines).unwrap();
        assert_eq!((written, dropped), (3, 2));
        let replay = read_journal(&dst).unwrap();
        assert_eq!(replay.meta, Some(meta()));
        assert_eq!(replay.units.len(), 2);
        assert_eq!(replay.dropped_lines, 0, "collected file is clean");
        for p in [&src, &dst] {
            let _ = std::fs::remove_file(p);
        }
    }

    #[test]
    fn torn_last_line_is_dropped_with_warning() {
        let path = tmp("torn.jsonl");
        let _ = std::fs::remove_file(&path);
        let w = JournalWriter::append(&path, Some(&meta())).unwrap();
        w.unit(&unit(0, 0)).unwrap();
        w.unit(&unit(1, 2)).unwrap();
        drop(w);
        // Tear the last record mid-line, as a kill during write would.
        let text = std::fs::read_to_string(&path).unwrap();
        let keep = text.len() - 17;
        std::fs::write(&path, &text[..keep]).unwrap();

        let replay = read_journal(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(replay.meta, Some(meta()));
        assert_eq!(replay.units.len(), 1, "torn unit dropped");
        assert_eq!(replay.dropped_lines, 1);
        assert!(replay.units.values().next().unwrap().id.chunk == 0);
    }

    #[test]
    fn merge_dedups_and_rejects_foreign_journals() {
        let a = tmp("merge-a.jsonl");
        let b = tmp("merge-b.jsonl");
        let c = tmp("merge-c.jsonl");
        let out = tmp("merge-out.jsonl");
        for p in [&a, &b, &c, &out] {
            let _ = std::fs::remove_file(p);
        }
        let w = JournalWriter::append(&a, Some(&meta())).unwrap();
        w.unit(&unit(0, 0)).unwrap();
        // Unit 1 quarantined on shard A...
        w.quarantine(&QuarantineRecord {
            id: unit(1, 2).id,
            attempts: 3,
            error: "oom".into(),
        })
        .unwrap();
        drop(w);
        let w = JournalWriter::append(&b, Some(&meta())).unwrap();
        w.unit(&unit(0, 0)).unwrap(); // duplicate of shard A's unit
        w.unit(&unit(1, 2)).unwrap(); // ...but completed on shard B
        drop(w);

        let n = merge_journals(&out, &[&a, &b]).unwrap();
        assert_eq!(n, 2);
        let replay = read_journal(&out).unwrap();
        assert_eq!(replay.units.len(), 2);
        assert!(replay.quarantined.is_empty(), "completed wins");

        // A journal from a different campaign refuses to merge.
        let mut other = meta();
        other.fingerprint ^= 1;
        let w = JournalWriter::append(&c, Some(&other)).unwrap();
        w.unit(&unit(2, 4)).unwrap();
        drop(w);
        let err = merge_journals(&out, &[&a, &c]).unwrap_err();
        assert!(err.contains("different campaign"), "{err}");

        // Same campaign identity but a different execution engine also
        // refuses: the meta comparison covers every field.
        let mut cross = meta();
        cross.engine = "batch".into();
        let w = JournalWriter::append(&c, Some(&cross)).unwrap();
        w.unit(&unit(2, 4)).unwrap();
        drop(w);
        let err = merge_journals(&out, &[&a, &c]).unwrap_err();
        assert!(err.contains("different campaign"), "{err}");
        for p in [&a, &b, &c, &out] {
            let _ = std::fs::remove_file(p);
        }
    }
}
