//! The CPU rows of Fig. 1: fault sensitivity of CPU programs by **stack**,
//! **data**, and **code** state, executed on the strict (page-protected)
//! CPU-mode device.
//!
//! * **Stack** faults corrupt local variables through the same FI hooks as
//!   the GPU study.
//! * **Data** faults flip bits of words in the program's allocated memory
//!   before the run ([`hauberk_sim::MemoryBurst`]-style single-word flips).
//! * **Code** faults mutate the program text — a random binary operator of a
//!   random statement is replaced ([`mutate_code`]) — emulating an
//!   instruction-word corruption; mutations that no longer type-check count
//!   as illegal-instruction crashes.

use crate::classify::{classify, FiOutcome};
use crate::mask::random_mask;
use crate::plan::{plan_campaign, PlanConfig};
use crate::stats::OutcomeCounts;
use hauberk::builds::{build, BuildVariant, FtOptions};
use hauberk::program::{golden_run, run_program, HostProgram};
use hauberk::runtime::{FiRuntime, ProfilerRuntime};
use hauberk_kir::expr::BinOp;
use hauberk_kir::stmt::Stmt;
use hauberk_kir::validate::validate_kernel;
use hauberk_kir::visit::rewrite_stmts;
use hauberk_kir::{Expr, KernelDef};
use hauberk_sim::{Device, NullRuntime};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The CPU-state categories of Fig. 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum CpuState {
    /// Local variables.
    Stack,
    /// Memory data.
    Data,
    /// Program text.
    Code,
}

/// Results of a CPU-mode sensitivity study.
#[derive(Debug, Clone, Default)]
pub struct CpuStudyResult {
    /// Outcome counts per category.
    pub stack: OutcomeCounts,
    /// Outcome counts per category.
    pub data: OutcomeCounts,
    /// Outcome counts per category.
    pub code: OutcomeCounts,
}

/// Replace one random binary operator in the kernel with a random different
/// one (an emulated instruction corruption). Returns `None` if the kernel
/// contains no binary operator.
pub fn mutate_code(kernel: &KernelDef, rng: &mut impl Rng) -> Option<KernelDef> {
    // Count binary ops.
    let mut n_ops = 0usize;
    hauberk_kir::visit::for_each_expr(&kernel.body, &mut |e| {
        if matches!(e, Expr::Bin(..)) {
            n_ops += 1;
        }
    });
    if n_ops == 0 {
        return None;
    }
    let victim = rng.gen_range(0..n_ops);
    let replacement = ALL_OPS[rng.gen_range(0..ALL_OPS.len())];

    let mut k = kernel.clone();
    let mut seen = 0usize;
    let body = std::mem::take(&mut k.body);
    k.body = rewrite_stmts(body, &mut |s: Stmt| {
        let mut s = s;
        for e in direct_exprs_mut(&mut s) {
            mutate_expr(e, victim, replacement, &mut seen);
        }
        vec![s]
    });
    Some(k)
}

const ALL_OPS: [BinOp; 12] = [
    BinOp::Add,
    BinOp::Sub,
    BinOp::Mul,
    BinOp::Div,
    BinOp::Rem,
    BinOp::And,
    BinOp::Or,
    BinOp::Xor,
    BinOp::Lt,
    BinOp::Gt,
    BinOp::Eq,
    BinOp::Shl,
];

fn direct_exprs_mut(s: &mut Stmt) -> Vec<&mut Expr> {
    match s {
        Stmt::Assign { value, .. } => vec![value],
        Stmt::Store { ptr, index, value } | Stmt::AtomicAdd { ptr, index, value } => {
            vec![ptr, index, value]
        }
        Stmt::If { cond, .. } => vec![cond],
        Stmt::For {
            init, cond, step, ..
        } => vec![init, cond, step],
        Stmt::While { cond, .. } => vec![cond],
        Stmt::Hook(h) => h.args.iter_mut().collect(),
        _ => vec![],
    }
}

fn mutate_expr(e: &mut Expr, victim: usize, replacement: BinOp, seen: &mut usize) {
    // Pre-order, mirroring `Expr::walk`.
    if let Expr::Bin(op, _, _) = e {
        if *seen == victim {
            *op = replacement;
        }
        *seen += 1;
    }
    match e {
        Expr::Un(_, inner) | Expr::Cast(_, inner) => mutate_expr(inner, victim, replacement, seen),
        Expr::Bin(_, a, b) => {
            mutate_expr(a, victim, replacement, seen);
            mutate_expr(b, victim, replacement, seen);
        }
        Expr::Call(_, args) => {
            for a in args {
                mutate_expr(a, victim, replacement, seen);
            }
        }
        Expr::Load { ptr, index } => {
            mutate_expr(ptr, victim, replacement, seen);
            mutate_expr(index, victim, replacement, seen);
        }
        _ => {}
    }
}

/// Run the three-category CPU sensitivity study on one CPU-mode program.
pub fn run_cpu_study(
    prog: &dyn HostProgram,
    injections_per_category: usize,
    seed: u64,
) -> CpuStudyResult {
    assert!(prog.is_cpu(), "run_cpu_study requires a CPU-mode program");
    let mut rng = SmallRng::seed_from_u64(seed);
    let base = prog.build_kernel();
    let (golden, golden_cycles) = golden_run(prog, 0);
    let spec = prog.spec();
    let budget = crate::campaign::watchdog_budget(golden_cycles, 10);
    let mut out = CpuStudyResult::default();

    // --- Stack: FI hooks into locals (single-bit). -------------------------
    let profiler_build =
        build(&base, BuildVariant::Profiler(FtOptions::default())).expect("profiler build");
    let mut pr = ProfilerRuntime::default();
    let prun = run_program(prog, &profiler_build.kernel, 0, &mut pr, u64::MAX);
    assert!(prun.outcome.is_completed());
    let fi_build = build(&base, BuildVariant::Fi).expect("FI build");
    let plans = plan_campaign(
        &fi_build.fi,
        &pr,
        &PlanConfig {
            vars_per_program: 16,
            // Small CPU kernels expose only a handful of variables; size the
            // per-variable mask count so the plan covers the whole category
            // budget even then.
            masks_per_var: injections_per_category.div_ceil(3).max(2),
            bit_counts: vec![1],
            scheduler_per_mille: 0,
            register_per_mille: 0,
        },
        &mut rng,
    );
    for p in plans.iter().take(injections_per_category) {
        let mut rt = FiRuntime::new(Some(p.fault));
        let run = run_program(prog, &fi_build.kernel, 0, &mut rt, budget);
        out.stack
            .add(classify(&run.outcome, run.output(), &golden, &spec, false));
    }

    // --- Data: single-bit flips of allocated memory words. -----------------
    for _ in 0..injections_per_category {
        let mut dev = Device::new(prog.device_config());
        let args = prog.setup(&mut dev, 0);
        let allocated = dev.mem.allocated();
        let addr = (rng.gen_range(0..allocated / 4)) * 4;
        dev.mem.corrupt_words(addr, 1, random_mask(&mut rng, 1));
        let launch = prog.launch().with_budget(budget);
        let outcome = dev.launch(&base, &args, &launch, &mut NullRuntime);
        let output = outcome
            .is_completed()
            .then(|| prog.read_output(&dev, &args));
        out.data
            .add(classify(&outcome, output.as_deref(), &golden, &spec, false));
    }

    // --- Code: operator mutations. ------------------------------------------
    for _ in 0..injections_per_category {
        // Most single-bit flips of a real instruction word produce an
        // undecodable or privileged encoding, which the CPU faults on
        // immediately; the remainder decode to a *different* valid
        // instruction, emulated as an operator substitution.
        if rng.gen_bool(0.6) {
            out.code.add(FiOutcome::Failure);
            continue;
        }
        let Some(mutant) = mutate_code(&base, &mut rng) else {
            break;
        };
        if validate_kernel(&mutant).is_err() {
            // Ill-typed mutant = illegal instruction = crash.
            out.code.add(FiOutcome::Failure);
            continue;
        }
        let mut dev = Device::new(prog.device_config());
        let args = prog.setup(&mut dev, 0);
        let launch = prog.launch().with_budget(budget);
        let outcome = dev.launch(&mutant, &args, &launch, &mut NullRuntime);
        let output = outcome
            .is_completed()
            .then(|| prog.read_output(&dev, &args));
        out.code
            .add(classify(&outcome, output.as_deref(), &golden, &spec, false));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hauberk_benchmarks::cpu::{CpuKind, CpuProgram};
    use hauberk_benchmarks::ProblemScale;

    #[test]
    fn mutate_code_changes_exactly_one_operator() {
        let prog = CpuProgram::new(CpuKind::MatMul, ProblemScale::Quick);
        let base = prog.build_kernel();
        let mut rng = SmallRng::seed_from_u64(11);
        let mut changed = 0;
        for _ in 0..20 {
            let m = mutate_code(&base, &mut rng).unwrap();
            // Count differing ops via printed form.
            if m != base {
                changed += 1;
            }
        }
        assert!(changed > 10, "most mutations change the kernel: {changed}");
    }

    #[test]
    fn cpu_study_shows_protection_driven_crashes() {
        let prog = CpuProgram::new(CpuKind::Sort, ProblemScale::Quick);
        let r = run_cpu_study(&prog, 40, 3);
        let total_failure = r.stack.failure + r.data.failure + r.code.failure;
        assert!(
            total_failure > 0,
            "strict memory/page protection converts faults into crashes"
        );
        // The paper's key CPU observation: SDC ratio is low (<~10% here,
        // <2.3% in the paper's larger programs).
        let agg = {
            let mut a = r.stack;
            a.merge(&r.data);
            a.merge(&r.code);
            a
        };
        assert!(
            agg.sdc_ratio() < 0.35,
            "CPU SDC ratio stays low: {}",
            agg.sdc_ratio()
        );
        assert!(
            agg.ratio(crate::classify::FiOutcome::Failure) > 0.2,
            "page protection makes failures common on CPU"
        );
    }
}
