//! Aggregation of injection results into the paper's tables.

use crate::classify::{FiOutcome, InjectionResult};
use hauberk_kir::types::DataClass;
use std::collections::BTreeMap;

/// Counts per outcome.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OutcomeCounts {
    /// Crash/hang.
    pub failure: usize,
    /// Fault masked, no alarm.
    pub masked: usize,
    /// Alarm, output still correct.
    pub detected_masked: usize,
    /// Alarm, output incorrect.
    pub detected: usize,
    /// No alarm, output incorrect (SDC escape).
    pub undetected: usize,
}

impl OutcomeCounts {
    /// Add one result.
    pub fn add(&mut self, o: FiOutcome) {
        match o {
            FiOutcome::Failure => self.failure += 1,
            FiOutcome::Masked => self.masked += 1,
            FiOutcome::DetectedMasked => self.detected_masked += 1,
            FiOutcome::Detected => self.detected += 1,
            FiOutcome::Undetected => self.undetected += 1,
        }
    }

    /// Total experiments.
    pub fn total(&self) -> usize {
        self.failure + self.masked + self.detected_masked + self.detected + self.undetected
    }

    /// Ratio of one outcome.
    pub fn ratio(&self, o: FiOutcome) -> f64 {
        let n = self.total();
        if n == 0 {
            return 0.0;
        }
        let c = match o {
            FiOutcome::Failure => self.failure,
            FiOutcome::Masked => self.masked,
            FiOutcome::DetectedMasked => self.detected_masked,
            FiOutcome::Detected => self.detected,
            FiOutcome::Undetected => self.undetected,
        };
        c as f64 / n as f64
    }

    /// The paper's "SDC ratio" for baseline sensitivity studies: undetected
    /// violations.
    pub fn sdc_ratio(&self) -> f64 {
        self.ratio(FiOutcome::Undetected)
    }

    /// Detection coverage = 1 − P(undetected).
    pub fn coverage(&self) -> f64 {
        1.0 - self.sdc_ratio()
    }

    /// Merge another count set.
    pub fn merge(&mut self, o: &OutcomeCounts) {
        self.failure += o.failure;
        self.masked += o.masked;
        self.detected_masked += o.detected_masked;
        self.detected += o.detected;
        self.undetected += o.undetected;
    }
}

/// Aggregate all results.
pub fn aggregate(results: &[InjectionResult]) -> OutcomeCounts {
    let mut c = OutcomeCounts::default();
    for r in results {
        c.add(r.outcome);
    }
    c
}

/// Group by the corrupted state's data class (Fig. 1).
pub fn by_class(results: &[InjectionResult]) -> BTreeMap<DataClass, OutcomeCounts> {
    let mut m: BTreeMap<DataClass, OutcomeCounts> = BTreeMap::new();
    for r in results {
        m.entry(r.class).or_default().add(r.outcome);
    }
    m
}

/// Group by error-bit count (Fig. 14).
pub fn by_bits(results: &[InjectionResult]) -> BTreeMap<u32, OutcomeCounts> {
    let mut m: BTreeMap<u32, OutcomeCounts> = BTreeMap::new();
    for r in results {
        m.entry(r.bits).or_default().add(r.outcome);
    }
    m
}

/// Coverage under `n` independent faults: `1 - (1 - c)^n` (§IX.B's two-fault
/// example: c = 0.868 → 98.3%).
pub fn multi_fault_coverage(single_fault_coverage: f64, n: u32) -> f64 {
    1.0 - (1.0 - single_fault_coverage).powi(n as i32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hauberk_kir::HwComponent;

    fn res(class: DataClass, bits: u32, outcome: FiOutcome) -> InjectionResult {
        InjectionResult {
            class,
            hw: HwComponent::Fpu,
            bits,
            delivered: true,
            outcome,
        }
    }

    #[test]
    fn aggregation_and_ratios() {
        let rs = vec![
            res(DataClass::Float, 1, FiOutcome::Masked),
            res(DataClass::Float, 1, FiOutcome::Undetected),
            res(DataClass::Integer, 1, FiOutcome::Failure),
            res(DataClass::Integer, 3, FiOutcome::Detected),
        ];
        let all = aggregate(&rs);
        assert_eq!(all.total(), 4);
        assert_eq!(all.sdc_ratio(), 0.25);
        assert_eq!(all.coverage(), 0.75);

        let cls = by_class(&rs);
        assert_eq!(cls[&DataClass::Float].total(), 2);
        assert_eq!(cls[&DataClass::Integer].failure, 1);

        let bits = by_bits(&rs);
        assert_eq!(bits[&1].total(), 3);
        assert_eq!(bits[&3].detected, 1);
    }

    #[test]
    fn paper_two_fault_coverage_number() {
        let c = multi_fault_coverage(0.868, 2);
        assert!((c - 0.9826).abs() < 1e-3, "{c}");
    }

    #[test]
    fn empty_counts_are_safe() {
        let c = OutcomeCounts::default();
        assert_eq!(c.ratio(FiOutcome::Masked), 0.0);
        assert_eq!(c.coverage(), 1.0);
    }
}
