//! Sharded, resumable campaign orchestration with adaptive sampling.
//!
//! The orchestrator decomposes a campaign into deterministic **work units**
//! — one [`hauberk::Stratum`] (hardware component × data class) split into
//! fixed-size chunks of plan indices — and executes them with:
//!
//! * **journaling** ([`crate::journal`]): every completed unit is appended
//!   to a JSONL checkpoint, so `--resume` skips finished work and converges
//!   to a summary byte-identical to an uninterrupted run;
//! * **adaptive sampling** ([`crate::sampler`]): with a target CI width set,
//!   each stratum stops drawing units once the Wilson interval on its SDC
//!   rate is narrow enough — converged strata stop early while rare-outcome
//!   strata keep sampling;
//! * **graceful degradation**: a work unit whose execution panics is retried
//!   up to `max_retries` times and then quarantined (recorded in the journal
//!   and telemetry), never aborting the campaign;
//! * **sharding** (`--shard i/m`): strata are distributed round-robin over
//!   `m` independent processes whose journals later `merge-journals` into
//!   one.
//!
//! ## Determinism contract
//!
//! Strata execute in [`Stratum`] order and the units of a stratum execute
//! strictly in chunk order (parallelism lives *inside* a unit, across its
//! injections), so the adaptive stopping decision for a stratum depends only
//! on that stratum's own unit prefix. Metrics and results are rebuilt at
//! finalize time from the recorded injections sorted by plan index — never
//! accumulated live — so a journal-replayed unit and a freshly-executed unit
//! contribute identically. Consequences, asserted in `tests/determinism.rs`:
//!
//! * same config, any interruption point → byte-identical summary;
//! * adaptive **off**: the summary is also invariant to `shard_size`;
//! * adaptive **on**: deterministic per `shard_size` (the stopping point is
//!   quantized to unit boundaries, so coarser units sample more).

use crate::campaign::{
    campaign_telemetry, finish_campaign, prepare_campaign, record_injection, CampaignConfig,
    CampaignEnv, CampaignKind, CampaignResult,
};
use crate::checkpoint::{CheckpointStats, CheckpointStore, SectionOutcome};
use crate::classify::InjectionResult;
use crate::journal::{
    read_journal, CheckpointRecord, Fnv1a, JournalMeta, JournalReplay, JournalWriter,
    QuarantineRecord, RecordedInjection, UnitRecord,
};
use crate::plan::InjectionPlan;
use crate::profile::{flag_stragglers, PhaseAcc, PhaseProfile};
use crate::report;
use crate::sampler::{wilson_interval, AdaptiveConfig};
use crate::stats::OutcomeCounts;
use hauberk::program::HostProgram;
use hauberk::units::{Stratum, WorkUnitId};
use hauberk_telemetry::json::Json;
use hauberk_telemetry::metrics::Registry;
use hauberk_telemetry::progress::Progress;
use hauberk_telemetry::span::with_parent;
use hauberk_telemetry::{Event, Telemetry};
use rayon::prelude::*;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::time::Instant;

/// Fault-injection hook for the orchestrator's own failure paths: force the
/// named work unit's first `fail_attempts` execution attempts to fail, so
/// tests exercise retry and quarantine deterministically.
#[derive(Debug, Clone, Copy)]
pub struct ChaosConfig {
    /// Stratum of the unit to sabotage.
    pub stratum: Stratum,
    /// Chunk of the unit to sabotage.
    pub chunk: u32,
    /// How many attempts fail before the unit is allowed to succeed (set it
    /// above `max_retries` to force quarantine).
    pub fail_attempts: u32,
    /// Fail by `panic!`-ing on a worker thread (exercising the real
    /// `catch_unwind` recovery) instead of returning a synthetic error.
    pub panics: bool,
}

/// Orchestration parameters, on top of a [`CampaignConfig`].
#[derive(Debug, Clone, Default)]
pub struct OrchestratorConfig {
    /// Injections per work unit (0 = default 32). Smaller units checkpoint
    /// and adapt at finer grain but journal more records.
    pub shard_size: usize,
    /// Adaptive early stopping; `None` = exhaustive sweep.
    pub adaptive: Option<AdaptiveConfig>,
    /// Re-execution attempts for a panicking work unit before quarantine.
    pub max_retries: u32,
    /// Write a fresh checkpoint journal here (truncates an existing file).
    pub journal_path: Option<PathBuf>,
    /// Resume from (and keep appending to) this journal.
    pub resume_from: Option<PathBuf>,
    /// `(index, modulus)`: execute only strata with ordinal ≡ index (mod
    /// modulus). Other strata are reported as planned-but-not-owned.
    pub shard: Option<(u32, u32)>,
    /// Correlation trace id carried on the root `campaign` span (the serve
    /// daemon assigns one per request; `None` for plain CLI runs).
    pub trace: Option<String>,
    /// Execute injections from a shared fault-free checkpoint
    /// ([`crate::checkpoint`]): one reference run captures per-block
    /// snapshots, each injection restores and executes only its own block.
    /// Summaries are byte-identical either way; only simulated cycles drop.
    /// Falls back to full re-execution (with a stderr warning) when the
    /// campaign is ineligible.
    pub checkpoint: bool,
    /// Test-only failure injection for the retry/quarantine path.
    pub chaos: Option<ChaosConfig>,
    /// Cooperative cancellation flag, checked at work-unit boundaries: once
    /// set, the campaign stops before drawing its next unit and returns an
    /// error containing [`CANCELED`]. Everything journaled so far stays
    /// valid — a later resume replays it — so cancellation loses at most
    /// the unit in flight. The serve daemon wires `DELETE
    /// /v1/campaigns/:id` to this flag.
    pub stop: Option<std::sync::Arc<std::sync::atomic::AtomicBool>>,
}

/// Marker substring of the error [`run_orchestrated_campaign`] returns when
/// [`OrchestratorConfig::stop`] cancels the campaign. Callers that need to
/// distinguish "canceled on request" from real failures (the serve daemon
/// maps the former to a `canceled` job phase, not `failed`) match on this.
pub const CANCELED: &str = "campaign canceled at a work-unit boundary";

impl OrchestratorConfig {
    /// Default injections per work unit.
    pub const DEFAULT_SHARD_SIZE: usize = 32;

    /// Default retry budget before quarantine.
    pub const DEFAULT_MAX_RETRIES: u32 = 2;

    /// Config with explicit defaults (shard size 32, 2 retries, exhaustive,
    /// no journal).
    pub fn exhaustive() -> Self {
        OrchestratorConfig {
            shard_size: Self::DEFAULT_SHARD_SIZE,
            max_retries: Self::DEFAULT_MAX_RETRIES,
            ..Default::default()
        }
    }

    fn effective_shard_size(&self) -> usize {
        if self.shard_size == 0 {
            Self::DEFAULT_SHARD_SIZE
        } else {
            self.shard_size
        }
    }
}

/// Per-stratum outcome of an orchestrated campaign.
#[derive(Debug, Clone)]
pub struct StratumReport {
    /// The stratum.
    pub stratum: Stratum,
    /// Injections the plan holds for this stratum.
    pub planned: u64,
    /// Tally over the injections actually executed (or replayed).
    pub counts: OutcomeCounts,
    /// Wilson interval on the SDC rate at the reporting confidence.
    pub ci: (f64, f64),
    /// Whether adaptive sampling stopped this stratum before exhausting it.
    pub stopped_early: bool,
    /// Whether this process's shard owned the stratum.
    pub owned: bool,
}

impl StratumReport {
    /// Injections executed (or replayed) in this stratum.
    pub fn executed(&self) -> u64 {
        self.counts.total() as u64
    }

    fn to_json(&self) -> Json {
        Json::obj([
            ("stratum", Json::str(self.stratum.key())),
            ("planned", Json::uint(self.planned)),
            ("executed", Json::uint(self.executed())),
            ("sdc", Json::Num(self.counts.sdc_ratio())),
            ("ci_lo", Json::Num(self.ci.0)),
            ("ci_hi", Json::Num(self.ci.1)),
            ("stopped_early", Json::Bool(self.stopped_early)),
            ("owned", Json::Bool(self.owned)),
        ])
    }
}

/// Output of [`run_orchestrated_campaign`]: the plain campaign result plus
/// the orchestration ledger.
#[derive(Debug, Clone)]
pub struct ShardedCampaignResult {
    /// The campaign result (results sorted by plan index; metrics rebuilt
    /// deterministically at finalize).
    pub campaign: CampaignResult,
    /// Per-stratum reports, in stratum order.
    pub strata: Vec<StratumReport>,
    /// Units that exhausted their retry budget.
    pub quarantined: Vec<QuarantineRecord>,
    /// Total planned injections (all strata, owned or not).
    pub planned: u64,
    /// Injections executed or replayed by this process.
    pub executed: u64,
    /// Work units skipped because the journal already held them.
    pub resumed_units: u64,
    /// Injections recovered from the journal instead of re-executed.
    pub resumed_injections: u64,
    /// Torn/corrupt journal lines dropped during replay.
    pub dropped_lines: u64,
    /// Per-phase wall-time profile of this run. Like the resume statistics,
    /// it lives on the struct and stays out of [`Self::summary_json`] /
    /// [`Self::summarize`], whose bytes are resume-invariant.
    pub profile: PhaseProfile,
    /// Work cycles this process actually simulated (golden/reference runs
    /// excluded for plain campaigns, included once for checkpointed ones;
    /// journal-replayed units simulated nothing). Observational, like the
    /// profile: checkpointing changes this number and nothing in the
    /// summaries.
    pub sim_cycles: u64,
    /// Checkpoint savings ledger, when the campaign ran from a shared
    /// fault-free checkpoint (struct-only, never serialized).
    pub checkpoint: Option<CheckpointStats>,
    /// Per-section outcome tallies: the executed injections grouped by the
    /// kernel section their fault window falls in. Composing these recovers
    /// the campaign totals exactly (every plan maps to at most one section).
    /// Struct-only, like the profile.
    pub section_outcomes: Vec<SectionOutcome>,
    /// The raw per-injection records in plan order — what a journal would
    /// hold. The hardening optimizer joins these against the plan list to
    /// attribute each undetected SDC to a candidate site. Struct-only, never
    /// serialized (the journal is the on-disk form).
    pub records: Vec<RecordedInjection>,
}

impl ShardedCampaignResult {
    /// Machine-readable summary. Contains only resume-invariant fields, so
    /// an interrupted-and-resumed campaign serializes byte-identically to an
    /// uninterrupted one (asserted in `tests/determinism.rs`); resume
    /// statistics live on the struct, not in the summary.
    pub fn summary_json(&self) -> Json {
        Json::obj([
            ("campaign", report::summary_json(&self.campaign)),
            ("planned", Json::uint(self.planned)),
            ("executed", Json::uint(self.executed)),
            (
                "strata",
                Json::Arr(self.strata.iter().map(|s| s.to_json()).collect()),
            ),
            (
                "quarantined",
                Json::Arr(
                    self.quarantined
                        .iter()
                        .map(|q| {
                            Json::obj([
                                ("unit", Json::str(q.id.to_string())),
                                ("attempts", Json::uint(q.attempts)),
                                ("error", Json::str(q.error.clone())),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Human-readable summary (same resume-invariance as
    /// [`Self::summary_json`]).
    pub fn summarize(&self) -> String {
        let mut out = report::summarize(&self.campaign);
        let _ = writeln!(
            out,
            "  strata ({} of {} planned injections executed):",
            self.executed, self.planned
        );
        for s in &self.strata {
            let mut note = String::new();
            if s.stopped_early {
                note.push_str("  [converged]");
            }
            if !s.owned {
                note.push_str("  [other shard]");
            }
            let _ = writeln!(
                out,
                "    {:<22} planned {:<5} executed {:<5} sdc {:5.1}%  ci [{:5.1}%, {:5.1}%]{note}",
                s.stratum.key(),
                s.planned,
                s.executed(),
                s.counts.sdc_ratio() * 100.0,
                s.ci.0 * 100.0,
                s.ci.1 * 100.0,
            );
        }
        for q in &self.quarantined {
            let _ = writeln!(
                out,
                "  quarantined {} after {} attempt(s): {}",
                q.id, q.attempts, q.error
            );
        }
        out
    }
}

/// FNV-1a fingerprint over the full plan: fault sites, arming, masks. Same
/// seed but different code or planning config → different fingerprint, so a
/// stale journal is rejected instead of silently mis-replayed.
pub fn fingerprint_plans(plans: &[InjectionPlan]) -> u64 {
    let mut h = Fnv1a::default();
    for p in plans {
        h.write(format!("{:?}|{}|{}|{}\n", p.fault, p.class, p.hw, p.bits).as_bytes());
    }
    h.finish()
}

/// Run a campaign through the sharded orchestrator. Errors only on journal
/// problems (unreadable resume file, foreign campaign, unwritable journal);
/// execution failures degrade to quarantined units instead.
pub fn run_orchestrated_campaign(
    prog: &dyn HostProgram,
    kind: CampaignKind,
    cfg: &CampaignConfig,
    orch: &OrchestratorConfig,
) -> Result<ShardedCampaignResult, String> {
    run_orchestrated_campaign_traced(prog, kind, cfg, orch, campaign_telemetry(cfg))
}

/// [`run_orchestrated_campaign`] with a caller-supplied telemetry pipeline
/// instead of the file sink derived from `cfg.trace_path`. The serve daemon
/// uses this to fan campaign events into per-job in-memory buffers that back
/// its live progress streams; the summary is byte-identical either way
/// (telemetry is observation only, never input to the result).
pub fn run_orchestrated_campaign_traced(
    prog: &dyn HostProgram,
    kind: CampaignKind,
    cfg: &CampaignConfig,
    orch: &OrchestratorConfig,
    tele: Telemetry,
) -> Result<ShardedCampaignResult, String> {
    let t_wall = Instant::now();
    let mut campaign_span = tele.span_traced("campaign", orch.trace.clone());
    campaign_span.attr_with("program", || prog.name().to_string());
    campaign_span.attr("kind", kind.label());

    let t_plan = Instant::now();
    let env = {
        let _plan_span = tele.span("plan");
        prepare_campaign(prog, &kind, cfg)
    };
    let plan_ns = t_plan.elapsed().as_nanos() as u64;
    let shard_size = orch.effective_shard_size();
    let sections = hauberk_kir::partition_sections(&env.build.kernel);
    let engine_name = cfg
        .engine
        .unwrap_or_else(hauberk_sim::default_engine)
        .name()
        .to_string();

    // Build the shared checkpoint store before the journal meta: whether the
    // build succeeds decides the campaign's checkpoint identity. Ineligible
    // campaigns degrade to full re-execution rather than failing.
    let store = if orch.checkpoint {
        match CheckpointStore::build(&env, prog) {
            Ok(s) => {
                // The one shared reference run is real simulation work;
                // charge it once so the cycle ledger stays honest.
                env.add_sim_cycles(s.reference_cycles);
                Some(s)
            }
            Err(e) => {
                eprintln!(
                    "warning: checkpointing ineligible for this campaign \
                     ({e}); falling back to full re-execution"
                );
                None
            }
        }
    } else {
        None
    };
    let fingerprint = fingerprint_plans(&env.plans);
    let checkpoint_id = store.as_ref().map(|_| {
        // Identity of the checkpointed execution mode: the plan, the kernel's
        // section structure, and the engine the snapshots were captured on.
        let mut h = Fnv1a::default();
        h.write(&fingerprint.to_le_bytes());
        h.write(&sections.section_hash().to_le_bytes());
        h.write(engine_name.as_bytes());
        format!("{:016x}", h.finish())
    });
    let meta = JournalMeta {
        program: prog.name().to_string(),
        kind: kind.label().to_string(),
        seed: cfg.seed,
        plan_len: env.plans.len() as u64,
        shard_size: shard_size as u64,
        fingerprint,
        engine: engine_name.clone(),
        sections: sections.sections.len() as u64,
        checkpoint: checkpoint_id.clone().unwrap_or_else(|| "off".into()),
    };

    let mut journal_ns = 0u64;
    let mut replay = JournalReplay::default();
    if let Some(path) = &orch.resume_from {
        let t = Instant::now();
        replay = read_journal(path)?;
        journal_ns += t.elapsed().as_nanos() as u64;
        if let Some(m) = &replay.meta {
            if *m != meta {
                // Name the field that actually disagrees — "fingerprint
                // mismatch" when only the shard size differs sends the
                // operator down the wrong road.
                let diffs: Vec<String> = [
                    ("program", m.program.clone(), meta.program.clone()),
                    ("kind", m.kind.clone(), meta.kind.clone()),
                    ("seed", m.seed.to_string(), meta.seed.to_string()),
                    ("plans", m.plan_len.to_string(), meta.plan_len.to_string()),
                    (
                        "shard-size",
                        m.shard_size.to_string(),
                        meta.shard_size.to_string(),
                    ),
                    (
                        "fingerprint",
                        format!("{:016x}", m.fingerprint),
                        format!("{:016x}", meta.fingerprint),
                    ),
                    ("engine", m.engine.clone(), meta.engine.clone()),
                    (
                        "sections",
                        m.sections.to_string(),
                        meta.sections.to_string(),
                    ),
                    ("checkpoint", m.checkpoint.clone(), meta.checkpoint.clone()),
                ]
                .into_iter()
                .filter(|(_, a, b)| a != b)
                .map(|(k, a, b)| format!("{k} {a}, expected {b}"))
                .collect();
                return Err(format!(
                    "{}: journal belongs to a different campaign ({})",
                    path.display(),
                    diffs.join("; ")
                ));
            }
        }
    }
    let t_writer = Instant::now();
    let writer = match (&orch.resume_from, &orch.journal_path) {
        (Some(path), _) => {
            // Resumed journals already begin with a meta record unless the
            // file was torn down to nothing.
            let need_meta = replay.meta.is_none();
            Some(JournalWriter::append(
                path,
                if need_meta { Some(&meta) } else { None },
            )?)
        }
        (None, Some(path)) => Some(JournalWriter::create(path, &meta)?),
        (None, None) => None,
    };
    // Spell the checkpoint identity out right after the meta. A fresh
    // journal never holds one yet; a resumed journal normally does, unless
    // the original record was torn away — either way, write it iff the
    // replay recovered none.
    if let (Some(w), Some(s), Some(id)) = (&writer, &store, &checkpoint_id) {
        if replay.ckpt.is_none() {
            w.ckpt(&CheckpointRecord {
                identity: id.clone(),
                sections: sections.sections.len() as u64,
                boundaries: s.boundaries(),
                engine: engine_name.clone(),
            })?;
        }
    }
    journal_ns += t_writer.elapsed().as_nanos() as u64;

    // Partition plan indices by stratum (plan order preserved inside each).
    let mut strata: BTreeMap<Stratum, Vec<usize>> = BTreeMap::new();
    for (i, p) in env.plans.iter().enumerate() {
        strata
            .entry(Stratum {
                hw: p.hw,
                class: p.class,
            })
            .or_default()
            .push(i);
    }

    let progress = Progress::new(prog.name(), env.plans.len() as u64, cfg.progress_every);
    tele.emit_with(|| Event::CampaignStarted {
        program: prog.name().to_string(),
        runs: env.plans.len() as u64,
    });

    let mut reports: Vec<StratumReport> = Vec::with_capacity(strata.len());
    let mut consumed_units: Vec<UnitRecord> = Vec::new();
    let mut quarantined: Vec<QuarantineRecord> = Vec::new();
    let mut resumed_units = 0u64;
    let mut resumed_injections = 0u64;
    let report_z = orch.adaptive.as_ref().map_or(1.96, |a| a.z);
    let phases = PhaseAcc::default();
    let mut sample_decision_ns = 0u64;
    let mut unit_walls: Vec<(String, u64)> = Vec::new();

    for (ordinal, (stratum, idxs)) in strata.iter().enumerate() {
        let owned = orch
            .shard
            .is_none_or(|(i, m)| m != 0 && ordinal as u32 % m == i);
        if !owned {
            reports.push(StratumReport {
                stratum: *stratum,
                planned: idxs.len() as u64,
                counts: OutcomeCounts::default(),
                ci: (0.0, 1.0),
                stopped_early: false,
                owned: false,
            });
            continue;
        }

        let mut stratum_span = tele.span("stratum");
        stratum_span.attr_with("stratum", || stratum.key());

        let mut counts = OutcomeCounts::default();
        let mut stopped_early = false;
        for (chunk, span) in idxs.chunks(shard_size).enumerate() {
            if orch
                .stop
                .as_ref()
                .is_some_and(|s| s.load(std::sync::atomic::Ordering::SeqCst))
            {
                // The journal (if any) already holds every finished unit —
                // flushed line by line — so the cancellation point needs no
                // cleanup and a resume picks up exactly here.
                return Err(CANCELED.to_string());
            }
            if let Some(ad) = &orch.adaptive {
                let t_ad = Instant::now();
                let converged = ad.converged(&counts);
                sample_decision_ns += t_ad.elapsed().as_nanos() as u64;
                if converged {
                    stopped_early = true;
                    let skipped = (idxs.len() - chunk * shard_size) as u64;
                    let width = crate::sampler::ci_width(&counts, ad.z);
                    tele.emit_with(|| Event::StratumConverged {
                        stratum: stratum.key(),
                        samples: counts.total() as u64,
                        ci_width: width,
                        skipped,
                    });
                    break;
                }
            }
            let id = WorkUnitId {
                stratum: *stratum,
                chunk: chunk as u32,
            };
            if let Some(u) = replay.units.get(&id) {
                for r in &u.results {
                    counts.add(r.outcome);
                }
                resumed_units += 1;
                resumed_injections += u.results.len() as u64;
                consumed_units.push(u.clone());
                continue;
            }
            if let Some(q) = replay.quarantined.get(&id) {
                quarantined.push(q.clone());
                continue;
            }

            let t_unit = Instant::now();
            let outcome = {
                let mut unit_span = tele.span("unit");
                unit_span.attr_with("unit", || id.to_string());
                unit_span.attr_with("injections", || span.len().to_string());
                execute_unit(
                    &env,
                    prog,
                    &tele,
                    orch,
                    id,
                    span,
                    &phases,
                    unit_span.id(),
                    store.as_ref(),
                )
            };
            unit_walls.push((id.to_string(), t_unit.elapsed().as_nanos() as u64));
            match outcome {
                Ok(unit) => {
                    if let Some(w) = &writer {
                        let t = Instant::now();
                        w.unit(&unit)?;
                        journal_ns += t.elapsed().as_nanos() as u64;
                    }
                    for r in &unit.results {
                        counts.add(r.outcome);
                        record_injection(&tele, &progress, r);
                    }
                    consumed_units.push(unit);
                }
                Err(q) => {
                    tele.emit_with(|| Event::UnitQuarantined {
                        stratum: q.id.stratum.key(),
                        chunk: q.id.chunk as u64,
                        attempts: q.attempts,
                        error: q.error.clone(),
                    });
                    if let Some(w) = &writer {
                        let t = Instant::now();
                        w.quarantine(&q)?;
                        journal_ns += t.elapsed().as_nanos() as u64;
                    }
                    quarantined.push(q);
                }
            }
        }

        let t_ci = Instant::now();
        let ci = wilson_interval(counts.undetected as u64, counts.total() as u64, report_z);
        sample_decision_ns += t_ci.elapsed().as_nanos() as u64;
        stratum_span.attr_with("samples", || counts.total().to_string());
        reports.push(StratumReport {
            stratum: *stratum,
            planned: idxs.len() as u64,
            counts,
            ci,
            stopped_early,
            owned: true,
        });
    }

    // Finalize: rebuild results and metrics from the recorded injections in
    // plan order, so replayed and freshly-executed units are
    // indistinguishable in the summary.
    let mut recs: Vec<&RecordedInjection> =
        consumed_units.iter().flat_map(|u| &u.results).collect();
    recs.sort_by_key(|r| r.index);
    let results: Vec<InjectionResult> = recs
        .iter()
        .map(|r| {
            let p = &env.plans[r.index as usize];
            InjectionResult {
                class: p.class,
                hw: p.hw,
                bits: p.bits,
                delivered: r.delivered,
                outcome: r.outcome,
            }
        })
        .collect();

    // Compose per-section outcome maps: each plan's fault window falls in at
    // most one section, so the section tallies partition the campaign totals
    // (the compositionality the differential suite asserts).
    let mut by_section: BTreeMap<Option<usize>, OutcomeCounts> = BTreeMap::new();
    for r in &recs {
        let sec = match env.plans[r.index as usize].fault.site {
            hauberk_sim::FaultSite::HookTarget { site }
            | hauberk_sim::FaultSite::RegisterLive { site, .. } => sections.section_of_site(site),
            hauberk_sim::FaultSite::LoopIterator { loop_id }
            | hauberk_sim::FaultSite::LoopDecision { loop_id } => sections.section_of_loop(loop_id),
        };
        by_section.entry(sec).or_default().add(r.outcome);
    }
    let section_outcomes: Vec<SectionOutcome> = by_section
        .into_iter()
        .map(|(section, counts)| SectionOutcome {
            section,
            label: section
                .map(|i| sections.sections[i].label.clone())
                .unwrap_or_default(),
            counts,
        })
        .collect();

    let registry = Registry::new();
    for r in &recs {
        registry.incr("runs", 1);
        if r.delivered {
            registry.incr("delivered", 1);
        }
        registry.incr(&format!("outcome.{}", r.outcome), 1);
        for a in &r.alarms {
            registry.incr(&format!("detector_fired.{a}"), 1);
        }
        if let Some(cycles) = r.latency {
            registry.observe("detection_latency_cycles", cycles);
        }
    }
    for rep in reports.iter().filter(|r| r.owned) {
        let key = rep.stratum.key();
        registry.incr(&format!("stratum.{key}.planned"), rep.planned);
        registry.incr(&format!("stratum.{key}.runs"), rep.executed());
        registry.incr(
            &format!("stratum.{key}.undetected"),
            rep.counts.undetected as u64,
        );
    }
    if !quarantined.is_empty() {
        registry.incr("quarantined_units", quarantined.len() as u64);
    }

    // Assemble the phase profile and append it as the journal's trailing
    // record. Wall time is frozen first so the profile write itself (journal
    // work, but after the fact) cannot perturb the numbers it reports.
    let profile = PhaseProfile {
        plan_ns,
        execute_ns: phases.execute_ns(),
        journal_ns,
        classify_ns: phases.classify_ns(),
        sample_decision_ns,
        wall_ns: t_wall.elapsed().as_nanos() as u64,
        units: unit_walls.len() as u64,
        threads: rayon::current_thread_count() as u64,
        stragglers: flag_stragglers(&unit_walls),
    };
    if let Some(w) = &writer {
        w.profile(&profile)?;
    }

    let records: Vec<RecordedInjection> = recs.iter().map(|r| (*r).clone()).collect();
    finish_campaign(&tele, prog.name(), results.len());
    let executed = results.len() as u64;
    campaign_span.attr_with("runs", || executed.to_string());
    campaign_span.attr_with("units", || profile.units.to_string());
    drop(campaign_span);
    Ok(ShardedCampaignResult {
        campaign: CampaignResult {
            program: prog.name(),
            results,
            golden_cycles: env.golden_cycles,
            detectors: env.detectors(),
            metrics: registry.snapshot(),
        },
        strata: reports,
        quarantined,
        planned: env.plans.len() as u64,
        executed,
        resumed_units,
        resumed_injections,
        dropped_lines: replay.dropped_lines as u64,
        profile,
        sim_cycles: env.sim_cycles.load(std::sync::atomic::Ordering::Relaxed),
        checkpoint: store.as_ref().map(|s| CheckpointStats {
            sections: sections.sections.len() as u64,
            boundaries: s.boundaries(),
            injections: s.injections.load(std::sync::atomic::Ordering::Relaxed),
            spliced: s.spliced.load(std::sync::atomic::Ordering::Relaxed),
            reference_cycles: s.reference_cycles,
            executed_cycles: s.executed_cycles.load(std::sync::atomic::Ordering::Relaxed),
        }),
        section_outcomes,
        records,
    })
}

/// Execute one work unit with retry: the unit's injections run in parallel,
/// each behind its own `catch_unwind`, so a panic's message survives intact
/// regardless of worker-thread count. A failed attempt re-executes the whole
/// unit (injections are idempotent); exhausting the retry budget yields the
/// quarantine record.
///
/// `parent_span` is the unit span's id: rayon workers start with empty
/// span-parent TLS, so each per-injection closure re-establishes it with
/// [`with_parent`] to keep launch spans attached to their unit.
#[allow(clippy::too_many_arguments)]
fn execute_unit(
    env: &CampaignEnv,
    prog: &dyn HostProgram,
    tele: &Telemetry,
    orch: &OrchestratorConfig,
    id: WorkUnitId,
    span: &[usize],
    phases: &PhaseAcc,
    parent_span: u64,
    store: Option<&CheckpointStore>,
) -> Result<UnitRecord, QuarantineRecord> {
    let mut attempt = 0u32;
    loop {
        attempt += 1;
        let chaos = orch.chaos.filter(|c| {
            c.stratum == id.stratum && c.chunk == id.chunk && attempt <= c.fail_attempts
        });
        let outcome: Result<Vec<RecordedInjection>, String> = match chaos {
            Some(c) if !c.panics => Err("chaos: injected work-unit failure".to_string()),
            _ => {
                // `chaos.panics` panics *inside* the per-injection
                // `catch_unwind`, so the recovery under test is the real one,
                // not a shortcut around it.
                let runs: Vec<Result<RecordedInjection, String>> = span
                    .par_iter()
                    .map(|&i| {
                        catch_unwind(AssertUnwindSafe(|| {
                            if chaos.is_some() {
                                panic!("chaos: injected work-unit panic");
                            }
                            with_parent(parent_span, || match store {
                                Some(s) => env.run_one_checkpointed(prog, i, tele, phases, s),
                                None => env.run_one(prog, i, tele, phases),
                            })
                        }))
                        .map_err(panic_message)
                    })
                    .collect();
                runs.into_iter().collect()
            }
        };
        match outcome {
            Ok(results) => {
                return Ok(UnitRecord {
                    id,
                    lo: span[0] as u64,
                    hi: *span.last().expect("nonempty unit") as u64 + 1,
                    results,
                });
            }
            Err(e) if attempt > orch.max_retries => {
                return Err(QuarantineRecord {
                    id,
                    attempts: attempt as u64,
                    error: e,
                });
            }
            Err(e) => {
                eprintln!(
                    "warning: work unit {id} failed on attempt {attempt} \
                     (retrying): {e}"
                );
            }
        }
    }
}

/// Best-effort text of a caught panic payload.
fn panic_message(p: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hauberk::builds::FtOptions;
    use hauberk_benchmarks::{cp::Cp, ProblemScale};
    use hauberk_kir::types::DataClass;
    use hauberk_kir::HwComponent;

    fn small_cfg() -> CampaignConfig {
        CampaignConfig {
            plan: crate::plan::PlanConfig {
                vars_per_program: 6,
                masks_per_var: 8,
                bit_counts: vec![1],
                scheduler_per_mille: 80,
                register_per_mille: 80,
            },
            ..Default::default()
        }
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("hauberk-orchestrator-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{}-{name}", std::process::id()))
    }

    #[test]
    fn orchestrated_matches_plain_campaign() {
        let prog = Cp::new(ProblemScale::Quick);
        let cfg = small_cfg();
        let plain = crate::campaign::run_sensitivity_campaign(&prog, &cfg);
        let orch = run_orchestrated_campaign(
            &prog,
            CampaignKind::Sensitivity,
            &cfg,
            &OrchestratorConfig {
                shard_size: 7, // odd size: summary must not depend on it
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(report::to_csv(&plain), report::to_csv(&orch.campaign));
        assert_eq!(orch.planned, orch.executed);
        assert_eq!(orch.resumed_units, 0);
        assert!(orch.strata.iter().all(|s| !s.stopped_early && s.owned));
        // The phase profile rides along without touching the summary.
        assert!(orch.profile.wall_ns > 0);
        assert!(orch.profile.plan_ns > 0, "plan phase was timed");
        assert!(orch.profile.execute_ns > 0, "execute phase was timed");
        assert!(orch.profile.units > 0);
        assert!(
            orch.profile.phase_sum_ns() > 0 && orch.profile.plan_ns <= orch.profile.wall_ns,
            "phases are plausible fractions of the run"
        );
        assert!(!orch.summary_json().to_string().contains("profile"));
    }

    #[test]
    fn journal_carries_trailing_profile_record() {
        let prog = Cp::new(ProblemScale::Quick);
        let cfg = small_cfg();
        let journal = tmp("profile.jsonl");
        let _ = std::fs::remove_file(&journal);
        let r = run_orchestrated_campaign(
            &prog,
            CampaignKind::Sensitivity,
            &cfg,
            &OrchestratorConfig {
                journal_path: Some(journal.clone()),
                ..Default::default()
            },
        )
        .unwrap();
        let replay = crate::journal::read_journal(&journal).unwrap();
        std::fs::remove_file(&journal).ok();
        assert_eq!(replay.dropped_lines, 0, "profile record must parse");
        assert_eq!(replay.profile.as_ref(), Some(&r.profile));
        assert!(r.profile.journal_ns > 0, "journal phase was timed");
    }

    #[test]
    fn adaptive_stops_strata_early() {
        let prog = Cp::new(ProblemScale::Quick);
        let cfg = small_cfg();
        let r = run_orchestrated_campaign(
            &prog,
            CampaignKind::Coverage(FtOptions::default()),
            &cfg,
            &OrchestratorConfig {
                shard_size: 8,
                adaptive: Some(AdaptiveConfig {
                    ci_width: 0.35,
                    z: 1.96,
                    min_samples: 8,
                }),
                ..Default::default()
            },
        )
        .unwrap();
        assert!(
            r.executed < r.planned,
            "loose CI target must skip work: {}/{}",
            r.executed,
            r.planned
        );
        assert!(r.strata.iter().any(|s| s.stopped_early));
        // Reported tallies must agree with the retained results.
        let total: u64 = r.strata.iter().map(|s| s.executed()).sum();
        assert_eq!(total, r.executed);
    }

    #[test]
    fn chaos_unit_retries_then_succeeds() {
        let prog = Cp::new(ProblemScale::Quick);
        let cfg = small_cfg();
        let plain = crate::campaign::run_sensitivity_campaign(&prog, &cfg);
        // Fail the first attempt of one real unit; the retry must recover
        // and the summary must match an undisturbed run exactly.
        let stratum = Stratum {
            hw: HwComponent::Fpu,
            class: DataClass::Float,
        };
        let r = run_orchestrated_campaign(
            &prog,
            CampaignKind::Sensitivity,
            &cfg,
            &OrchestratorConfig {
                shard_size: OrchestratorConfig::DEFAULT_SHARD_SIZE,
                max_retries: 2,
                chaos: Some(ChaosConfig {
                    stratum,
                    chunk: 0,
                    fail_attempts: 1,
                    panics: false,
                }),
                ..Default::default()
            },
        )
        .unwrap();
        assert!(r.quarantined.is_empty());
        assert_eq!(report::to_csv(&plain), report::to_csv(&r.campaign));
    }

    #[test]
    fn exhausted_retries_quarantine_the_unit() {
        let prog = Cp::new(ProblemScale::Quick);
        let cfg = small_cfg();
        let stratum = Stratum {
            hw: HwComponent::Fpu,
            class: DataClass::Float,
        };
        let journal = tmp("quarantine.jsonl");
        let _ = std::fs::remove_file(&journal);
        let r = run_orchestrated_campaign(
            &prog,
            CampaignKind::Sensitivity,
            &cfg,
            &OrchestratorConfig {
                max_retries: 1,
                journal_path: Some(journal.clone()),
                chaos: Some(ChaosConfig {
                    stratum,
                    chunk: 0,
                    fail_attempts: 99,
                    panics: false,
                }),
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(r.quarantined.len(), 1);
        assert_eq!(r.quarantined[0].attempts, 2, "1 try + 1 retry");
        assert!(r.executed < r.planned, "quarantined unit's work is lost");
        assert_eq!(
            r.campaign.metrics.counter("quarantined_units"),
            1,
            "quarantine surfaces in metrics"
        );
        // The journal records the quarantine, and a resume honors it
        // without re-executing the poisoned unit (chaos off now).
        let replayed = run_orchestrated_campaign(
            &prog,
            CampaignKind::Sensitivity,
            &cfg,
            &OrchestratorConfig {
                max_retries: 1,
                resume_from: Some(journal.clone()),
                ..Default::default()
            },
        )
        .unwrap();
        std::fs::remove_file(&journal).ok();
        assert_eq!(replayed.quarantined.len(), 1);
        assert_eq!(replayed.summary_json(), r.summary_json());
    }

    #[test]
    fn panicking_unit_is_quarantined_with_its_message() {
        // Same shape as `exhausted_retries_quarantine_the_unit`, but the
        // sabotaged unit genuinely panics on a rayon worker thread, so the
        // `catch_unwind` in `execute_unit` (the path a hostile kernel or a
        // simulator bug would take) is what does the recovering.
        let prog = Cp::new(ProblemScale::Quick);
        let cfg = small_cfg();
        let stratum = Stratum {
            hw: HwComponent::Fpu,
            class: DataClass::Float,
        };
        let r = run_orchestrated_campaign(
            &prog,
            CampaignKind::Sensitivity,
            &cfg,
            &OrchestratorConfig {
                max_retries: 1,
                chaos: Some(ChaosConfig {
                    stratum,
                    chunk: 0,
                    fail_attempts: 99,
                    panics: true,
                }),
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(r.quarantined.len(), 1);
        assert_eq!(r.quarantined[0].attempts, 2, "1 try + 1 retry");
        assert!(
            r.quarantined[0].error.contains("injected work-unit panic"),
            "panic payload survives: {}",
            r.quarantined[0].error
        );
    }

    #[test]
    fn stop_flag_cancels_at_unit_boundary_and_resume_completes() {
        let prog = Cp::new(ProblemScale::Quick);
        let cfg = small_cfg();
        let journal = tmp("cancel.jsonl");
        let _ = std::fs::remove_file(&journal);
        let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(true));
        let err = run_orchestrated_campaign(
            &prog,
            CampaignKind::Sensitivity,
            &cfg,
            &OrchestratorConfig {
                journal_path: Some(journal.clone()),
                stop: Some(stop),
                ..Default::default()
            },
        )
        .unwrap_err();
        assert!(err.contains(CANCELED), "{err}");
        // Cancellation is not corruption: the journal holds the campaign
        // identity plus every finished unit, so a resume (stop flag clear)
        // completes the run byte-identical to an undisturbed one.
        let full = run_orchestrated_campaign(
            &prog,
            CampaignKind::Sensitivity,
            &cfg,
            &OrchestratorConfig::default(),
        )
        .unwrap();
        let resumed = run_orchestrated_campaign(
            &prog,
            CampaignKind::Sensitivity,
            &cfg,
            &OrchestratorConfig {
                resume_from: Some(journal.clone()),
                ..Default::default()
            },
        )
        .unwrap();
        std::fs::remove_file(&journal).ok();
        assert_eq!(full.summary_json(), resumed.summary_json());
    }

    #[test]
    fn foreign_journal_is_rejected() {
        let prog = Cp::new(ProblemScale::Quick);
        let cfg = small_cfg();
        let journal = tmp("foreign.jsonl");
        let _ = std::fs::remove_file(&journal);
        run_orchestrated_campaign(
            &prog,
            CampaignKind::Sensitivity,
            &cfg,
            &OrchestratorConfig {
                journal_path: Some(journal.clone()),
                ..Default::default()
            },
        )
        .unwrap();
        // Same journal, different seed → different plan fingerprint.
        let mut other = cfg.clone();
        other.seed ^= 1;
        let err = run_orchestrated_campaign(
            &prog,
            CampaignKind::Sensitivity,
            &other,
            &OrchestratorConfig {
                resume_from: Some(journal.clone()),
                ..Default::default()
            },
        )
        .unwrap_err();
        std::fs::remove_file(&journal).ok();
        assert!(err.contains("different campaign"), "{err}");
    }

    /// A journal written under one engine refuses to resume under another,
    /// and the error names the engine field (not a fingerprint red herring —
    /// the plans are identical, only the meta's engine differs).
    #[test]
    fn cross_engine_resume_is_rejected() {
        let prog = Cp::new(ProblemScale::Quick);
        let mut cfg = small_cfg();
        cfg.engine = Some(hauberk_sim::ExecEngine::Bytecode);
        let journal = tmp("cross-engine.jsonl");
        let _ = std::fs::remove_file(&journal);
        run_orchestrated_campaign(
            &prog,
            CampaignKind::Sensitivity,
            &cfg,
            &OrchestratorConfig {
                journal_path: Some(journal.clone()),
                ..Default::default()
            },
        )
        .unwrap();
        let mut other = cfg.clone();
        other.engine = Some(hauberk_sim::ExecEngine::Batch);
        let err = run_orchestrated_campaign(
            &prog,
            CampaignKind::Sensitivity,
            &other,
            &OrchestratorConfig {
                resume_from: Some(journal.clone()),
                ..Default::default()
            },
        )
        .unwrap_err();
        std::fs::remove_file(&journal).ok();
        assert!(err.contains("engine bytecode, expected batch"), "{err}");
    }

    /// The headline equivalence: a checkpointed campaign produces summaries
    /// byte-identical to full re-execution while simulating fewer cycles,
    /// for both campaign kinds.
    #[test]
    fn checkpointed_campaign_is_byte_identical_and_cheaper() {
        let prog = Cp::new(ProblemScale::Quick);
        let cfg = small_cfg();
        for kind in [
            CampaignKind::Sensitivity,
            CampaignKind::Coverage(FtOptions::default()),
        ] {
            let full = run_orchestrated_campaign(&prog, kind, &cfg, &OrchestratorConfig::default())
                .unwrap();
            let ck = run_orchestrated_campaign(
                &prog,
                kind,
                &cfg,
                &OrchestratorConfig {
                    checkpoint: true,
                    ..Default::default()
                },
            )
            .unwrap();
            assert_eq!(full.summary_json(), ck.summary_json());
            assert_eq!(full.summarize(), ck.summarize());
            assert_eq!(report::to_csv(&full.campaign), report::to_csv(&ck.campaign));
            let stats = ck.checkpoint.as_ref().expect("store was built");
            assert_eq!(stats.injections, ck.executed, "all plans in-grid for CP");
            assert!(stats.boundaries > 0);
            assert!(
                ck.sim_cycles < full.sim_cycles,
                "checkpointing must save cycles: {} vs {}",
                ck.sim_cycles,
                full.sim_cycles
            );
            // Section outcomes compose back to the campaign totals.
            let total: usize = ck.section_outcomes.iter().map(|s| s.counts.total()).sum();
            assert_eq!(total, ck.executed as usize);
            assert!(ck.section_outcomes.iter().all(|s| s.section.is_some()));
            // The plain run carries sections but no checkpoint ledger.
            assert!(full.checkpoint.is_none());
        }
    }

    /// A journal written by a checkpointed campaign refuses to resume in
    /// plain mode (and vice versa), naming the checkpoint field.
    #[test]
    fn checkpoint_mode_mismatch_refuses_resume() {
        let prog = Cp::new(ProblemScale::Quick);
        let cfg = small_cfg();
        let journal = tmp("ckpt-mode.jsonl");
        let _ = std::fs::remove_file(&journal);
        let r = run_orchestrated_campaign(
            &prog,
            CampaignKind::Sensitivity,
            &cfg,
            &OrchestratorConfig {
                journal_path: Some(journal.clone()),
                checkpoint: true,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(r.checkpoint.is_some());
        // The journal spells the identity out in a ckpt record.
        let replay = crate::journal::read_journal(&journal).unwrap();
        let ck = replay.ckpt.expect("ckpt record written");
        assert_eq!(
            Some(&ck.identity),
            replay.meta.as_ref().map(|m| &m.checkpoint)
        );
        assert_eq!(ck.boundaries, r.checkpoint.as_ref().unwrap().boundaries);

        let err = run_orchestrated_campaign(
            &prog,
            CampaignKind::Sensitivity,
            &cfg,
            &OrchestratorConfig {
                resume_from: Some(journal.clone()),
                ..Default::default()
            },
        )
        .unwrap_err();
        std::fs::remove_file(&journal).ok();
        assert!(err.contains("checkpoint"), "{err}");
        assert!(err.contains("expected off"), "{err}");
    }

    /// Checkpointed journals resume like plain ones: interrupt, resume with
    /// checkpointing still on, and the summary matches an undisturbed run.
    #[test]
    fn checkpointed_resume_is_byte_identical() {
        let prog = Cp::new(ProblemScale::Quick);
        let cfg = small_cfg();
        let orch = |journal: Option<PathBuf>, resume: Option<PathBuf>| OrchestratorConfig {
            shard_size: 8,
            journal_path: journal,
            resume_from: resume,
            checkpoint: true,
            ..Default::default()
        };
        let journal = tmp("ckpt-resume.jsonl");
        let _ = std::fs::remove_file(&journal);
        let full =
            run_orchestrated_campaign(&prog, CampaignKind::Sensitivity, &cfg, &orch(None, None))
                .unwrap();
        run_orchestrated_campaign(
            &prog,
            CampaignKind::Sensitivity,
            &cfg,
            &orch(Some(journal.clone()), None),
        )
        .unwrap();
        // Drop the trailing records to simulate an interruption mid-campaign.
        let text = std::fs::read_to_string(&journal).unwrap();
        let keep: Vec<&str> = text.lines().take(4).collect();
        std::fs::write(&journal, format!("{}\n", keep.join("\n"))).unwrap();
        let resumed = run_orchestrated_campaign(
            &prog,
            CampaignKind::Sensitivity,
            &cfg,
            &orch(None, Some(journal.clone())),
        )
        .unwrap();
        std::fs::remove_file(&journal).ok();
        assert!(resumed.resumed_units > 0, "some units replayed");
        assert_eq!(full.summary_json(), resumed.summary_json());
    }

    #[test]
    fn shards_partition_strata_and_merge() {
        let prog = Cp::new(ProblemScale::Quick);
        let cfg = small_cfg();
        let full = run_orchestrated_campaign(
            &prog,
            CampaignKind::Sensitivity,
            &cfg,
            &OrchestratorConfig::default(),
        )
        .unwrap();
        let j0 = tmp("shard0.jsonl");
        let j1 = tmp("shard1.jsonl");
        let merged = tmp("shard-merged.jsonl");
        for p in [&j0, &j1, &merged] {
            let _ = std::fs::remove_file(p);
        }
        for (i, path) in [(0u32, &j0), (1u32, &j1)] {
            let r = run_orchestrated_campaign(
                &prog,
                CampaignKind::Sensitivity,
                &cfg,
                &OrchestratorConfig {
                    journal_path: Some(path.clone()),
                    shard: Some((i, 2)),
                    ..Default::default()
                },
            )
            .unwrap();
            assert!(r.executed < r.planned, "each shard owns a strict subset");
        }
        crate::journal::merge_journals(&merged, &[&j0, &j1]).unwrap();
        let resumed = run_orchestrated_campaign(
            &prog,
            CampaignKind::Sensitivity,
            &cfg,
            &OrchestratorConfig {
                resume_from: Some(merged.clone()),
                ..Default::default()
            },
        )
        .unwrap();
        for p in [&j0, &j1, &merged] {
            let _ = std::fs::remove_file(p);
        }
        assert_eq!(
            resumed.resumed_injections, resumed.executed,
            "no re-execution"
        );
        assert_eq!(full.summary_json(), resumed.summary_json());
        assert_eq!(full.summarize(), resumed.summarize());
    }
}
