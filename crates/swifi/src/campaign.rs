//! Campaign execution: one program, many independent single-fault runs.
//!
//! The two public entry points, [`run_sensitivity_campaign`] and
//! [`run_coverage_campaign`], are exhaustive sweeps: every planned injection
//! executes once. Both are thin wrappers over the sharded orchestrator
//! ([`crate::orchestrator`]), which additionally supports checkpoint
//! journals, resume, adaptive early stopping, and quarantine of crashing
//! work units.

use crate::classify::{classify, FiOutcome, InjectionResult};
use crate::journal::RecordedInjection;
use crate::orchestrator::{run_orchestrated_campaign, OrchestratorConfig};
use crate::plan::{plan_campaign, InjectionPlan, PlanConfig};
use crate::profile::PhaseAcc;
use hauberk::builds::{build, build_selected, BuildVariant, FtOptions, Instrumented};
use hauberk::control::{ControlBlock, NON_LOOP_DETECTOR};
use hauberk::program::CorrectnessSpec;
use hauberk::program::{golden_run, run_program, run_program_with_engine, HostProgram};
use hauberk::ranges::{profile_ranges, RangeSet};
use hauberk::runtime::{FiFtRuntime, FiRuntime, ProfilerRuntime};
use hauberk::translator::select::HardeningSelection;
use hauberk_telemetry::metrics::MetricsSnapshot;
use hauberk_telemetry::progress::Progress;
use hauberk_telemetry::{Event, JsonlSink, Telemetry};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

/// Campaign parameters.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Planning parameters (variables, masks, bit counts, scheduler share).
    pub plan: PlanConfig,
    /// RNG seed for planning.
    pub seed: u64,
    /// Watchdog factor: hang budget = golden cycles × this (the guardian's
    /// `T`, §VI: default 10).
    pub watchdog_factor: u64,
    /// Dataset used for the golden/profiling/injection runs.
    pub dataset: u64,
    /// Range widening applied to the profiled ranges (§VI iii; 1.0 = none).
    pub alpha: f64,
    /// Extra datasets used to train the loop detectors before the campaign
    /// (the coverage study trains and tests on the same dataset, like the
    /// paper's Fig. 14; the false-positive study varies this).
    pub training_datasets: Vec<u64>,
    /// Print a progress line to stderr every this many completed injections
    /// (0 = silent).
    pub progress_every: u64,
    /// Write a JSONL event trace of the injection runs here (campaign
    /// start/finish, one `injection_run` per experiment, kernel spans,
    /// fault deliveries, detector alarms).
    pub trace_path: Option<PathBuf>,
    /// Execution engine for the injection runs (`None` = the process-wide
    /// default). The differential suite runs the same campaign under both
    /// engines and asserts identical outcome tallies.
    pub engine: Option<hauberk_sim::ExecEngine>,
    /// Selective detector placement for coverage campaigns (`None` = full
    /// protection, the classic behavior). The profiler and FI&FT builds are
    /// both restricted to the selection, keeping their detector layouts
    /// aligned. Because the FI surface is selection-invariant, plans and
    /// journal fingerprints do not change — a hardened campaign is
    /// index-comparable with its full-protection baseline. Ignored by
    /// sensitivity campaigns (no detectors to select).
    pub hardening: Option<HardeningSelection>,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            plan: PlanConfig::default(),
            seed: 0xFEED,
            watchdog_factor: 10,
            dataset: 0,
            alpha: 1.0,
            training_datasets: vec![],
            progress_every: 0,
            trace_path: None,
            engine: None,
            hardening: None,
        }
    }
}

/// Which of the paper's two campaign flavors to run.
#[derive(Debug, Clone, Copy)]
pub enum CampaignKind {
    /// Fig. 1-style error sensitivity: faults into the **baseline** (FI
    /// build, no detectors). Alarms never fire.
    Sensitivity,
    /// Fig. 14-style coverage: faults into the **FI&FT** build with the
    /// loop detectors configured from a profiling pass.
    Coverage(FtOptions),
}

impl CampaignKind {
    /// Stable label used in journal metadata and reports.
    pub fn label(&self) -> &'static str {
        match self {
            CampaignKind::Sensitivity => "sensitivity",
            CampaignKind::Coverage(_) => "coverage",
        }
    }
}

/// Campaign output.
#[derive(Debug, Clone)]
pub struct CampaignResult {
    /// Program name.
    pub program: &'static str,
    /// Per-experiment records.
    pub results: Vec<InjectionResult>,
    /// Golden-run kernel cycles (baseline).
    pub golden_cycles: u64,
    /// Number of loop detectors placed (coverage campaigns only).
    pub detectors: usize,
    /// Derived metrics: per-outcome counters, per-detector firing counts,
    /// per-stratum tallies, and the detection-latency-in-cycles histogram.
    pub metrics: MetricsSnapshot,
}

impl CampaignResult {
    /// Fraction of experiments with a given outcome.
    pub fn ratio(&self, o: FiOutcome) -> f64 {
        if self.results.is_empty() {
            return 0.0;
        }
        self.results.iter().filter(|r| r.outcome == o).count() as f64 / self.results.len() as f64
    }

    /// Detection coverage = 1 − P(undetected SDC) (§VIII).
    pub fn coverage(&self) -> f64 {
        1.0 - self.ratio(FiOutcome::Undetected)
    }
}

/// Run the profiler build over `datasets` and return the trained ranges
/// (merged across datasets) plus the profiler state of the *last* dataset
/// (whose execution counts drive fault planning).
pub fn profile_program(
    prog: &dyn HostProgram,
    profiler_build: &Instrumented,
    datasets: &[u64],
) -> (Vec<RangeSet>, ProfilerRuntime) {
    let n_det = profiler_build.detectors.len();
    let mut merged: Vec<RangeSet> = vec![RangeSet::default(); n_det];
    let mut last_pr = ProfilerRuntime::default();
    for &ds in datasets {
        let mut pr = ProfilerRuntime::default();
        let run = run_program(prog, &profiler_build.kernel, ds, &mut pr, u64::MAX);
        assert!(
            run.outcome.is_completed(),
            "profiling run of `{}` dataset {ds} must complete: {:?}",
            prog.name(),
            run.outcome
        );
        for (d, m) in merged.iter_mut().enumerate().take(n_det) {
            let rs = profile_ranges(pr.samples(d as u32));
            m.merge(&rs);
        }
        last_pr = pr;
    }
    (merged, last_pr)
}

/// Extra state a coverage campaign carries per run: trained ranges and the
/// detector-variable names for the control block.
pub(crate) struct CoverageEnv {
    pub(crate) ranges: Vec<RangeSet>,
    pub(crate) det_vars: Vec<String>,
}

/// Everything needed to execute any single planned injection: the
/// instrumented build, golden output, watchdog budget, and the full plan.
/// Built once per campaign by [`prepare_campaign`]; [`CampaignEnv::run_one`]
/// is then pure with respect to the plan index (same index → same result),
/// which is what makes work units idempotent and journals replayable.
pub(crate) struct CampaignEnv {
    pub(crate) build: Instrumented,
    pub(crate) golden: Vec<f64>,
    pub(crate) golden_cycles: u64,
    pub(crate) plans: Vec<InjectionPlan>,
    pub(crate) budget: u64,
    pub(crate) spec: CorrectnessSpec,
    pub(crate) coverage: Option<CoverageEnv>,
    pub(crate) dataset: u64,
    pub(crate) engine: Option<hauberk_sim::ExecEngine>,
    /// Work cycles simulated by the injection runs (plus, in checkpointed
    /// campaigns, the one shared reference run) — the quantity prefix
    /// checkpointing reduces. Observational only: surfaced on
    /// [`crate::orchestrator::ShardedCampaignResult`], never in summaries.
    pub(crate) sim_cycles: std::sync::atomic::AtomicU64,
}

impl CampaignEnv {
    /// Charge simulated work cycles to the campaign's ledger.
    pub(crate) fn add_sim_cycles(&self, cycles: u64) {
        self.sim_cycles
            .fetch_add(cycles, std::sync::atomic::Ordering::Relaxed);
    }

    /// Loop detectors placed in the build under test (0 for sensitivity —
    /// the FI build has none wired up).
    pub(crate) fn detectors(&self) -> usize {
        if self.coverage.is_some() {
            self.build.detectors.len()
        } else {
            0
        }
    }

    /// Execute one planned injection and record its outcome. Deterministic:
    /// the fault, dataset, and engine are all fixed by the plan and config.
    /// Engine time (runtime construction + simulated run) and classification
    /// time are charged to `phases` for the campaign's phase profile.
    pub(crate) fn run_one(
        &self,
        prog: &dyn HostProgram,
        index: usize,
        tele: &Telemetry,
        phases: &PhaseAcc,
    ) -> RecordedInjection {
        let p = &self.plans[index];
        match &self.coverage {
            None => {
                let t_exec = Instant::now();
                let mut rt = FiRuntime::new(Some(p.fault)).with_telemetry(tele.clone());
                let run = run_program_with_engine(
                    prog,
                    &self.build.kernel,
                    self.dataset,
                    &mut rt,
                    self.budget,
                    tele,
                    self.engine,
                );
                self.add_sim_cycles(run.outcome.stats().work_cycles);
                phases.add_execute(t_exec.elapsed().as_nanos() as u64);
                let t_cls = Instant::now();
                let rec = self.record_sensitivity(index, &run.outcome, run.output(), &rt);
                phases.add_classify(t_cls.elapsed().as_nanos() as u64);
                rec
            }
            Some(cov) => {
                let t_exec = Instant::now();
                let mut rt = FiFtRuntime::new(Some(p.fault), self.control_block(cov))
                    .with_telemetry(tele.clone());
                let run = run_program_with_engine(
                    prog,
                    &self.build.kernel,
                    self.dataset,
                    &mut rt,
                    self.budget,
                    tele,
                    self.engine,
                );
                self.add_sim_cycles(run.outcome.stats().work_cycles);
                phases.add_execute(t_exec.elapsed().as_nanos() as u64);
                let t_cls = Instant::now();
                let rec = self.record_coverage(index, &run.outcome, run.output(), &rt);
                phases.add_classify(t_cls.elapsed().as_nanos() as u64);
                rec
            }
        }
    }

    /// [`Self::run_one`] against a shared fault-free checkpoint: restore the
    /// snapshot of the fault's target block instead of re-executing the
    /// prefix, splice the reference tail on reconvergence, and classify with
    /// exactly the same code — byte-identical outcomes are the contract
    /// (`tests/checkpoint_differential.rs`). Falls back to full execution
    /// for the rare plan whose target thread the store does not cover.
    pub(crate) fn run_one_checkpointed(
        &self,
        prog: &dyn HostProgram,
        index: usize,
        tele: &Telemetry,
        phases: &PhaseAcc,
        store: &crate::checkpoint::CheckpointStore,
    ) -> RecordedInjection {
        let p = &self.plans[index];
        if !store.covers(p.fault.thread) {
            return self.run_one(prog, index, tele, phases);
        }
        match &self.coverage {
            None => {
                let t_exec = Instant::now();
                let mut rt = FiRuntime::new(Some(p.fault)).with_telemetry(tele.clone());
                let run = store.run_injection(self, prog, p.fault.thread, &mut rt, tele);
                phases.add_execute(t_exec.elapsed().as_nanos() as u64);
                let t_cls = Instant::now();
                let rec = self.record_sensitivity(index, &run.outcome, run.output.as_deref(), &rt);
                phases.add_classify(t_cls.elapsed().as_nanos() as u64);
                rec
            }
            Some(cov) => {
                let t_exec = Instant::now();
                let mut rt = FiFtRuntime::new(Some(p.fault), self.control_block(cov))
                    .with_telemetry(tele.clone());
                let run = store.run_injection(self, prog, p.fault.thread, &mut rt, tele);
                phases.add_execute(t_exec.elapsed().as_nanos() as u64);
                let t_cls = Instant::now();
                let rec = self.record_coverage(index, &run.outcome, run.output.as_deref(), &rt);
                phases.add_classify(t_cls.elapsed().as_nanos() as u64);
                rec
            }
        }
    }

    /// Fresh control block for one coverage injection.
    fn control_block(&self, cov: &CoverageEnv) -> ControlBlock {
        ControlBlock::with_ranges(cov.ranges.clone()).with_detector_vars(cov.det_vars.clone())
    }

    /// Classify a sensitivity run. Alarms never fire (no detectors wired);
    /// delivery is read from the injection's own runtime.
    fn record_sensitivity(
        &self,
        index: usize,
        outcome: &hauberk_sim::LaunchOutcome,
        output: Option<&[f64]>,
        rt: &FiRuntime,
    ) -> RecordedInjection {
        let outcome = classify(outcome, output, &self.golden, &self.spec, false);
        RecordedInjection {
            index: index as u64,
            outcome,
            delivered: rt.arm.delivered(),
            latency: None,
            alarms: vec![],
        }
    }

    /// Classify a coverage run from the injection's own runtime state
    /// (alarm flag, fired detectors, detection latency, delivery).
    fn record_coverage(
        &self,
        index: usize,
        outcome: &hauberk_sim::LaunchOutcome,
        output: Option<&[f64]>,
        rt: &FiFtRuntime,
    ) -> RecordedInjection {
        let alarm = rt.cb.sdc_flag;
        let outcome = classify(outcome, output, &self.golden, &self.spec, alarm);
        let alarms = rt
            .cb
            .alarms
            .iter()
            .map(|a| {
                if a.detector == NON_LOOP_DETECTOR {
                    "nl".to_string()
                } else {
                    a.detector.to_string()
                }
            })
            .collect();
        RecordedInjection {
            index: index as u64,
            outcome,
            delivered: rt.arm.delivered(),
            latency: rt.detection_latency(),
            alarms,
        }
    }
}

/// Build, profile, and plan: everything up to (but not including) the
/// injection runs. Shared by both campaign kinds.
pub(crate) fn prepare_campaign(
    prog: &dyn HostProgram,
    kind: &CampaignKind,
    cfg: &CampaignConfig,
) -> CampaignEnv {
    let base = prog.build_kernel();
    let (golden, golden_cycles) = golden_run(prog, cfg.dataset);
    let budget = watchdog_budget(golden_cycles, cfg.watchdog_factor);
    match kind {
        CampaignKind::Sensitivity => {
            let profiler_build =
                build(&base, BuildVariant::Profiler(FtOptions::default())).expect("profiler build");
            let (_, pr) = profile_program(prog, &profiler_build, &[cfg.dataset]);
            let fi_build = build(&base, BuildVariant::Fi).expect("FI build");
            let mut rng = SmallRng::seed_from_u64(cfg.seed);
            let plans = plan_campaign(&fi_build.fi, &pr, &cfg.plan, &mut rng);
            CampaignEnv {
                build: fi_build,
                golden,
                golden_cycles,
                plans,
                budget,
                spec: prog.spec(),
                coverage: None,
                dataset: cfg.dataset,
                engine: cfg.engine,
                sim_cycles: std::sync::atomic::AtomicU64::new(0),
            }
        }
        CampaignKind::Coverage(ft) => {
            // The profiler's detector layout must match the FT build it
            // configures — both receive the same hardening selection.
            let sel = cfg.hardening.as_ref();
            let profiler_build =
                build_selected(&base, BuildVariant::Profiler(*ft), sel).expect("profiler build");
            let mut train = cfg.training_datasets.clone();
            if train.is_empty() {
                train.push(cfg.dataset); // paper Fig. 14: same set for train and test
            }
            // The last profiled dataset must be the injection dataset so
            // execution counts match the injected runs.
            if *train.last().expect("nonempty") != cfg.dataset {
                train.push(cfg.dataset);
            }
            let (mut ranges, pr) = profile_program(prog, &profiler_build, &train);
            if cfg.alpha > 1.0 {
                for r in &mut ranges {
                    *r = r.apply_alpha(cfg.alpha);
                }
            }
            let fift = build_selected(&base, BuildVariant::FiFt(*ft), sel).expect("FI&FT build");
            let mut rng = SmallRng::seed_from_u64(cfg.seed);
            let plans = plan_campaign(&fift.fi, &pr, &cfg.plan, &mut rng);
            let det_vars = fift.detectors.iter().map(|d| d.var_name.clone()).collect();
            CampaignEnv {
                build: fift,
                golden,
                golden_cycles,
                plans,
                budget,
                spec: prog.spec(),
                coverage: Some(CoverageEnv { ranges, det_vars }),
                dataset: cfg.dataset,
                engine: cfg.engine,
                sim_cycles: std::sync::atomic::AtomicU64::new(0),
            }
        }
    }
}

/// Fig. 1-style error-sensitivity campaign: faults injected into the
/// **baseline** program (FI build, no detectors). Alarms never fire, so
/// outcomes are failure / masked / undetected ("SDC").
pub fn run_sensitivity_campaign(prog: &dyn HostProgram, cfg: &CampaignConfig) -> CampaignResult {
    run_orchestrated_campaign(
        prog,
        CampaignKind::Sensitivity,
        cfg,
        &OrchestratorConfig::default(),
    )
    .expect("journal-less campaign cannot fail")
    .campaign
}

/// Fig. 14-style coverage campaign: faults injected into the **FI&FT**
/// build, with the loop detectors configured from a profiling pass.
pub fn run_coverage_campaign(
    prog: &dyn HostProgram,
    ft: FtOptions,
    cfg: &CampaignConfig,
) -> CampaignResult {
    run_orchestrated_campaign(
        prog,
        CampaignKind::Coverage(ft),
        cfg,
        &OrchestratorConfig::default(),
    )
    .expect("journal-less campaign cannot fail")
    .campaign
}

/// Telemetry for a campaign: a JSONL file sink when the config names a trace
/// path, disabled otherwise. Trace-file open failures degrade to disabled
/// telemetry with a warning rather than aborting the campaign.
pub(crate) fn campaign_telemetry(cfg: &CampaignConfig) -> Telemetry {
    match &cfg.trace_path {
        Some(path) => match JsonlSink::create(path) {
            Ok(sink) => Telemetry::new(Arc::new(sink)),
            Err(e) => {
                eprintln!("warning: cannot open trace file {}: {e}", path.display());
                Telemetry::disabled()
            }
        },
        None => Telemetry::disabled(),
    }
}

/// Per-injection bookkeeping: the `injection_run` trace event and the
/// progress tick. (Counters are rebuilt deterministically at finalize from
/// the recorded injections, so resumed campaigns report identical metrics.)
pub(crate) fn record_injection(tele: &Telemetry, progress: &Progress, rec: &RecordedInjection) {
    let label = rec.outcome.to_string();
    tele.emit_with(|| Event::InjectionRun {
        index: rec.index,
        outcome: label.clone(),
        delivered: rec.delivered,
        latency: rec.latency,
    });
    progress.tick(&label);
}

/// Emit the campaign-finished event and flush the trace.
pub(crate) fn finish_campaign(tele: &Telemetry, program: &str, runs: usize) {
    tele.emit_with(|| Event::CampaignFinished {
        program: program.to_string(),
        runs: runs as u64,
    });
    tele.flush();
}

/// The hang budget the guardian enforces (§VI: T× the previous execution
/// time, with a floor so short kernels are not killed spuriously).
pub fn watchdog_budget(golden_cycles: u64, factor: u64) -> u64 {
    (golden_cycles.saturating_mul(factor)).max(golden_cycles + 200_000)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hauberk_benchmarks::{cp::Cp, pns::Pns, ProblemScale};

    fn small_cfg() -> CampaignConfig {
        CampaignConfig {
            plan: PlanConfig {
                vars_per_program: 6,
                masks_per_var: 8,
                bit_counts: vec![1],
                scheduler_per_mille: 80,
                register_per_mille: 80,
            },
            ..Default::default()
        }
    }

    #[test]
    fn sensitivity_campaign_produces_mixed_outcomes() {
        let prog = Cp::new(ProblemScale::Quick);
        let r = run_sensitivity_campaign(&prog, &small_cfg());
        assert!(r.results.len() >= 48);
        // No detectors: nothing may be classified detected.
        assert_eq!(r.ratio(FiOutcome::Detected), 0.0);
        assert_eq!(r.ratio(FiOutcome::DetectedMasked), 0.0);
        // FP-heavy program: a good share of faults manifest as SDC.
        let sdc = r.ratio(FiOutcome::Undetected);
        assert!(sdc > 0.05, "expected SDCs in baseline CP, got {sdc}");
    }

    #[test]
    fn coverage_campaign_detects_a_large_share_of_sdcs() {
        let prog = Cp::new(ProblemScale::Quick);
        let base = run_sensitivity_campaign(&prog, &small_cfg());
        let cov = run_coverage_campaign(&prog, FtOptions::default(), &small_cfg());
        assert!(cov.detectors >= 1);
        assert!(
            cov.ratio(FiOutcome::Detected) + cov.ratio(FiOutcome::DetectedMasked) > 0.0,
            "detectors fire under faults"
        );
        assert!(
            cov.ratio(FiOutcome::Undetected) < base.ratio(FiOutcome::Undetected),
            "Hauberk reduces the SDC escape ratio: {} vs {}",
            cov.ratio(FiOutcome::Undetected),
            base.ratio(FiOutcome::Undetected)
        );
        assert!(cov.coverage() > 0.7, "coverage {}", cov.coverage());
    }

    #[test]
    fn integer_program_campaign_runs() {
        let prog = Pns::new(ProblemScale::Quick);
        let r = run_coverage_campaign(&prog, FtOptions::default(), &small_cfg());
        assert!(!r.results.is_empty());
        // Fault-free FT run must not alarm (sanity: training covers itself).
        // (Implicitly guaranteed: a plan whose fault never delivers and no
        // alarm fires is Masked.)
        assert!(r.coverage() > 0.5);
    }

    #[test]
    fn campaigns_are_deterministic() {
        let prog = Pns::new(ProblemScale::Quick);
        let cfg = small_cfg();
        let a = run_sensitivity_campaign(&prog, &cfg);
        let b = run_sensitivity_campaign(&prog, &cfg);
        let oa: Vec<FiOutcome> = a.results.iter().map(|r| r.outcome).collect();
        let ob: Vec<FiOutcome> = b.results.iter().map(|r| r.outcome).collect();
        assert_eq!(oa, ob);
    }
}
