//! Campaign execution: one program, many independent single-fault runs.

use crate::classify::{classify, FiOutcome, InjectionResult};
use crate::plan::{plan_campaign, InjectionPlan, PlanConfig};
use hauberk::builds::{build, BuildVariant, FtOptions, Instrumented};
use hauberk::control::{ControlBlock, NON_LOOP_DETECTOR};
use hauberk::program::{golden_run, run_program, run_program_with_engine, HostProgram};
use hauberk::ranges::{profile_ranges, RangeSet};
use hauberk::runtime::{FiFtRuntime, FiRuntime, ProfilerRuntime};
use hauberk_telemetry::metrics::{MetricsSnapshot, Registry};
use hauberk_telemetry::progress::Progress;
use hauberk_telemetry::{Event, JsonlSink, Telemetry};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use rayon::prelude::*;
use std::path::PathBuf;
use std::sync::Arc;

/// Campaign parameters.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Planning parameters (variables, masks, bit counts, scheduler share).
    pub plan: PlanConfig,
    /// RNG seed for planning.
    pub seed: u64,
    /// Watchdog factor: hang budget = golden cycles × this (the guardian's
    /// `T`, §VI: default 10).
    pub watchdog_factor: u64,
    /// Dataset used for the golden/profiling/injection runs.
    pub dataset: u64,
    /// Range widening applied to the profiled ranges (§VI iii; 1.0 = none).
    pub alpha: f64,
    /// Extra datasets used to train the loop detectors before the campaign
    /// (the coverage study trains and tests on the same dataset, like the
    /// paper's Fig. 14; the false-positive study varies this).
    pub training_datasets: Vec<u64>,
    /// Print a progress line to stderr every this many completed injections
    /// (0 = silent).
    pub progress_every: u64,
    /// Write a JSONL event trace of the injection runs here (campaign
    /// start/finish, one `injection_run` per experiment, kernel spans,
    /// fault deliveries, detector alarms).
    pub trace_path: Option<PathBuf>,
    /// Execution engine for the injection runs (`None` = the process-wide
    /// default). The differential suite runs the same campaign under both
    /// engines and asserts identical outcome tallies.
    pub engine: Option<hauberk_sim::ExecEngine>,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            plan: PlanConfig::default(),
            seed: 0xFEED,
            watchdog_factor: 10,
            dataset: 0,
            alpha: 1.0,
            training_datasets: vec![],
            progress_every: 0,
            trace_path: None,
            engine: None,
        }
    }
}

/// Campaign output.
#[derive(Debug, Clone)]
pub struct CampaignResult {
    /// Program name.
    pub program: &'static str,
    /// Per-experiment records.
    pub results: Vec<InjectionResult>,
    /// Golden-run kernel cycles (baseline).
    pub golden_cycles: u64,
    /// Number of loop detectors placed (coverage campaigns only).
    pub detectors: usize,
    /// Derived metrics: per-outcome counters, per-detector firing counts,
    /// and the detection-latency-in-cycles histogram.
    pub metrics: MetricsSnapshot,
}

impl CampaignResult {
    /// Fraction of experiments with a given outcome.
    pub fn ratio(&self, o: FiOutcome) -> f64 {
        if self.results.is_empty() {
            return 0.0;
        }
        self.results.iter().filter(|r| r.outcome == o).count() as f64 / self.results.len() as f64
    }

    /// Detection coverage = 1 − P(undetected SDC) (§VIII).
    pub fn coverage(&self) -> f64 {
        1.0 - self.ratio(FiOutcome::Undetected)
    }
}

/// Run the profiler build over `datasets` and return the trained ranges
/// (merged across datasets) plus the profiler state of the *last* dataset
/// (whose execution counts drive fault planning).
pub fn profile_program(
    prog: &dyn HostProgram,
    profiler_build: &Instrumented,
    datasets: &[u64],
) -> (Vec<RangeSet>, ProfilerRuntime) {
    let n_det = profiler_build.detectors.len();
    let mut merged: Vec<RangeSet> = vec![RangeSet::default(); n_det];
    let mut last_pr = ProfilerRuntime::default();
    for &ds in datasets {
        let mut pr = ProfilerRuntime::default();
        let run = run_program(prog, &profiler_build.kernel, ds, &mut pr, u64::MAX);
        assert!(
            run.outcome.is_completed(),
            "profiling run of `{}` dataset {ds} must complete: {:?}",
            prog.name(),
            run.outcome
        );
        for (d, m) in merged.iter_mut().enumerate().take(n_det) {
            let rs = profile_ranges(pr.samples(d as u32));
            m.merge(&rs);
        }
        last_pr = pr;
    }
    (merged, last_pr)
}

/// Fig. 1-style error-sensitivity campaign: faults injected into the
/// **baseline** program (FI build, no detectors). Alarms never fire, so
/// outcomes are failure / masked / undetected ("SDC").
pub fn run_sensitivity_campaign(prog: &dyn HostProgram, cfg: &CampaignConfig) -> CampaignResult {
    let base = prog.build_kernel();
    let (golden, golden_cycles) = golden_run(prog, cfg.dataset);
    let profiler_build =
        build(&base, BuildVariant::Profiler(FtOptions::default())).expect("profiler build");
    let (_, pr) = profile_program(prog, &profiler_build, &[cfg.dataset]);
    let fi_build = build(&base, BuildVariant::Fi).expect("FI build");

    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let plans = plan_campaign(&fi_build.fi, &pr, &cfg.plan, &mut rng);
    let budget = watchdog_budget(golden_cycles, cfg.watchdog_factor);
    let spec = prog.spec();

    let tele = campaign_telemetry(cfg);
    let registry = Registry::new();
    let progress = Progress::new(prog.name(), plans.len() as u64, cfg.progress_every);
    tele.emit_with(|| Event::CampaignStarted {
        program: prog.name().to_string(),
        runs: plans.len() as u64,
    });

    let indexed: Vec<(usize, &InjectionPlan)> = plans.iter().enumerate().collect();
    let results: Vec<InjectionResult> = indexed
        .par_iter()
        .map(|&(i, p)| {
            let mut rt = FiRuntime::new(Some(p.fault)).with_telemetry(tele.clone());
            let run = run_program_with_engine(
                prog,
                &fi_build.kernel,
                cfg.dataset,
                &mut rt,
                budget,
                &tele,
                cfg.engine,
            );
            let outcome = classify(&run.outcome, run.output(), &golden, &spec, false);
            record_injection(
                &tele,
                &registry,
                &progress,
                i,
                outcome,
                rt.arm.delivered(),
                None,
            );
            InjectionResult {
                class: p.class,
                hw: p.hw,
                bits: p.bits,
                delivered: rt.arm.delivered(),
                outcome,
            }
        })
        .collect();

    finish_campaign(&tele, prog.name(), results.len());
    CampaignResult {
        program: prog.name(),
        results,
        golden_cycles,
        detectors: 0,
        metrics: registry.snapshot(),
    }
}

/// Fig. 14-style coverage campaign: faults injected into the **FI&FT**
/// build, with the loop detectors configured from a profiling pass.
pub fn run_coverage_campaign(
    prog: &dyn HostProgram,
    ft: FtOptions,
    cfg: &CampaignConfig,
) -> CampaignResult {
    let base = prog.build_kernel();
    let (golden, golden_cycles) = golden_run(prog, cfg.dataset);

    // The profiler's detector layout must match the FT build it configures.
    let profiler_build = build(&base, BuildVariant::Profiler(ft)).expect("profiler build");
    let mut train = cfg.training_datasets.clone();
    if train.is_empty() {
        train.push(cfg.dataset); // paper Fig. 14: same set for train and test
    }
    // The last profiled dataset must be the injection dataset so execution
    // counts match the injected runs.
    if *train.last().expect("nonempty") != cfg.dataset {
        train.push(cfg.dataset);
    }
    let (mut ranges, pr) = profile_program(prog, &profiler_build, &train);
    if cfg.alpha > 1.0 {
        for r in &mut ranges {
            *r = r.apply_alpha(cfg.alpha);
        }
    }

    let fift = build(&base, BuildVariant::FiFt(ft)).expect("FI&FT build");
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let plans = plan_campaign(&fift.fi, &pr, &cfg.plan, &mut rng);
    let budget = watchdog_budget(golden_cycles, cfg.watchdog_factor);
    let spec = prog.spec();
    let det_vars: Vec<String> = fift.detectors.iter().map(|d| d.var_name.clone()).collect();

    let tele = campaign_telemetry(cfg);
    let registry = Registry::new();
    let progress = Progress::new(prog.name(), plans.len() as u64, cfg.progress_every);
    tele.emit_with(|| Event::CampaignStarted {
        program: prog.name().to_string(),
        runs: plans.len() as u64,
    });

    let indexed: Vec<(usize, &InjectionPlan)> = plans.iter().enumerate().collect();
    let results: Vec<InjectionResult> = indexed
        .par_iter()
        .map(|&(i, p)| {
            let cb = ControlBlock::with_ranges(ranges.clone()).with_detector_vars(det_vars.clone());
            let mut rt = FiFtRuntime::new(Some(p.fault), cb).with_telemetry(tele.clone());
            let run = run_program_with_engine(
                prog,
                &fift.kernel,
                cfg.dataset,
                &mut rt,
                budget,
                &tele,
                cfg.engine,
            );
            let alarm = rt.cb.sdc_flag;
            let outcome = classify(&run.outcome, run.output(), &golden, &spec, alarm);
            for a in &rt.cb.alarms {
                let det = if a.detector == NON_LOOP_DETECTOR {
                    "nl".to_string()
                } else {
                    a.detector.to_string()
                };
                registry.incr(&format!("detector_fired.{det}"), 1);
            }
            record_injection(
                &tele,
                &registry,
                &progress,
                i,
                outcome,
                rt.arm.delivered(),
                rt.detection_latency(),
            );
            InjectionResult {
                class: p.class,
                hw: p.hw,
                bits: p.bits,
                delivered: rt.arm.delivered(),
                outcome,
            }
        })
        .collect();

    finish_campaign(&tele, prog.name(), results.len());
    CampaignResult {
        program: prog.name(),
        results,
        golden_cycles,
        detectors: fift.detectors.len(),
        metrics: registry.snapshot(),
    }
}

/// Telemetry for a campaign: a JSONL file sink when the config names a trace
/// path, disabled otherwise. Trace-file open failures degrade to disabled
/// telemetry with a warning rather than aborting the campaign.
fn campaign_telemetry(cfg: &CampaignConfig) -> Telemetry {
    match &cfg.trace_path {
        Some(path) => match JsonlSink::create(path) {
            Ok(sink) => Telemetry::new(Arc::new(sink)),
            Err(e) => {
                eprintln!("warning: cannot open trace file {}: {e}", path.display());
                Telemetry::disabled()
            }
        },
        None => Telemetry::disabled(),
    }
}

/// Per-injection bookkeeping shared by both campaign kinds: the
/// `injection_run` trace event, the outcome/delivery counters, the
/// detection-latency histogram, and the progress tick.
#[allow(clippy::too_many_arguments)]
fn record_injection(
    tele: &Telemetry,
    registry: &Registry,
    progress: &Progress,
    index: usize,
    outcome: FiOutcome,
    delivered: bool,
    latency: Option<u64>,
) {
    let label = outcome.to_string();
    tele.emit_with(|| Event::InjectionRun {
        index: index as u64,
        outcome: label.clone(),
        delivered,
        latency,
    });
    registry.incr("runs", 1);
    if delivered {
        registry.incr("delivered", 1);
    }
    registry.incr(&format!("outcome.{label}"), 1);
    if let Some(cycles) = latency {
        registry.observe("detection_latency_cycles", cycles);
    }
    progress.tick(&label);
}

/// Emit the campaign-finished event and flush the trace.
fn finish_campaign(tele: &Telemetry, program: &str, runs: usize) {
    tele.emit_with(|| Event::CampaignFinished {
        program: program.to_string(),
        runs: runs as u64,
    });
    tele.flush();
}

/// The hang budget the guardian enforces (§VI: T× the previous execution
/// time, with a floor so short kernels are not killed spuriously).
pub fn watchdog_budget(golden_cycles: u64, factor: u64) -> u64 {
    (golden_cycles.saturating_mul(factor)).max(golden_cycles + 200_000)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hauberk_benchmarks::{cp::Cp, pns::Pns, ProblemScale};

    fn small_cfg() -> CampaignConfig {
        CampaignConfig {
            plan: PlanConfig {
                vars_per_program: 6,
                masks_per_var: 8,
                bit_counts: vec![1],
                scheduler_per_mille: 80,
                register_per_mille: 80,
            },
            ..Default::default()
        }
    }

    #[test]
    fn sensitivity_campaign_produces_mixed_outcomes() {
        let prog = Cp::new(ProblemScale::Quick);
        let r = run_sensitivity_campaign(&prog, &small_cfg());
        assert!(r.results.len() >= 48);
        // No detectors: nothing may be classified detected.
        assert_eq!(r.ratio(FiOutcome::Detected), 0.0);
        assert_eq!(r.ratio(FiOutcome::DetectedMasked), 0.0);
        // FP-heavy program: a good share of faults manifest as SDC.
        let sdc = r.ratio(FiOutcome::Undetected);
        assert!(sdc > 0.05, "expected SDCs in baseline CP, got {sdc}");
    }

    #[test]
    fn coverage_campaign_detects_a_large_share_of_sdcs() {
        let prog = Cp::new(ProblemScale::Quick);
        let base = run_sensitivity_campaign(&prog, &small_cfg());
        let cov = run_coverage_campaign(&prog, FtOptions::default(), &small_cfg());
        assert!(cov.detectors >= 1);
        assert!(
            cov.ratio(FiOutcome::Detected) + cov.ratio(FiOutcome::DetectedMasked) > 0.0,
            "detectors fire under faults"
        );
        assert!(
            cov.ratio(FiOutcome::Undetected) < base.ratio(FiOutcome::Undetected),
            "Hauberk reduces the SDC escape ratio: {} vs {}",
            cov.ratio(FiOutcome::Undetected),
            base.ratio(FiOutcome::Undetected)
        );
        assert!(cov.coverage() > 0.7, "coverage {}", cov.coverage());
    }

    #[test]
    fn integer_program_campaign_runs() {
        let prog = Pns::new(ProblemScale::Quick);
        let r = run_coverage_campaign(&prog, FtOptions::default(), &small_cfg());
        assert!(!r.results.is_empty());
        // Fault-free FT run must not alarm (sanity: training covers itself).
        // (Implicitly guaranteed: a plan whose fault never delivers and no
        // alarm fires is Masked.)
        assert!(r.coverage() > 0.5);
    }

    #[test]
    fn campaigns_are_deterministic() {
        let prog = Pns::new(ProblemScale::Quick);
        let cfg = small_cfg();
        let a = run_sensitivity_campaign(&prog, &cfg);
        let b = run_sensitivity_campaign(&prog, &cfg);
        let oa: Vec<FiOutcome> = a.results.iter().map(|r| r.outcome).collect();
        let ob: Vec<FiOutcome> = b.results.iter().map(|r| r.outcome).collect();
        assert_eq!(oa, ob);
    }
}
