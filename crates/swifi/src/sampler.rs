//! Stratified adaptive sampling: Wilson confidence intervals with
//! early stopping.
//!
//! A uniform sweep spends the same number of injections on every fault-site
//! class even after a class's outcome rates have long converged. The
//! orchestrator instead tracks, per [`hauberk::Stratum`], a Wilson score
//! interval on the SDC (undetected-violation) rate and stops drawing work
//! units from a stratum once the interval is narrower than the target —
//! rare-outcome strata keep sampling while converged ones stop. The Wilson
//! interval is preferred over the normal approximation because campaign
//! strata routinely sit at p ≈ 0 (graphics programs, heavily protected
//! builds), where the Wald interval collapses to zero width and would stop
//! instantly with no evidence.

use crate::classify::FiOutcome;
use crate::stats::OutcomeCounts;

/// Two-sided Wilson score interval for a binomial proportion.
///
/// Returns `(lo, hi)` for `successes` out of `n` trials at critical value
/// `z` (1.96 ≈ 95%). For `n = 0` the interval is the vacuous `(0, 1)`.
pub fn wilson_interval(successes: u64, n: u64, z: f64) -> (f64, f64) {
    if n == 0 {
        return (0.0, 1.0);
    }
    let n_f = n as f64;
    let p = successes as f64 / n_f;
    let z2 = z * z;
    let denom = 1.0 + z2 / n_f;
    let center = p + z2 / (2.0 * n_f);
    let margin = z * (p * (1.0 - p) / n_f + z2 / (4.0 * n_f * n_f)).sqrt();
    (
        ((center - margin) / denom).max(0.0),
        ((center + margin) / denom).min(1.0),
    )
}

/// Width of the Wilson interval on the SDC rate of one stratum's tally.
pub fn ci_width(counts: &OutcomeCounts, z: f64) -> f64 {
    let n = counts.total() as u64;
    let (lo, hi) = wilson_interval(counts.undetected as u64, n, z);
    hi - lo
}

/// Early-stopping policy for adaptive campaigns.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptiveConfig {
    /// Target Wilson interval width on each stratum's SDC rate; a stratum
    /// stops drawing work units once its interval is at most this wide.
    pub ci_width: f64,
    /// Critical value of the interval (default 1.96 ≈ 95% confidence).
    pub z: f64,
    /// Never stop a stratum before this many samples, regardless of the
    /// interval (guards against freak early agreement in tiny prefixes).
    pub min_samples: u64,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            ci_width: 0.1,
            z: 1.96,
            min_samples: 32,
        }
    }
}

impl AdaptiveConfig {
    /// Whether a stratum with this tally has converged and may stop.
    pub fn converged(&self, counts: &OutcomeCounts) -> bool {
        (counts.total() as u64) >= self.min_samples && ci_width(counts, self.z) <= self.ci_width
    }
}

/// Convenience: tally a slice of outcomes (journal replay and tests).
pub fn tally(outcomes: &[FiOutcome]) -> OutcomeCounts {
    let mut c = OutcomeCounts::default();
    for &o in outcomes {
        c.add(o);
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wilson_matches_known_values() {
        // 10/100 at 95%: interval ≈ (0.0552, 0.1744) — standard reference
        // values for the Wilson score interval.
        let (lo, hi) = wilson_interval(10, 100, 1.96);
        assert!((lo - 0.0552).abs() < 1e-3, "{lo}");
        assert!((hi - 0.1744).abs() < 1e-3, "{hi}");
        // Degenerate cases stay in [0, 1] and never collapse at p = 0.
        let (lo, hi) = wilson_interval(0, 50, 1.96);
        assert_eq!(lo, 0.0);
        assert!(hi > 0.0 && hi < 0.1, "p=0 keeps a nonzero upper bound");
        let (lo, hi) = wilson_interval(50, 50, 1.96);
        assert!(lo > 0.9 && hi == 1.0);
        assert_eq!(wilson_interval(0, 0, 1.96), (0.0, 1.0));
    }

    #[test]
    fn width_shrinks_with_samples() {
        let mut narrow = OutcomeCounts::default();
        let mut wide = OutcomeCounts::default();
        for i in 0..400 {
            narrow.add(if i % 10 == 0 {
                FiOutcome::Undetected
            } else {
                FiOutcome::Masked
            });
        }
        for i in 0..40 {
            wide.add(if i % 10 == 0 {
                FiOutcome::Undetected
            } else {
                FiOutcome::Masked
            });
        }
        assert!(ci_width(&narrow, 1.96) < ci_width(&wide, 1.96));
        // ~sqrt(10) ratio between the two widths.
        assert!(ci_width(&wide, 1.96) / ci_width(&narrow, 1.96) > 2.5);
    }

    #[test]
    fn min_samples_gates_convergence() {
        let cfg = AdaptiveConfig {
            ci_width: 0.9,
            z: 1.96,
            min_samples: 16,
        };
        let mut c = OutcomeCounts::default();
        for _ in 0..15 {
            c.add(FiOutcome::Masked);
        }
        assert!(!cfg.converged(&c), "below min_samples");
        c.add(FiOutcome::Masked);
        assert!(cfg.converged(&c), "wide target met at min_samples");
        let strict = AdaptiveConfig {
            ci_width: 0.01,
            ..cfg
        };
        assert!(!strict.converged(&c), "strict target not met");
    }
}
