//! Closed-loop selective hardening: vulnerability-ranked detector placement.
//!
//! Full-protection Hauberk instruments every eligible site; this module
//! closes the campaign → translator loop instead:
//!
//! 1. run (or ingest, via [`HardenConfig::baseline_journal`]) a baseline
//!    error-sensitivity campaign on the unprotected program;
//! 2. rank every placeable detector — each Hauberk-NL variable, each
//!    Hauberk-L `(loop, variable)` detector, and each loop's trip-count
//!    invariant (separately selectable: a deselected trip check elides the
//!    per-iteration counter, the dominant loop-detector cost) — by
//!    measured vulnerability:
//!    the Wilson lower bound of its SDC escape rate (so low-sample sites
//!    cannot dominate on noise) times its dynamic exposure (execution
//!    count of its injection sites);
//! 3. measure each candidate's marginal fault-free overhead, order the
//!    ranking greedily by score density (score per overhead cycle),
//!    measure the overhead of every greedy prefix, map each overhead
//!    budget to the longest prefix that fits, and emit the selection as a
//!    serializable
//!    [`HardeningPlan`] the translator consumes
//!    ([`hauberk::builds::build_selected`]);
//! 4. re-run the coverage campaign under each distinct placement to
//!    measure *achieved* coverage, yielding the coverage-vs-overhead
//!    Pareto front;
//! 5. optionally iterate: further baseline rounds (fresh seeds) tighten
//!    the Wilson bounds; the loop stops early once the ranking is stable.
//!
//! Because the FI surface is invariant under selection (see
//! [`hauberk::builds::build_selected`]), the baseline and every hardened
//! campaign share plan numbering and fingerprints — coverage deltas are
//! measured injection-for-injection, not approximated.
//!
//! Everything here is deterministic: same journal (or same seed) in,
//! byte-identical plan and front out, across engines and thread counts.

use std::collections::BTreeMap;
use std::path::PathBuf;

use crate::campaign::{prepare_campaign, profile_program, CampaignConfig, CampaignKind};
use crate::classify::FiOutcome;
use crate::journal::RecordedInjection;
use crate::orchestrator::{fingerprint_plans, run_orchestrated_campaign, OrchestratorConfig};
use crate::plan::InjectionPlan;
use crate::sampler::wilson_interval;
use hauberk::builds::{build_selected, BuildVariant, FtOptions};
use hauberk::control::ControlBlock;
use hauberk::program::{run_program, HostProgram};
use hauberk::runtime::FtRuntime;
use hauberk::translator::select::{HardeningPlan, HardeningSelection};
use hauberk_kir::stmt::LoopId;
use hauberk_sim::{FaultSite, LaunchOutcome};
use hauberk_telemetry::json::Json;

/// The z-score of the 95% Wilson interval used for vulnerability ranking.
const RANK_Z: f64 = 1.96;

/// The default budget ladder swept when [`HardenConfig::budgets`] is empty
/// (fractions of the full-protection detector overhead).
pub const DEFAULT_BUDGETS: [f64; 7] = [0.0, 0.1, 0.2, 0.35, 0.5, 0.75, 1.0];

/// Parameters of one hardening optimization.
#[derive(Debug, Clone)]
pub struct HardenConfig {
    /// Detector families and `Maxvar` of the full-protection reference
    /// build the budgets are measured against.
    pub ft: FtOptions,
    /// The budget the emitted [`HardenReport::plan`] is fitted under, as a
    /// fraction of the full-protection detector overhead.
    pub budget: f64,
    /// Budget ladder for the Pareto sweep ([`DEFAULT_BUDGETS`] when empty;
    /// [`Self::budget`] is always included).
    pub budgets: Vec<f64>,
    /// Baseline sensitivity rounds (≥ 1). Round `i` re-plans with seed
    /// `campaign.seed + i` and its tallies accumulate, tightening the
    /// Wilson bounds; the loop stops early once the ranking stabilizes.
    pub iterations: usize,
    /// Campaign parameters shared by the baseline and coverage runs. Its
    /// `hardening` field is ignored (the optimizer sets it per placement).
    pub campaign: CampaignConfig,
    /// Resume the first baseline round from this checkpoint journal
    /// instead of executing it — "ingest a recorded campaign". The
    /// journal's identity (program, kind, plan fingerprint) must match,
    /// exactly as for any resumed campaign.
    pub baseline_journal: Option<PathBuf>,
}

impl Default for HardenConfig {
    fn default() -> Self {
        HardenConfig {
            ft: FtOptions::default(),
            budget: 0.5,
            budgets: vec![],
            iterations: 1,
            campaign: CampaignConfig::default(),
            baseline_journal: None,
        }
    }
}

/// Which detector family a ranked candidate places.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum CandidateKind {
    /// Hauberk-NL duplication + checksum of one variable.
    NonLoop,
    /// One Hauberk-L `(loop, variable)` range detector.
    Loop,
    /// One loop's trip-count invariant: the per-iteration counter plus the
    /// `CheckEqual` against the statically derived trip. Selectable only
    /// for loops with a derivable trip — when deselected, the loop's range
    /// detectors divide by the precomputed expected trip and the counter
    /// (the dominant per-iteration cost) is elided.
    TripCheck,
}

impl CandidateKind {
    /// Stable label used in reports.
    pub fn label(&self) -> &'static str {
        match self {
            CandidateKind::NonLoop => "nl",
            CandidateKind::Loop => "loop",
            CandidateKind::TripCheck => "trip",
        }
    }
}

/// One placeable detector with its measured vulnerability.
#[derive(Debug, Clone)]
pub struct RankedCandidate {
    /// Detector family.
    pub kind: CandidateKind,
    /// Protected loop (loop candidates only).
    pub loop_id: Option<LoopId>,
    /// Protected variable name.
    pub var_name: String,
    /// Baseline injections attributed to this candidate that escaped as
    /// SDC.
    pub undetected: u64,
    /// Baseline injections attributed to this candidate.
    pub samples: u64,
    /// Wilson lower bound of the SDC escape rate (the conservative
    /// vulnerability estimate).
    pub vulnerability: f64,
    /// Dynamic exposure: total executions of the candidate's injection
    /// sites in the profiled run.
    pub exposure: f64,
    /// Vulnerability weight: `vulnerability × exposure`. Candidates are
    /// ordered by score *density* (score per marginal overhead cycle), the
    /// greedy knapsack heuristic — a cheap range-only detector outranks
    /// the expensive trip counter it would otherwise drag in.
    pub score: f64,
    /// Measured marginal fault-free cost of this candidate alone (for a
    /// trip check: on top of its loop's range detectors), in kernel
    /// cycles. The denominator of the greedy ordering.
    pub marginal_overhead_cycles: u64,
    /// Measured fault-free detector overhead (kernel cycles over baseline)
    /// of the greedy prefix ending at this candidate.
    pub prefix_overhead_cycles: u64,
}

impl RankedCandidate {
    fn to_json(&self) -> Json {
        Json::obj([
            ("kind", Json::str(self.kind.label())),
            (
                "loop",
                match self.loop_id {
                    Some(l) => Json::uint(l as u64),
                    None => Json::Null,
                },
            ),
            ("var", Json::str(self.var_name.clone())),
            ("undetected", Json::uint(self.undetected)),
            ("samples", Json::uint(self.samples)),
            ("vulnerability", Json::Num(self.vulnerability)),
            ("exposure", Json::Num(self.exposure)),
            ("score", Json::Num(self.score)),
            (
                "marginal_overhead_cycles",
                Json::uint(self.marginal_overhead_cycles),
            ),
            (
                "prefix_overhead_cycles",
                Json::uint(self.prefix_overhead_cycles),
            ),
        ])
    }
}

/// One measured point of the coverage-vs-overhead Pareto front.
#[derive(Debug, Clone)]
pub struct ParetoPoint {
    /// Budget this point was fitted under (fraction of full overhead).
    pub budget: f64,
    /// Number of active placements in the selection (a ranking prefix can
    /// be longer: a trip check whose loop has no selected range detector
    /// is inactive and dropped).
    pub selected: usize,
    /// The placement itself.
    pub selection: HardeningSelection,
    /// Measured fault-free detector overhead in kernel cycles.
    pub overhead_cycles: u64,
    /// Overhead as a fraction of the baseline kernel cycles.
    pub overhead_frac: f64,
    /// Measured detection coverage (1 − P(undetected)) of the re-run
    /// campaign under this placement.
    pub coverage: f64,
    /// Measured SDC escape ratio under this placement.
    pub sdc_ratio: f64,
}

impl ParetoPoint {
    fn to_json(&self) -> Json {
        Json::obj([
            ("budget", Json::Num(self.budget)),
            ("selected", Json::uint(self.selected as u64)),
            ("selection", self.selection.to_json()),
            ("overhead_cycles", Json::uint(self.overhead_cycles)),
            ("overhead_frac", Json::Num(self.overhead_frac)),
            ("coverage", Json::Num(self.coverage)),
            ("sdc_ratio", Json::Num(self.sdc_ratio)),
        ])
    }
}

/// Output of [`harden`]: the ranking, the front, and the plan at the
/// primary budget.
#[derive(Debug, Clone)]
pub struct HardenReport {
    /// Program name.
    pub program: String,
    /// Baseline (uninstrumented) kernel cycles.
    pub golden_cycles: u64,
    /// Baseline SDC escape ratio (no detectors).
    pub baseline_sdc: f64,
    /// Baseline injections executed (all rounds).
    pub baseline_injections: u64,
    /// Fault-free detector overhead of the full-protection build, in
    /// kernel cycles — the denominator of every budget.
    pub full_overhead_cycles: u64,
    /// Measured coverage of the full-protection build.
    pub full_coverage: f64,
    /// All candidates in rank order (most vulnerable first).
    pub candidates: Vec<RankedCandidate>,
    /// The measured Pareto front, one point per budget (ascending).
    pub front: Vec<ParetoPoint>,
    /// The placement fitted under [`HardenConfig::budget`].
    pub plan: HardeningPlan,
    /// Baseline rounds actually executed.
    pub iterations_run: usize,
    /// Whether the ranking stabilized before the round budget ran out.
    pub converged: bool,
}

impl HardenReport {
    /// Machine-readable report.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("program", Json::str(self.program.clone())),
            ("golden_cycles", Json::uint(self.golden_cycles)),
            ("baseline_sdc", Json::Num(self.baseline_sdc)),
            ("baseline_injections", Json::uint(self.baseline_injections)),
            (
                "full_overhead_cycles",
                Json::uint(self.full_overhead_cycles),
            ),
            ("full_coverage", Json::Num(self.full_coverage)),
            (
                "candidates",
                Json::Arr(self.candidates.iter().map(|c| c.to_json()).collect()),
            ),
            (
                "front",
                Json::Arr(self.front.iter().map(|p| p.to_json()).collect()),
            ),
            ("plan", self.plan.to_json()),
            ("iterations_run", Json::uint(self.iterations_run as u64)),
            ("converged", Json::Bool(self.converged)),
        ])
    }

    /// The Pareto front as CSV (byte-stable: floats use Rust's shortest
    /// round-trip formatting, rows follow the budget ladder).
    pub fn front_csv(&self) -> String {
        let mut out =
            String::from("budget,selected,overhead_cycles,overhead_frac,coverage,sdc_ratio\n");
        for p in &self.front {
            out.push_str(&format!(
                "{},{},{},{},{},{}\n",
                p.budget, p.selected, p.overhead_cycles, p.overhead_frac, p.coverage, p.sdc_ratio
            ));
        }
        out
    }
}

/// Identity of a candidate, used for attribution and stability checks.
type CandidateKey = (CandidateKind, Option<LoopId>, String);

/// Accumulated baseline tallies per candidate.
#[derive(Default, Clone, Copy)]
struct Tally {
    undetected: u64,
    samples: u64,
}

/// Attribute one baseline injection to the candidates whose detector would
/// have been in a position to observe it:
///
/// * a variable fault at a non-loop site goes to the variable's NL
///   candidate;
/// * a variable fault at an in-loop site goes to the variable's loop
///   candidates (the range detector watches the variable's accumulated
///   value);
/// * a scheduler fault (iterator/decision) goes to the targeted loop's
///   trip-check candidate — the invariant built to catch iteration-count
///   perturbations — falling back to the loop's range candidates when the
///   trip is not derivable (no trip-check candidate exists).
fn attribute(
    plan: &InjectionPlan,
    rec: &RecordedInjection,
    sites: &BTreeMap<u32, (String, bool)>,
    tallies: &mut BTreeMap<CandidateKey, Tally>,
) {
    let keys: Vec<CandidateKey> = match plan.fault.site {
        FaultSite::HookTarget { site } | FaultSite::RegisterLive { site, .. } => {
            let Some((var, in_loop)) = sites.get(&site) else {
                return;
            };
            if *in_loop {
                // Any loop candidate protecting this variable.
                tallies
                    .keys()
                    .filter(|(k, _, v)| *k == CandidateKind::Loop && v == var)
                    .cloned()
                    .collect()
            } else {
                vec![(CandidateKind::NonLoop, None, var.clone())]
            }
        }
        FaultSite::LoopIterator { loop_id } | FaultSite::LoopDecision { loop_id } => {
            let trip: Vec<CandidateKey> = tallies
                .keys()
                .filter(|(k, l, _)| *k == CandidateKind::TripCheck && *l == Some(loop_id))
                .cloned()
                .collect();
            if trip.is_empty() {
                tallies
                    .keys()
                    .filter(|(k, l, _)| *k == CandidateKind::Loop && *l == Some(loop_id))
                    .cloned()
                    .collect()
            } else {
                trip
            }
        }
    };
    for key in &keys {
        if let Some(t) = tallies.get_mut(key) {
            t.samples += 1;
            if rec.outcome == FiOutcome::Undetected {
                t.undetected += 1;
            }
        }
    }
}

/// Baseline kernel *time* (per-SM critical path) — the denominator of
/// every overhead number. Not [`hauberk::program::golden_run`]'s second
/// value, which is total *work* cycles (the watchdog quantity).
fn baseline_kernel_cycles(
    prog: &dyn HostProgram,
    base: &hauberk_kir::KernelDef,
    dataset: u64,
) -> Result<u64, String> {
    let run = run_program(prog, base, dataset, &mut hauberk_sim::NullRuntime, u64::MAX);
    match run.outcome {
        LaunchOutcome::Completed(s) => Ok(s.kernel_cycles),
        other => Err(format!(
            "baseline run of `{}` did not complete: {other:?}",
            prog.name()
        )),
    }
}

/// The training-dataset list a coverage run would use (mirrors
/// `prepare_campaign`): configured sets, with the injection dataset
/// appended so execution counts match.
fn train_sets(cfg: &CampaignConfig) -> Vec<u64> {
    let mut train = cfg.training_datasets.clone();
    if train.is_empty() {
        train.push(cfg.dataset);
    }
    if *train.last().expect("nonempty") != cfg.dataset {
        train.push(cfg.dataset);
    }
    train
}

/// Measure the fault-free detector overhead of one placement, in kernel
/// cycles over the baseline: profile (selection-restricted), train ranges,
/// run the selected FT build once, and diff kernel cycles. An empty
/// selection is 0 by construction.
fn measure_overhead(
    prog: &dyn HostProgram,
    base: &hauberk_kir::KernelDef,
    cfg: &HardenConfig,
    sel: &HardeningSelection,
    golden_cycles: u64,
) -> Result<u64, String> {
    if sel.is_empty() {
        return Ok(0);
    }
    let stats = ft_fault_free_stats(prog, base, cfg, Some(sel))?;
    Ok(stats.overhead_vs(golden_cycles))
}

/// Run the (optionally selected) FT build fault-free with trained ranges
/// and return its [`hauberk_sim::ExecStats`]. Errs on a false positive or
/// an abnormal termination — both would invalidate the overhead number.
fn ft_fault_free_stats(
    prog: &dyn HostProgram,
    base: &hauberk_kir::KernelDef,
    cfg: &HardenConfig,
    sel: Option<&HardeningSelection>,
) -> Result<hauberk_sim::ExecStats, String> {
    let profiler = build_selected(base, BuildVariant::Profiler(cfg.ft), sel)
        .map_err(|e| format!("profiler build: {e}"))?;
    let (mut ranges, _) = profile_program(prog, &profiler, &train_sets(&cfg.campaign));
    if cfg.campaign.alpha > 1.0 {
        for r in &mut ranges {
            *r = r.apply_alpha(cfg.campaign.alpha);
        }
    }
    let ft = build_selected(base, BuildVariant::Ft(cfg.ft), sel)
        .map_err(|e| format!("ft build: {e}"))?;
    let det_vars = ft.detectors.iter().map(|d| d.var_name.clone()).collect();
    let cb = ControlBlock::with_ranges(ranges).with_detector_vars(det_vars);
    let mut rt = FtRuntime::new(cb);
    let run = run_program(prog, &ft.kernel, cfg.campaign.dataset, &mut rt, u64::MAX);
    let LaunchOutcome::Completed(stats) = run.outcome else {
        return Err(format!(
            "fault-free FT run of `{}` did not complete: {:?}",
            prog.name(),
            run.outcome
        ));
    };
    if rt.cb.sdc_flag {
        return Err(format!(
            "fault-free FT run of `{}` raised a detector alarm (training does not cover the test dataset)",
            prog.name()
        ));
    }
    Ok(stats)
}

/// Run a coverage campaign under `sel` and return `(coverage, sdc_ratio)`.
fn measure_coverage(
    prog: &dyn HostProgram,
    cfg: &HardenConfig,
    sel: &HardeningSelection,
) -> Result<(f64, f64), String> {
    let mut ccfg = cfg.campaign.clone();
    ccfg.hardening = Some(sel.clone());
    let r = run_orchestrated_campaign(
        prog,
        CampaignKind::Coverage(cfg.ft),
        &ccfg,
        &OrchestratorConfig::default(),
    )?;
    Ok((
        r.campaign.coverage(),
        r.campaign.ratio(FiOutcome::Undetected),
    ))
}

/// Rank the accumulated tallies greedily by score *density*: score =
/// Wilson-lower-bound(SDC rate) × exposure, divided by the candidate's
/// measured marginal overhead (clamped to ≥ 1 cycle), descending, with a
/// total deterministic tie-break on the candidate identity. Dividing by
/// cost is the classic greedy knapsack heuristic: it lets many cheap
/// detectors fit under a budget before one expensive high-score one.
fn rank(
    tallies: &BTreeMap<CandidateKey, Tally>,
    exposure: &BTreeMap<CandidateKey, f64>,
    costs: &BTreeMap<CandidateKey, u64>,
) -> Vec<RankedCandidate> {
    let mut out: Vec<RankedCandidate> = tallies
        .iter()
        .map(|((kind, loop_id, var), t)| {
            let vulnerability = wilson_interval(t.undetected, t.samples, RANK_Z).0;
            let key = (*kind, *loop_id, var.clone());
            let exp = exposure.get(&key).copied().unwrap_or(0.0);
            RankedCandidate {
                kind: *kind,
                loop_id: *loop_id,
                var_name: var.clone(),
                undetected: t.undetected,
                samples: t.samples,
                vulnerability,
                exposure: exp,
                score: vulnerability * exp,
                marginal_overhead_cycles: costs.get(&key).copied().unwrap_or(0),
                prefix_overhead_cycles: 0,
            }
        })
        .collect();
    let density = |c: &RankedCandidate| c.score / c.marginal_overhead_cycles.max(1) as f64;
    out.sort_by(|a, b| {
        density(b)
            .total_cmp(&density(a))
            .then_with(|| a.kind.cmp(&b.kind))
            .then_with(|| a.loop_id.cmp(&b.loop_id))
            .then_with(|| a.var_name.cmp(&b.var_name))
    });
    out
}

/// The selection made of the flagged candidates (normalized). A trip
/// check is only active when its loop also has a selected range detector
/// (there is no check to attach it to otherwise); dropping the inactive
/// ones keeps nested candidate sets mapping to nested selections.
fn selection_of(candidates: &[RankedCandidate], included: &[bool]) -> HardeningSelection {
    let mut sel = HardeningSelection::default();
    for (c, _) in candidates.iter().zip(included).filter(|(_, inc)| **inc) {
        match c.kind {
            CandidateKind::NonLoop => sel.nonloop_vars.push(c.var_name.clone()),
            CandidateKind::Loop => sel
                .loop_detectors
                .push((c.loop_id.expect("loop candidate"), c.var_name.clone())),
            CandidateKind::TripCheck => sel.trip_checks.push(c.loop_id.expect("trip candidate")),
        }
    }
    sel.trip_checks
        .retain(|l| sel.loop_detectors.iter().any(|(dl, _)| dl == l));
    sel.normalize();
    sel
}

/// The selection made of the first `k` ranked candidates.
fn prefix_selection(candidates: &[RankedCandidate], k: usize) -> HardeningSelection {
    let mut included = vec![false; candidates.len()];
    included[..k].fill(true);
    selection_of(candidates, &included)
}

/// Run the full closed loop and produce the report. See the module docs
/// for the five stages. Deterministic for a fixed config.
pub fn harden(prog: &dyn HostProgram, cfg: &HardenConfig) -> Result<HardenReport, String> {
    let base = prog.build_kernel();
    let golden_cycles = baseline_kernel_cycles(prog, &base, cfg.campaign.dataset)?;

    // Candidate enumeration from the full-protection build: NL candidates
    // are variables with at least one non-loop injection site (parameters
    // have no sites — no injectable faults — and are excluded); loop
    // candidates are the detectors the unrestricted loop pass places.
    let full_fift = build_selected(&base, BuildVariant::FiFt(cfg.ft), None)
        .map_err(|e| format!("FI&FT build: {e}"))?;
    let sites: BTreeMap<u32, (String, bool)> = full_fift
        .fi
        .sites
        .iter()
        .map(|s| (s.site, (s.var_name.clone(), s.in_loop)))
        .collect();
    let mut tallies: BTreeMap<CandidateKey, Tally> = BTreeMap::new();
    if cfg.ft.nonloop {
        for s in &full_fift.fi.sites {
            if !s.in_loop {
                tallies
                    .entry((CandidateKind::NonLoop, None, s.var_name.clone()))
                    .or_default();
            }
        }
    }
    if cfg.ft.loops {
        for d in &full_fift.detectors {
            tallies
                .entry((CandidateKind::Loop, Some(d.loop_id), d.var_name.clone()))
                .or_default();
            // Loops with a derivable trip have a separately selectable
            // trip-count invariant (the counter + `CheckEqual`).
            if d.trip_checked {
                tallies
                    .entry((CandidateKind::TripCheck, Some(d.loop_id), String::new()))
                    .or_default();
            }
        }
    }
    if tallies.is_empty() {
        return Err(format!("`{}` has no placeable detectors", prog.name()));
    }

    // Dynamic exposure from the profiled execution counts: for each
    // candidate, the total executions of the injection sites it watches.
    let profiler = build_selected(&base, BuildVariant::Profiler(cfg.ft), None)
        .map_err(|e| format!("profiler build: {e}"))?;
    let (_, pr) = profile_program(prog, &profiler, &[cfg.campaign.dataset]);
    let mut exposure: BTreeMap<CandidateKey, f64> = BTreeMap::new();
    for key @ (kind, loop_id, var) in tallies.keys() {
        let execs: u64 = match kind {
            CandidateKind::NonLoop => full_fift
                .fi
                .sites
                .iter()
                .filter(|s| !s.in_loop && &s.var_name == var)
                .map(|s| pr.total_execs(s.site))
                .sum(),
            CandidateKind::Loop => full_fift
                .fi
                .sites
                .iter()
                .filter(|s| s.in_loop && &s.var_name == var)
                .map(|s| pr.total_execs(s.site))
                .sum(),
            // The trip check fires once per loop iteration; the FI map
            // does not tag sites with a loop id, so approximate the
            // iteration count by the busiest in-loop site among the
            // variables the loop's detectors protect (each site executes
            // at most once per iteration).
            CandidateKind::TripCheck => {
                let vars: Vec<&String> = full_fift
                    .detectors
                    .iter()
                    .filter(|d| Some(d.loop_id) == *loop_id)
                    .map(|d| &d.var_name)
                    .collect();
                full_fift
                    .fi
                    .sites
                    .iter()
                    .filter(|s| s.in_loop && vars.contains(&&s.var_name))
                    .map(|s| pr.total_execs(s.site))
                    .max()
                    .unwrap_or(0)
            }
        };
        exposure.insert(key.clone(), execs as f64);
    }

    // Marginal fault-free cost of each candidate, measured once. NL and
    // loop candidates are measured alone; a trip check is measured as the
    // delta it adds on top of its loop's range detectors (alone it places
    // nothing). These are the denominators of the greedy score density.
    let mut costs: BTreeMap<CandidateKey, u64> = BTreeMap::new();
    for key @ (kind, loop_id, var) in tallies.keys() {
        let cost = match kind {
            CandidateKind::NonLoop => {
                let sel = HardeningSelection {
                    nonloop_vars: vec![var.clone()],
                    ..Default::default()
                };
                measure_overhead(prog, &base, cfg, &sel, golden_cycles)?
            }
            CandidateKind::Loop => {
                let sel = HardeningSelection {
                    loop_detectors: vec![(loop_id.expect("loop candidate"), var.clone())],
                    ..Default::default()
                };
                measure_overhead(prog, &base, cfg, &sel, golden_cycles)?
            }
            CandidateKind::TripCheck => {
                let l = loop_id.expect("trip candidate");
                let dets: Vec<(LoopId, String)> = full_fift
                    .detectors
                    .iter()
                    .filter(|d| d.loop_id == l)
                    .map(|d| (d.loop_id, d.var_name.clone()))
                    .collect();
                let without = HardeningSelection {
                    loop_detectors: dets.clone(),
                    ..Default::default()
                };
                let with = HardeningSelection {
                    loop_detectors: dets,
                    trip_checks: vec![l],
                    ..Default::default()
                };
                measure_overhead(prog, &base, cfg, &with, golden_cycles)?
                    .saturating_sub(measure_overhead(prog, &base, cfg, &without, golden_cycles)?)
            }
        };
        costs.insert(key.clone(), cost);
    }

    // Baseline rounds: accumulate attribution tallies until the ranking
    // stabilizes or the round budget runs out.
    let rounds = cfg.iterations.max(1);
    let mut candidates: Vec<RankedCandidate> = Vec::new();
    let mut prev_order: Option<Vec<CandidateKey>> = None;
    let mut converged = false;
    let mut iterations_run = 0;
    let mut baseline_injections = 0u64;
    let mut baseline_undetected = 0u64;
    let mut fingerprint = String::new();
    for round in 0..rounds {
        let mut ccfg = cfg.campaign.clone();
        ccfg.seed = cfg.campaign.seed + round as u64;
        ccfg.hardening = None;
        let orch = OrchestratorConfig {
            resume_from: if round == 0 {
                cfg.baseline_journal.clone()
            } else {
                None
            },
            ..Default::default()
        };
        let env = prepare_campaign(prog, &CampaignKind::Sensitivity, &ccfg);
        if round == 0 {
            fingerprint = format!("{:016x}", fingerprint_plans(&env.plans));
        }
        let result = run_orchestrated_campaign(prog, CampaignKind::Sensitivity, &ccfg, &orch)?;
        for rec in &result.records {
            attribute(&env.plans[rec.index as usize], rec, &sites, &mut tallies);
            baseline_injections += 1;
            if rec.outcome == FiOutcome::Undetected {
                baseline_undetected += 1;
            }
        }
        candidates = rank(&tallies, &exposure, &costs);
        iterations_run = round + 1;
        let order: Vec<CandidateKey> = candidates
            .iter()
            .map(|c| (c.kind, c.loop_id, c.var_name.clone()))
            .collect();
        if prev_order.as_ref() == Some(&order) {
            converged = true;
            break;
        }
        prev_order = Some(order);
    }
    let baseline_sdc = if baseline_injections == 0 {
        0.0
    } else {
        baseline_undetected as f64 / baseline_injections as f64
    };

    // Overhead of every greedy prefix, measured once each (fault-free
    // runs), and of the full-protection build (the budget denominator).
    let full_overhead_cycles =
        ft_fault_free_stats(prog, &base, cfg, None)?.overhead_vs(golden_cycles);
    let mut overhead_cache: BTreeMap<String, u64> = BTreeMap::new();
    for k in 1..=candidates.len() {
        let sel = prefix_selection(&candidates, k);
        let oh = measure_overhead(prog, &base, cfg, &sel, golden_cycles)?;
        candidates[k - 1].prefix_overhead_cycles = oh;
        overhead_cache.insert(sel.to_json().to_string(), oh);
    }

    // Budget ladder → nested greedy fill → measured front. Each budget
    // starts from the previous (smaller) budget's candidate set and scans
    // the ranking in order, admitting every candidate whose measured
    // overhead still fits — so a cheap detector is never blocked behind an
    // expensive higher-ranked one, and selections stay nested across the
    // ladder (which is what makes the measured front monotone: detectors
    // only observe). Coverage campaigns are cached per distinct selection.
    let mut budgets: Vec<f64> = if cfg.budgets.is_empty() {
        DEFAULT_BUDGETS.to_vec()
    } else {
        cfg.budgets.clone()
    };
    budgets.push(cfg.budget);
    budgets.sort_by(f64::total_cmp);
    budgets.dedup();
    let mut included = vec![false; candidates.len()];
    let mut coverage_cache: BTreeMap<String, (f64, f64)> = BTreeMap::new();
    let mut front = Vec::with_capacity(budgets.len());
    let mut primary_selection = HardeningSelection::default();
    for &b in &budgets {
        let allowed = (b * full_overhead_cycles as f64).floor() as u64;
        for i in 0..candidates.len() {
            if included[i] {
                continue;
            }
            included[i] = true;
            let sel = selection_of(&candidates, &included);
            let key = sel.to_json().to_string();
            let oh = match overhead_cache.get(&key) {
                Some(&oh) => oh,
                None => {
                    let oh = measure_overhead(prog, &base, cfg, &sel, golden_cycles)?;
                    overhead_cache.insert(key, oh);
                    oh
                }
            };
            if oh > allowed {
                included[i] = false;
            }
        }
        let sel = selection_of(&candidates, &included);
        let key = sel.to_json().to_string();
        let overhead_cycles = match overhead_cache.get(&key) {
            Some(&oh) => oh,
            None => measure_overhead(prog, &base, cfg, &sel, golden_cycles)?,
        };
        let (coverage, sdc_ratio) = match coverage_cache.get(&key) {
            Some(&c) => c,
            None => {
                let c = measure_coverage(prog, cfg, &sel)?;
                coverage_cache.insert(key, c);
                c
            }
        };
        if b == cfg.budget {
            primary_selection = sel.clone();
        }
        front.push(ParetoPoint {
            budget: b,
            selected: sel.len(),
            selection: sel,
            overhead_cycles,
            overhead_frac: if golden_cycles == 0 {
                0.0
            } else {
                overhead_cycles as f64 / golden_cycles as f64
            },
            coverage,
            sdc_ratio,
        });
    }
    let (full_coverage, _) = measure_coverage_full(prog, cfg)?;

    Ok(HardenReport {
        program: prog.name().to_string(),
        golden_cycles,
        baseline_sdc,
        baseline_injections,
        full_overhead_cycles,
        full_coverage,
        candidates,
        front,
        plan: HardeningPlan {
            program: prog.name().to_string(),
            budget: cfg.budget,
            fingerprint,
            selection: primary_selection,
        },
        iterations_run,
        converged,
    })
}

/// Coverage of the classic full-protection build (selection = everything).
fn measure_coverage_full(prog: &dyn HostProgram, cfg: &HardenConfig) -> Result<(f64, f64), String> {
    let ccfg = cfg.campaign.clone();
    let r = run_orchestrated_campaign(
        prog,
        CampaignKind::Coverage(cfg.ft),
        &ccfg,
        &OrchestratorConfig::default(),
    )?;
    Ok((
        r.campaign.coverage(),
        r.campaign.ratio(FiOutcome::Undetected),
    ))
}

/// Evaluate an externally supplied placement (`--plan-in`): measure its
/// fault-free overhead and re-run the coverage campaign under it. The
/// plan's program name must match.
pub fn evaluate_placement(
    prog: &dyn HostProgram,
    plan: &HardeningPlan,
    cfg: &HardenConfig,
) -> Result<ParetoPoint, String> {
    if plan.program != prog.name() {
        return Err(format!(
            "plan was derived for `{}`, not `{}`",
            plan.program,
            prog.name()
        ));
    }
    let base = prog.build_kernel();
    let golden_cycles = baseline_kernel_cycles(prog, &base, cfg.campaign.dataset)?;
    let overhead_cycles = measure_overhead(prog, &base, cfg, &plan.selection, golden_cycles)?;
    let (coverage, sdc_ratio) = measure_coverage(prog, cfg, &plan.selection)?;
    Ok(ParetoPoint {
        budget: plan.budget,
        selected: plan.selection.len(),
        selection: plan.selection.clone(),
        overhead_cycles,
        overhead_frac: if golden_cycles == 0 {
            0.0
        } else {
            overhead_cycles as f64 / golden_cycles as f64
        },
        coverage,
        sdc_ratio,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::PlanConfig;
    use hauberk_benchmarks::{cp::Cp, ProblemScale};

    fn quick_cfg() -> HardenConfig {
        HardenConfig {
            campaign: CampaignConfig {
                plan: PlanConfig {
                    vars_per_program: 6,
                    masks_per_var: 6,
                    bit_counts: vec![1],
                    scheduler_per_mille: 80,
                    register_per_mille: 80,
                },
                ..Default::default()
            },
            ..Default::default()
        }
    }

    #[test]
    fn harden_produces_a_monotone_front_and_a_deterministic_plan() {
        let prog = Cp::new(ProblemScale::Quick);
        let cfg = quick_cfg();
        let r = harden(&prog, &cfg).unwrap();
        assert!(!r.candidates.is_empty());
        assert!(r.full_overhead_cycles > 0);
        // Budgets ascend; selected prefix and overhead are non-decreasing.
        for w in r.front.windows(2) {
            assert!(w[0].budget < w[1].budget);
            assert!(w[0].selected <= w[1].selected);
            assert!(w[0].overhead_cycles <= w[1].overhead_cycles);
        }
        // The budget-1.0 point holds every candidate (its prefix overhead
        // cannot exceed the full build's, which includes parameters too).
        let last = r.front.last().unwrap();
        assert_eq!(last.selected, r.candidates.len());
        assert!(last.overhead_cycles <= r.full_overhead_cycles);
        // Zero budget places nothing and costs nothing.
        assert_eq!(r.front[0].selected, 0);
        assert_eq!(r.front[0].overhead_cycles, 0);
        // Determinism: same config, byte-identical plan and front.
        let r2 = harden(&prog, &cfg).unwrap();
        assert_eq!(r2.plan.to_json_string(), r.plan.to_json_string());
        assert_eq!(r2.front_csv(), r.front_csv());
    }

    #[test]
    fn evaluate_placement_round_trips_the_primary_plan() {
        let prog = Cp::new(ProblemScale::Quick);
        let cfg = quick_cfg();
        let r = harden(&prog, &cfg).unwrap();
        let parsed = HardeningPlan::parse(&r.plan.to_json_string()).unwrap();
        let point = evaluate_placement(&prog, &parsed, &cfg).unwrap();
        let same = r
            .front
            .iter()
            .find(|p| p.selection == parsed.selection)
            .expect("primary budget is on the front");
        assert_eq!(point.overhead_cycles, same.overhead_cycles);
        assert_eq!(point.coverage, same.coverage);
    }
}
