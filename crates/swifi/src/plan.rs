//! Campaign planning: which faults to arm (§VIII).
//!
//! The paper selects 20–50 virtual variables per program, injects 50 random
//! error masks into each, and arms each injection at a concrete dynamic
//! occurrence. We reproduce that: variables are drawn from the FI map,
//! (thread, occurrence) pairs from the profiler build's execution counts,
//! and a configurable fraction of experiments target the SM scheduler
//! (loop iterators and branch decisions) instead of computation results.

use crate::mask::random_mask;
use hauberk::runtime::ProfilerRuntime;
use hauberk::translator::FiMap;
use hauberk_kir::types::DataClass;
use hauberk_kir::HwComponent;
use hauberk_sim::fault::{ArmedFault, FaultSite};
use rand::seq::SliceRandom;
use rand::Rng;

/// One planned experiment.
#[derive(Debug, Clone, Copy)]
pub struct InjectionPlan {
    /// The armed fault.
    pub fault: ArmedFault,
    /// Data class of the targeted state.
    pub class: DataClass,
    /// Emulated hardware component.
    pub hw: HwComponent,
    /// Mask bit count.
    pub bits: u32,
}

/// Planning parameters.
#[derive(Debug, Clone)]
pub struct PlanConfig {
    /// Virtual variables to select (paper: 20–50).
    pub vars_per_program: usize,
    /// Error masks per selected variable (paper: 50).
    pub masks_per_var: usize,
    /// Mask bit counts to cycle through (e.g. `[1]` or the paper's
    /// `[1, 3, 6, 10, 15]`).
    pub bit_counts: Vec<u32>,
    /// Fraction (×1000) of extra scheduler-fault experiments relative to the
    /// variable experiments (the paper's fault class (d)).
    pub scheduler_per_mille: u32,
    /// Fraction (×1000) of extra register-file experiments (the paper's
    /// fault class (c): corrupt a live variable at another statement's
    /// execution point, between the variable's uses).
    pub register_per_mille: u32,
}

impl Default for PlanConfig {
    fn default() -> Self {
        PlanConfig {
            vars_per_program: 24,
            masks_per_var: 20,
            bit_counts: vec![1],
            scheduler_per_mille: 60,
            register_per_mille: 60,
        }
    }
}

/// Plan a campaign from the FI surface and the profiler's execution counts.
///
/// Sites that never executed are skipped (a fault there could never
/// activate). Returns an empty plan only for kernels with no executed sites.
pub fn plan_campaign(
    fi: &FiMap,
    profile: &ProfilerRuntime,
    cfg: &PlanConfig,
    rng: &mut impl Rng,
) -> Vec<InjectionPlan> {
    // Group executed sites by variable.
    let mut vars: Vec<(&str, Vec<usize>)> = Vec::new();
    for (i, site) in fi.sites.iter().enumerate() {
        if profile.total_execs(site.site) == 0 {
            continue;
        }
        match vars.iter_mut().find(|(n, _)| *n == site.var_name.as_str()) {
            Some((_, idxs)) => idxs.push(i),
            None => vars.push((site.var_name.as_str(), vec![i])),
        }
    }
    vars.shuffle(rng);
    vars.truncate(cfg.vars_per_program);

    let mut plans = Vec::new();
    for (_, site_idxs) in &vars {
        for m in 0..cfg.masks_per_var {
            let bits = cfg.bit_counts[m % cfg.bit_counts.len()];
            let mask = random_mask(rng, bits);
            let si = site_idxs[rng.gen_range(0..site_idxs.len())];
            let site = &fi.sites[si];
            let threads = profile.threads_of(site.site);
            let (thread, count) = threads[rng.gen_range(0..threads.len())];
            let occurrence = rng.gen_range(1..=count);
            plans.push(InjectionPlan {
                fault: ArmedFault {
                    site: FaultSite::HookTarget { site: site.site },
                    thread,
                    occurrence,
                    mask,
                },
                class: site.class,
                hw: site.hw,
                bits,
            });
        }
    }

    // Register-file faults: corrupt variable V at the execution point of a
    // *different* site S, while V sits in a register between uses.
    if fi.sites.len() >= 2 && !plans.is_empty() {
        let n_reg = plans.len() * cfg.register_per_mille as usize / 1000;
        for i in 0..n_reg {
            let victim = &fi.sites[rng.gen_range(0..fi.sites.len())];
            let trigger = &fi.sites[rng.gen_range(0..fi.sites.len())];
            if profile.total_execs(trigger.site) == 0 {
                continue;
            }
            let bits = cfg.bit_counts[i % cfg.bit_counts.len()];
            let threads = profile.threads_of(trigger.site);
            let (thread, count) = threads[rng.gen_range(0..threads.len())];
            plans.push(InjectionPlan {
                fault: ArmedFault {
                    site: FaultSite::RegisterLive {
                        site: trigger.site,
                        var: victim.var,
                    },
                    thread,
                    occurrence: rng.gen_range(1..=count),
                    mask: random_mask(rng, bits),
                },
                class: victim.class,
                hw: HwComponent::RegisterFile,
                bits,
            });
        }
    }

    // Scheduler faults against loops.
    if !fi.loops.is_empty() && !plans.is_empty() {
        let n_sched = plans.len() * cfg.scheduler_per_mille as usize / 1000;
        // Arm scheduler faults on threads known to execute (from any site).
        let known_threads: Vec<u32> = {
            let mut t: Vec<u32> = fi
                .sites
                .iter()
                .flat_map(|s| profile.threads_of(s.site))
                .map(|(t, _)| t)
                .collect();
            t.sort_unstable();
            t.dedup();
            t
        };
        for i in 0..n_sched {
            let lp = fi.loops[rng.gen_range(0..fi.loops.len())];
            let bits = cfg.bit_counts[i % cfg.bit_counts.len()];
            let use_iter = lp.has_iterator && rng.gen_bool(0.7);
            let site = if use_iter {
                FaultSite::LoopIterator {
                    loop_id: lp.loop_id,
                }
            } else {
                FaultSite::LoopDecision {
                    loop_id: lp.loop_id,
                }
            };
            let thread = known_threads[rng.gen_range(0..known_threads.len())];
            plans.push(InjectionPlan {
                fault: ArmedFault {
                    site,
                    thread,
                    occurrence: rng.gen_range(1..=4),
                    mask: random_mask(rng, bits),
                },
                class: DataClass::Integer,
                hw: HwComponent::Scheduler,
                bits,
            });
        }
    }
    plans
}

#[cfg(test)]
mod tests {
    use super::*;
    use hauberk::builds::{build, BuildVariant, FtOptions};
    use hauberk::program::{run_program, HostProgram};
    use hauberk_benchmarks::{cp::Cp, ProblemScale};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn plans_cover_vars_masks_and_scheduler() {
        let prog = Cp::new(ProblemScale::Quick);
        let base = prog.build_kernel();
        let profiler = build(&base, BuildVariant::Profiler(FtOptions::default())).unwrap();
        let mut pr = ProfilerRuntime::default();
        let run = run_program(&prog, &profiler.kernel, 0, &mut pr, u64::MAX);
        assert!(run.outcome.is_completed());

        let fi = build(&base, BuildVariant::Fi).unwrap();
        let cfg = PlanConfig {
            vars_per_program: 8,
            masks_per_var: 10,
            bit_counts: vec![1, 3],
            scheduler_per_mille: 100,
            register_per_mille: 100,
        };
        // The FI build's sites and the profiler's CountExec sites share the
        // same numbering (same pass, same traversal).
        let mut rng = SmallRng::seed_from_u64(7);
        let plans = plan_campaign(&fi.fi, &pr, &cfg, &mut rng);
        assert!(
            plans.len() >= 80,
            "8 vars x 10 masks + scheduler: {}",
            plans.len()
        );
        assert!(plans.iter().any(|p| p.hw == HwComponent::Scheduler));
        assert!(plans.iter().any(|p| p.hw == HwComponent::RegisterFile));
        assert!(plans.iter().any(|p| p.bits == 3));
        assert!(plans.iter().all(|p| p.fault.occurrence >= 1));
        // Determinism.
        let mut rng2 = SmallRng::seed_from_u64(7);
        let plans2 = plan_campaign(&fi.fi, &pr, &cfg, &mut rng2);
        assert_eq!(plans.len(), plans2.len());
        assert_eq!(plans[0].fault, plans2[0].fault);
    }
}
