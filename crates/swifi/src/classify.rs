//! Outcome classification (§VIII).

use hauberk::program::CorrectnessSpec;
use hauberk_kir::types::DataClass;
use hauberk_kir::HwComponent;
use hauberk_sim::LaunchOutcome;
use std::fmt;

/// Why a run counted as a failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureKind {
    /// Kernel crash detected by the (simulated) GPU runtime.
    Crash,
    /// Hang / execution-delay detected by the watchdog budget.
    Hang,
}

/// The paper's five-way fault-injection outcome taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FiOutcome {
    /// GPU kernel crash or hang.
    Failure,
    /// Output satisfies the correctness requirement and no alarm was raised
    /// (includes faults that never activated).
    Masked,
    /// Alarm raised but the output still satisfies the requirement
    /// (a re-execution would diagnose the false alarm).
    DetectedMasked,
    /// Alarm raised and the output violates the requirement.
    Detected,
    /// Output violates the requirement and no alarm: a silent data
    /// corruption that escaped the detectors.
    Undetected,
}

impl FiOutcome {
    /// All outcomes, in the paper's legend order.
    pub const ALL: [FiOutcome; 5] = [
        FiOutcome::Failure,
        FiOutcome::Masked,
        FiOutcome::DetectedMasked,
        FiOutcome::Detected,
        FiOutcome::Undetected,
    ];

    /// Parse the [`std::fmt::Display`] label back (CSV and journal readers).
    pub fn parse(s: &str) -> Option<FiOutcome> {
        FiOutcome::ALL.into_iter().find(|o| o.to_string() == s)
    }
}

impl fmt::Display for FiOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            FiOutcome::Failure => "failure",
            FiOutcome::Masked => "masked",
            FiOutcome::DetectedMasked => "detected&masked",
            FiOutcome::Detected => "detected",
            FiOutcome::Undetected => "undetected",
        })
    }
}

/// Classify one completed-or-not run.
pub fn classify(
    outcome: &LaunchOutcome,
    output: Option<&[f64]>,
    golden: &[f64],
    spec: &CorrectnessSpec,
    alarm: bool,
) -> FiOutcome {
    match outcome {
        LaunchOutcome::Crash { .. } => FiOutcome::Failure,
        LaunchOutcome::Hang { .. } => FiOutcome::Failure,
        LaunchOutcome::Completed(_) => {
            let out = output.expect("completed run has output");
            let violation = spec.is_violation(golden, out);
            match (violation, alarm) {
                (false, false) => FiOutcome::Masked,
                (false, true) => FiOutcome::DetectedMasked,
                (true, true) => FiOutcome::Detected,
                (true, false) => FiOutcome::Undetected,
            }
        }
    }
}

/// One fault-injection experiment's record.
#[derive(Debug, Clone)]
pub struct InjectionResult {
    /// Data class of the corrupted state.
    pub class: DataClass,
    /// Hardware component the fault emulated.
    pub hw: HwComponent,
    /// Bits in the error mask.
    pub bits: u32,
    /// Whether the armed fault actually activated during the run.
    pub delivered: bool,
    /// Classified outcome.
    pub outcome: FiOutcome,
}

#[cfg(test)]
mod tests {
    use super::*;
    use hauberk_sim::{ExecStats, TrapReason};

    fn spec() -> CorrectnessSpec {
        CorrectnessSpec::RelAbs {
            rel: 0.01,
            abs: 0.0,
        }
    }

    #[test]
    fn classification_matrix() {
        let golden = [10.0, 20.0];
        let done = LaunchOutcome::Completed(ExecStats::default());
        assert_eq!(
            classify(&done, Some(&[10.0, 20.0]), &golden, &spec(), false),
            FiOutcome::Masked
        );
        assert_eq!(
            classify(&done, Some(&[10.0, 20.0]), &golden, &spec(), true),
            FiOutcome::DetectedMasked
        );
        assert_eq!(
            classify(&done, Some(&[10.0, 99.0]), &golden, &spec(), true),
            FiOutcome::Detected
        );
        assert_eq!(
            classify(&done, Some(&[10.0, 99.0]), &golden, &spec(), false),
            FiOutcome::Undetected
        );
        let crash = LaunchOutcome::Crash {
            reason: TrapReason::IntDivByZero,
            stats: ExecStats::default(),
        };
        assert_eq!(
            classify(&crash, None, &golden, &spec(), false),
            FiOutcome::Failure
        );
        let hang = LaunchOutcome::Hang {
            stats: ExecStats::default(),
        };
        assert_eq!(
            classify(&hang, None, &golden, &spec(), true),
            FiOutcome::Failure
        );
    }
}
