//! Fault-free prefix checkpointing for injection campaigns.
//!
//! Every injection of a campaign re-executes the same fault-free prefix:
//! the armed fault targets one thread, the thread lives in one block, and
//! blocks execute deterministically in linear order — so everything before
//! the target block is byte-for-byte identical across the stratum. The
//! crate-internal `CheckpointStore` runs the build under test **once** fault-free
//! ([`hauberk_sim::Device::capture_launch`]), capturing a [`Snapshot`] at
//! every block boundary some planned fault targets plus a reconvergence
//! *fence* fingerprint one block later. Each injection then restores the
//! shared snapshot and executes only from its target block
//! ([`hauberk_sim::Device::resume_spliced`]); when its post-block state
//! fingerprints equal to the reference at the fence, the run stops there and
//! reuses the reference finals (FastFlip-style tail splicing).
//!
//! ## Eligibility
//!
//! The store refuses to build (and the orchestrator falls back to full
//! re-execution) when the equivalence argument does not hold:
//!
//! * the fault-free reference must complete — a crashing/hanging reference
//!   has no stable per-boundary state to share;
//! * for coverage campaigns, the fault-free reference must raise **no**
//!   alarms: the FT control block's alarm/outlier state accumulates
//!   monotonically, so "no alarms at the end" proves the state was empty at
//!   every boundary, which is exactly what a freshly-seeded control block in
//!   a resumed run assumes. A reference that false-positives would make the
//!   resumed prefix state diverge from a full run's.
//!
//! Classification stays on the injection's *own* runtime (delivery flag,
//! delivery cycle, alarms): a spliced run only reconverges when its runtime
//! fingerprint matches the (alarm-free) reference, so its own control block
//! is already final at the fence.

use crate::campaign::CampaignEnv;
use hauberk::control::ControlBlock;
use hauberk::program::HostProgram;
use hauberk::runtime::{FiFtRuntime, FiRuntime};
use hauberk_kir::Value;
use hauberk_sim::{Device, HookRuntime, LaunchOutcome, Snapshot, Spliced};
use hauberk_telemetry::Telemetry;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicU64, Ordering};

/// Final state of the fault-free reference run: what a spliced injection
/// reuses instead of executing the remaining blocks itself.
#[derive(Debug)]
struct ReferenceFinals {
    /// Outcome of the full reference execution (always `Completed`).
    outcome: LaunchOutcome,
    /// Program output read back from the reference device.
    output: Vec<f64>,
}

/// Shared fault-free prefix state for one campaign: per-boundary snapshots,
/// per-fence reference fingerprints, the cached kernel arguments, and the
/// reference finals. Built once, then read concurrently by every injection
/// of the campaign (cheap interior counters track the savings).
#[derive(Debug)]
pub(crate) struct CheckpointStore {
    /// Snapshot per requested block boundary.
    snapshots: BTreeMap<u32, Snapshot>,
    /// Reference state fingerprint per fence boundary.
    fences: BTreeMap<u32, u64>,
    /// Kernel arguments from the reference `setup` (deterministic per
    /// dataset, so injection runs skip `setup` and reuse these).
    args: Vec<Value>,
    /// Reference finals for spliced runs.
    finals: ReferenceFinals,
    /// Threads per block of the campaign's launch geometry.
    tpb: u32,
    /// Work cycles the reference capture run simulated (charged once).
    pub(crate) reference_cycles: u64,
    /// Injections executed through the store.
    pub(crate) injections: AtomicU64,
    /// Injections that reconverged at their fence and spliced the reference
    /// tail instead of executing it.
    pub(crate) spliced: AtomicU64,
    /// Work cycles actually simulated by the resumed injections (prefixes
    /// skipped, spliced tails not executed).
    pub(crate) executed_cycles: AtomicU64,
}

/// Outcome of one checkpointed injection execution.
pub(crate) struct InjectionRun {
    /// Launch outcome (the reference's, when spliced).
    pub(crate) outcome: LaunchOutcome,
    /// Program output of a completed run.
    pub(crate) output: Option<Vec<f64>>,
}

impl CheckpointStore {
    /// Run the build under test fault-free, capturing a snapshot at every
    /// block boundary the plan targets (plus reconvergence fences), and
    /// return the shared store. `Err` carries the reason checkpointing is
    /// ineligible for this campaign; the caller falls back to full
    /// re-execution.
    pub(crate) fn build(env: &CampaignEnv, prog: &dyn HostProgram) -> Result<Self, String> {
        let launch = prog.launch().with_budget(env.budget);
        let tpb = launch.threads_per_block();
        let total = launch.total_blocks();
        if tpb == 0 || total == 0 {
            return Err("degenerate launch geometry".into());
        }

        let mut boundaries: BTreeSet<u32> = BTreeSet::new();
        for p in &env.plans {
            let b = p.fault.thread / tpb;
            if b < total {
                boundaries.insert(b);
            }
        }
        if boundaries.is_empty() {
            return Err("no planned fault targets a block inside the grid".into());
        }
        let fence_req: Vec<u32> = boundaries
            .iter()
            .map(|b| b + 1)
            .filter(|f| *f < total)
            .collect();
        let boundary_req: Vec<u32> = boundaries.iter().copied().collect();

        let mut config = prog.device_config();
        if let Some(e) = env.engine {
            config.engine = e;
        }
        // The reference run is extra work a plain campaign never does; keep
        // it out of the campaign trace so checkpointing stays observation-
        // invariant where the equivalence suite compares outputs.
        let mut dev = Device::new(config);
        let args = prog.setup(&mut dev, env.dataset);

        let cap = match &env.coverage {
            None => {
                let mut rt = FiRuntime::new(None);
                dev.capture_launch(
                    &env.build.kernel,
                    &args,
                    &launch,
                    &mut rt,
                    &boundary_req,
                    &fence_req,
                )
            }
            Some(cov) => {
                let cb = ControlBlock::with_ranges(cov.ranges.clone())
                    .with_detector_vars(cov.det_vars.clone());
                let mut rt = FiFtRuntime::new(None, cb);
                let cap = dev.capture_launch(
                    &env.build.kernel,
                    &args,
                    &launch,
                    &mut rt,
                    &boundary_req,
                    &fence_req,
                );
                if rt.cb.sdc_flag
                    || !rt.cb.alarms.is_empty()
                    || !rt.cb.outliers.is_empty()
                    || rt.first_alarm_cycle.is_some()
                {
                    return Err(
                        "fault-free reference raises detector alarms (false positives); \
                         boundary control-block state would not be reproducible"
                            .into(),
                    );
                }
                cap
            }
        };
        if !cap.outcome.is_completed() {
            return Err(format!(
                "fault-free reference did not complete: {:?}",
                cap.outcome
            ));
        }
        let output = prog.read_output(&dev, &args);
        let reference_cycles = cap.outcome.stats().work_cycles;
        Ok(CheckpointStore {
            snapshots: cap.snapshots.into_iter().collect(),
            fences: cap.fences.into_iter().collect(),
            args,
            finals: ReferenceFinals {
                outcome: cap.outcome,
                output,
            },
            tpb,
            reference_cycles,
            injections: AtomicU64::new(0),
            spliced: AtomicU64::new(0),
            executed_cycles: AtomicU64::new(0),
        })
    }

    /// Number of captured block boundaries.
    pub(crate) fn boundaries(&self) -> u64 {
        self.snapshots.len() as u64
    }

    /// Whether the store holds a snapshot for `thread`'s block (it always
    /// does for in-grid planned faults; out-of-grid threads fall back to
    /// full execution).
    pub(crate) fn covers(&self, thread: u32) -> bool {
        self.snapshots.contains_key(&(thread / self.tpb))
    }

    /// Execute one injection from the shared checkpoint: restore the
    /// snapshot of `thread`'s block, run with `rt`, and splice the reference
    /// tail if the run reconverges at the fence. Panics (→ unit quarantine)
    /// only on a store/device mismatch, which would be an orchestrator bug.
    pub(crate) fn run_injection(
        &self,
        env: &CampaignEnv,
        prog: &dyn HostProgram,
        thread: u32,
        rt: &mut dyn HookRuntime,
        tele: &Telemetry,
    ) -> InjectionRun {
        let boundary = thread / self.tpb;
        let snap = self
            .snapshots
            .get(&boundary)
            .expect("covers() was checked before run_injection");
        let (fence, expected_fp) = match self.fences.get(&(boundary + 1)) {
            Some(fp) => (boundary + 1, *fp),
            None => (u32::MAX, 0),
        };

        let mut config = prog.device_config();
        if let Some(e) = env.engine {
            config.engine = e;
        }
        let mut dev = Device::new(config).with_telemetry(tele.clone());
        let launch = prog.launch().with_budget(env.budget);
        let run = dev
            .resume_spliced(
                &env.build.kernel,
                &self.args,
                &launch,
                rt,
                snap,
                fence,
                expected_fp,
            )
            .unwrap_or_else(|e| panic!("checkpoint restore failed: {e}"));
        self.injections.fetch_add(1, Ordering::Relaxed);
        match run {
            Spliced::Reconverged { executed_cycles } => {
                self.spliced.fetch_add(1, Ordering::Relaxed);
                self.executed_cycles
                    .fetch_add(executed_cycles, Ordering::Relaxed);
                env.add_sim_cycles(executed_cycles);
                InjectionRun {
                    outcome: self.finals.outcome.clone(),
                    output: Some(self.finals.output.clone()),
                }
            }
            Spliced::Ran(outcome) => {
                let executed = outcome
                    .stats()
                    .work_cycles
                    .saturating_sub(snap.prefix_cycles());
                self.executed_cycles.fetch_add(executed, Ordering::Relaxed);
                env.add_sim_cycles(executed);
                let output = outcome
                    .is_completed()
                    .then(|| prog.read_output(&dev, &self.args));
                InjectionRun { outcome, output }
            }
        }
    }
}

/// Outcome tally of one kernel section: the injections whose fault window
/// falls inside the section, composed from the per-injection records.
/// Composing these per-section maps recovers exactly the campaign totals —
/// every plan maps to at most one section — which is the compositionality
/// claim the differential suite checks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SectionOutcome {
    /// Section index, or `None` for plans whose fault window lies outside
    /// every section (defensive: the partitioner covers all statements, so
    /// this stays `None`-free in practice).
    pub section: Option<usize>,
    /// Section label (`straight@N` / `loopL@N`), empty for `None`.
    pub label: String,
    /// Outcome tally over the section's injections.
    pub counts: crate::stats::OutcomeCounts,
}

/// Checkpoint savings ledger of one orchestrated campaign, surfaced on
/// [`crate::orchestrator::ShardedCampaignResult`]. Struct-only, like the
/// phase profile: the byte-identity contract keeps it out of the summaries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointStats {
    /// Kernel sections the partitioner found.
    pub sections: u64,
    /// Distinct block boundaries snapshotted.
    pub boundaries: u64,
    /// Injections executed through the checkpoint store.
    pub injections: u64,
    /// Injections that reconverged at their fence and spliced the reference
    /// tail.
    pub spliced: u64,
    /// Work cycles of the one shared fault-free reference run.
    pub reference_cycles: u64,
    /// Work cycles actually simulated by the resumed injections.
    pub executed_cycles: u64,
}
