//! Fig. 15: how much a k-bit fault changes an FP value's magnitude,
//! depending on its original value range.
//!
//! The paper injects faults into 33 million randomly generated FP samples
//! and buckets the resulting *magnitude change factor* — the finding is
//! that more corrupted bits shift mass toward astronomically large changes
//! (> 10¹⁵×), which is why even widely widened value ranges (`alpha` up to
//! ~1000) lose almost no detection coverage (§IX.C).

use crate::mask::random_mask;
use rand::Rng;

/// The original-value magnitude ranges of Fig. 15's x-axis.
pub const ORIGIN_RANGES: [(f32, f32, &str); 5] = [
    (1e-38, 1e-15, "1E-38~1E-15"),
    (1e-15, 1e-3, "1E-15~1E-3"),
    (1e-3, 1e3, "1E-3~1E+3"),
    (1e3, 1e15, "1E+3~1E+15"),
    (1e15, 1e38, "1E+15~1E+45"),
];

/// The change-factor buckets of Fig. 15's legend, largest first.
pub const IMPACT_BUCKETS: [(f64, f64, &str); 9] = [
    (1e15, f64::INFINITY, ">1E+15"),
    (1e9, 1e15, "1E+9~1E+15"),
    (1e6, 1e9, "1E+6~1E+9"),
    (1e3, 1e6, "1E+3~1E+6"),
    (1e-3, 1e3, "1E-3~1E+3"),
    (1e-6, 1e-3, "1E-6~1E-3"),
    (1e-9, 1e-6, "1E-9~1E-6"),
    (1e-15, 1e-9, "1E-15~1E-9"),
    (0.0, 1e-15, "<1E-15"),
];

/// Distribution (per mille) over [`IMPACT_BUCKETS`] for one
/// (origin range, bit count) cell.
#[derive(Debug, Clone, PartialEq)]
pub struct ImpactRow {
    /// Origin-range label.
    pub origin: &'static str,
    /// Error-mask bit count.
    pub bits: u32,
    /// Share per bucket, same order as [`IMPACT_BUCKETS`], summing to ~1.
    pub shares: [f64; 9],
}

/// The magnitude-change factor of one corruption: `|new| / |old|` folded to
/// ≥ 1 (a value shrinking by 10⁶× is as large a change as one growing by
/// 10⁶×), with NaN/inf results counted as the largest bucket.
pub fn change_factor(old: f32, new: f32) -> f64 {
    if !new.is_finite() {
        return f64::INFINITY;
    }
    let old = old.abs() as f64;
    let new = new.abs() as f64;
    if old == 0.0 || new == 0.0 {
        return f64::INFINITY;
    }
    let r = new / old;
    if r >= 1.0 {
        r
    } else {
        1.0 / r
    }
}

/// Simulate one Fig. 15 cell with `samples` random values.
pub fn impact_cell(rng: &mut impl Rng, origin_idx: usize, bits: u32, samples: u64) -> ImpactRow {
    let (lo, hi, label) = ORIGIN_RANGES[origin_idx];
    let (llo, lhi) = (lo.ln(), hi.ln());
    let mut counts = [0u64; 9];
    for _ in 0..samples {
        // Log-uniform magnitude in the origin range, random sign.
        let mag = (rng.gen_range(llo..lhi)).exp();
        let v = if rng.gen_bool(0.5) { mag } else { -mag };
        let mask = random_mask(rng, bits);
        let corrupted = f32::from_bits(v.to_bits() ^ mask);
        let f = change_factor(v, corrupted);
        for (b, (blo, bhi, _)) in IMPACT_BUCKETS.iter().enumerate() {
            // Buckets are in factor space: the middle bucket 1E-3~1E+3 means
            // a change factor below 10^3.
            let in_bucket = if *bhi == f64::INFINITY {
                f >= *blo
            } else {
                f >= *blo && f < *bhi
            };
            if in_bucket {
                counts[b] += 1;
                break;
            }
        }
    }
    let mut shares = [0f64; 9];
    for (s, c) in shares.iter_mut().zip(counts) {
        *s = c as f64 / samples as f64;
    }
    ImpactRow {
        origin: label,
        bits,
        shares,
    }
}

/// Fig. 15's companion observation for integers ("the same characteristic
/// is observed in integer values"): the share of k-bit faults whose
/// absolute change exceeds `threshold`, over `samples` random `i32` values
/// drawn uniformly from `[-bound, bound]`.
pub fn integer_large_change_share(
    rng: &mut impl Rng,
    bits: u32,
    bound: i32,
    threshold: i64,
    samples: u64,
) -> f64 {
    let mut big = 0u64;
    for _ in 0..samples {
        let v = rng.gen_range(-bound..=bound);
        let corrupted = v ^ random_mask(rng, bits) as i32;
        if (corrupted as i64 - v as i64).abs() > threshold {
            big += 1;
        }
    }
    big as f64 / samples as f64
}

/// The full Fig. 15 table: every origin range × every bit count.
pub fn impact_table(seed: u64, bit_counts: &[u32], samples_per_cell: u64) -> Vec<ImpactRow> {
    use rand::SeedableRng;
    let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
    let mut rows = Vec::new();
    for oi in 0..ORIGIN_RANGES.len() {
        for &bits in bit_counts {
            rows.push(impact_cell(&mut rng, oi, bits, samples_per_cell));
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn change_factor_is_symmetric_and_handles_nonfinite() {
        assert_eq!(change_factor(1.0, 1e6), 1e6);
        assert_eq!(change_factor(1e6, 1.0), 1e6);
        assert_eq!(change_factor(1.0, f32::NAN), f64::INFINITY);
        assert_eq!(change_factor(0.0, 1.0), f64::INFINITY);
    }

    #[test]
    fn shares_sum_to_one() {
        let row = impact_cell(&mut rand::rngs::SmallRng::seed_from_u64(1), 2, 3, 5_000);
        let sum: f64 = row.shares.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn integer_changes_grow_with_bit_count_too() {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(9);
        let one = integer_large_change_share(&mut rng, 1, 10_000, 1 << 20, 20_000);
        let many = integer_large_change_share(&mut rng, 15, 10_000, 1 << 20, 20_000);
        assert!(many > one, "15-bit {many:.2} > 1-bit {one:.2}");
        // A single-bit fault exceeds 2^20 only when it hits bits 21..31:
        // about 11/32 of the positions.
        assert!((one - 11.0 / 32.0).abs() < 0.05, "{one:.3}");
    }

    #[test]
    fn more_bits_mean_larger_changes() {
        // The paper's observation: the >1E+15 share grows with bit count.
        let rows = impact_table(7, &[1, 15], 20_000);
        for oi in 0..ORIGIN_RANGES.len() {
            let one = &rows[oi * 2];
            let fifteen = &rows[oi * 2 + 1];
            assert!(
                fifteen.shares[0] > one.shares[0],
                "origin {}: 15-bit >1E15 share {} vs 1-bit {}",
                one.origin,
                fifteen.shares[0],
                one.shares[0]
            );
            // Single-bit faults leave much more mass in small changes.
            assert!(one.shares[4] > fifteen.shares[4]);
        }
    }
}
