//! Per-phase campaign profiling: where does a campaign's wall time go?
//!
//! The orchestrator times five disjoint phases — **plan** (build, golden
//! run, plan generation), **execute** (engine runs inside injections),
//! **journal** (checkpoint reads and writes), **classify** (outcome
//! classification inside injections), and **sample-decision** (adaptive
//! convergence checks and Wilson intervals) — and aggregates them into a
//! [`PhaseProfile`] carried on the campaign result, appended to the journal
//! as a trailing `"rec":"profile"` record, and printed by
//! `campaign --profile`.
//!
//! Plan, journal, and sample-decision are measured on the orchestrator
//! thread; execute and classify are accumulated per injection on rayon
//! workers through a shared [`PhaseAcc`]. With one worker thread the five
//! phases tile the run, so their sum tracks wall time closely; with N
//! workers, execute/classify sum *CPU* time across workers and may exceed
//! wall (that is the point — it shows the parallel speedup).
//!
//! The profile is observational timing, never input to results: it is
//! deliberately excluded from `summary_json`/`summarize`, whose bytes must
//! stay identical across interrupt/resume and shard merges.

use hauberk_telemetry::json::Json;
use hauberk_telemetry::report::Table;
use std::sync::atomic::{AtomicU64, Ordering};

/// Thread-safe accumulator for the phases timed inside per-injection
/// closures on rayon worker threads.
#[derive(Debug, Default)]
pub struct PhaseAcc {
    execute_ns: AtomicU64,
    classify_ns: AtomicU64,
}

impl PhaseAcc {
    /// Add engine-execution nanoseconds.
    pub fn add_execute(&self, ns: u64) {
        self.execute_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Add classification nanoseconds.
    pub fn add_classify(&self, ns: u64) {
        self.classify_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Accumulated engine-execution nanoseconds.
    pub fn execute_ns(&self) -> u64 {
        self.execute_ns.load(Ordering::Relaxed)
    }

    /// Accumulated classification nanoseconds.
    pub fn classify_ns(&self) -> u64 {
        self.classify_ns.load(Ordering::Relaxed)
    }
}

/// A work unit whose wall duration exceeded the robust outlier threshold.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Straggler {
    /// Work-unit id (`"FPU/floating-point#3"`).
    pub unit: String,
    /// The unit's wall duration.
    pub dur_ns: u64,
    /// The threshold it exceeded (median + k·MAD at flag time).
    pub threshold_ns: u64,
}

/// Robust outlier threshold over unit durations: median + 8·MAD (median
/// absolute deviation). When MAD is 0 — common when most units are
/// identical — half the median stands in as the spread, so a genuinely
/// uniform stratum still needs a 5× blow-up to flag. Returns `None` below 4
/// samples (no meaningful spread estimate).
pub fn straggler_threshold(durs_ns: &[u64]) -> Option<u64> {
    if durs_ns.len() < 4 {
        return None;
    }
    let mut sorted = durs_ns.to_vec();
    sorted.sort_unstable();
    let median = sorted[sorted.len() / 2];
    let mut dev: Vec<u64> = sorted.iter().map(|v| v.abs_diff(median)).collect();
    dev.sort_unstable();
    let mad = dev[dev.len() / 2];
    let spread = if mad == 0 { (median / 2).max(1) } else { mad };
    Some(median.saturating_add(8u64.saturating_mul(spread)))
}

/// Flag stragglers among `(unit key, wall ns)` pairs.
pub fn flag_stragglers(units: &[(String, u64)]) -> Vec<Straggler> {
    let durs: Vec<u64> = units.iter().map(|(_, d)| *d).collect();
    let Some(threshold) = straggler_threshold(&durs) else {
        return Vec::new();
    };
    units
        .iter()
        .filter(|(_, d)| *d > threshold)
        .map(|(k, d)| Straggler {
            unit: k.clone(),
            dur_ns: *d,
            threshold_ns: threshold,
        })
        .collect()
}

/// The per-phase wall-time profile of one orchestrated campaign run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PhaseProfile {
    /// Build + golden run + plan generation (orchestrator thread).
    pub plan_ns: u64,
    /// Engine execution inside injections (summed across workers).
    pub execute_ns: u64,
    /// Journal replay + checkpoint appends (orchestrator thread).
    pub journal_ns: u64,
    /// Outcome classification inside injections (summed across workers).
    pub classify_ns: u64,
    /// Adaptive convergence checks + Wilson intervals (orchestrator thread).
    pub sample_decision_ns: u64,
    /// Wall time of the whole orchestrated run.
    pub wall_ns: u64,
    /// Work units executed (excludes replayed units, which cost no time).
    pub units: u64,
    /// Worker threads the run was configured with.
    pub threads: u64,
    /// Units flagged by [`flag_stragglers`].
    pub stragglers: Vec<Straggler>,
}

impl PhaseProfile {
    /// The five phase totals in presentation order.
    pub fn phases(&self) -> [(&'static str, u64); 5] {
        [
            ("plan", self.plan_ns),
            ("execute", self.execute_ns),
            ("journal", self.journal_ns),
            ("classify", self.classify_ns),
            ("sample-decision", self.sample_decision_ns),
        ]
    }

    /// Sum of the five phase totals.
    pub fn phase_sum_ns(&self) -> u64 {
        self.phases().iter().map(|(_, ns)| ns).sum()
    }

    /// JSON form (also the journal `"rec":"profile"` payload).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("plan_ns", Json::uint(self.plan_ns)),
            ("execute_ns", Json::uint(self.execute_ns)),
            ("journal_ns", Json::uint(self.journal_ns)),
            ("classify_ns", Json::uint(self.classify_ns)),
            ("sample_decision_ns", Json::uint(self.sample_decision_ns)),
            ("wall_ns", Json::uint(self.wall_ns)),
            ("units", Json::uint(self.units)),
            ("threads", Json::uint(self.threads)),
            (
                "stragglers",
                Json::Arr(
                    self.stragglers
                        .iter()
                        .map(|s| {
                            Json::obj([
                                ("unit", Json::str(s.unit.clone())),
                                ("dur_ns", Json::uint(s.dur_ns)),
                                ("threshold_ns", Json::uint(s.threshold_ns)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Parse the JSON form back (journal replay).
    pub fn from_json(j: &Json) -> Option<PhaseProfile> {
        let u = |k: &str| j.get(k).and_then(Json::as_u64);
        Some(PhaseProfile {
            plan_ns: u("plan_ns")?,
            execute_ns: u("execute_ns")?,
            journal_ns: u("journal_ns")?,
            classify_ns: u("classify_ns")?,
            sample_decision_ns: u("sample_decision_ns")?,
            wall_ns: u("wall_ns")?,
            units: u("units")?,
            threads: u("threads").unwrap_or(0),
            stragglers: j
                .get("stragglers")
                .and_then(Json::as_arr)
                .map(|arr| {
                    arr.iter()
                        .filter_map(|s| {
                            Some(Straggler {
                                unit: s.get("unit")?.as_str()?.to_string(),
                                dur_ns: s.get("dur_ns")?.as_u64()?,
                                threshold_ns: s.get("threshold_ns")?.as_u64()?,
                            })
                        })
                        .collect()
                })
                .unwrap_or_default(),
        })
    }

    /// Phase table: one row per phase plus a wall-time row, with each
    /// phase's share of wall time.
    pub fn table(&self) -> Table {
        let mut t = Table::new("campaign profile", &["phase", "ms", "share"]);
        let ms = |ns: u64| format!("{:.2}", ns as f64 / 1e6);
        let share = |ns: u64| {
            if self.wall_ns == 0 {
                "-".to_string()
            } else {
                format!("{:.1}%", ns as f64 / self.wall_ns as f64 * 100.0)
            }
        };
        for (name, ns) in self.phases() {
            t.row(vec![name.to_string(), ms(ns), share(ns)]);
        }
        t.row(vec![
            "(phase sum)".into(),
            ms(self.phase_sum_ns()),
            share(self.phase_sum_ns()),
        ]);
        t.row(vec!["wall".into(), ms(self.wall_ns), "100.0%".into()]);
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acc_is_concurrent_safe_and_additive() {
        let acc = PhaseAcc::default();
        acc.add_execute(5);
        acc.add_execute(7);
        acc.add_classify(3);
        assert_eq!(acc.execute_ns(), 12);
        assert_eq!(acc.classify_ns(), 3);
    }

    #[test]
    fn straggler_threshold_needs_samples() {
        assert_eq!(straggler_threshold(&[]), None);
        assert_eq!(straggler_threshold(&[1, 2, 3]), None);
    }

    #[test]
    fn stragglers_flagged_by_median_mad() {
        // 9 well-behaved units around 100, one 10× outlier.
        let mut units: Vec<(String, u64)> =
            (0..9).map(|i| (format!("u{i}"), 95 + i as u64)).collect();
        units.push(("slow".into(), 1000));
        let flagged = flag_stragglers(&units);
        assert_eq!(flagged.len(), 1);
        assert_eq!(flagged[0].unit, "slow");
        assert!(flagged[0].threshold_ns < 1000);
    }

    #[test]
    fn uniform_durations_flag_nothing() {
        // MAD = 0; the median/2 fallback keeps identical units unflagged.
        let units: Vec<(String, u64)> = (0..8).map(|i| (format!("u{i}"), 100)).collect();
        assert!(flag_stragglers(&units).is_empty());
        // ... and a genuine 10× blow-up still flags.
        let mut with_outlier = units;
        with_outlier.push(("slow".into(), 1000));
        assert_eq!(flag_stragglers(&with_outlier).len(), 1);
    }

    #[test]
    fn profile_json_round_trips() {
        let p = PhaseProfile {
            plan_ns: 1,
            execute_ns: 2,
            journal_ns: 3,
            classify_ns: 4,
            sample_decision_ns: 5,
            wall_ns: 20,
            units: 6,
            threads: 2,
            stragglers: vec![Straggler {
                unit: "FPU/floating-point#3".into(),
                dur_ns: 9,
                threshold_ns: 7,
            }],
        };
        let j = hauberk_telemetry::json::parse(&p.to_json().to_string()).unwrap();
        assert_eq!(PhaseProfile::from_json(&j), Some(p.clone()));
        assert_eq!(p.phase_sum_ns(), 15);
        let table = p.table().to_text();
        assert!(table.contains("sample-decision"));
        assert!(table.contains("wall"));
    }
}
