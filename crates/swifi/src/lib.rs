#![warn(missing_docs)]

//! # hauberk-swifi — fault-injection campaigns and dependability statistics
//!
//! The evaluation engine of the reproduction (paper §VII–§IX): mutation-based
//! software-implemented fault injection over the simulated device, with
//!
//! * **error-mask generation** ([`mask`]) — random k-of-32-bit XOR masks
//!   (k ∈ {1, 3, 6, 10, 15} in the paper's multi-bit study);
//! * **campaign planning** ([`plan`]) — selection of 20–50 virtual variables
//!   per program, a set of masks per variable, and the (thread, occurrence)
//!   arming derived from the profiler build's execution counts; optional
//!   SM-scheduler faults against loop iterators/decisions;
//! * **parallel campaign execution** ([`campaign`]) — each experiment runs
//!   the program once on a fresh device with exactly one armed fault
//!   (Rayon-parallel across experiments, deterministic per experiment);
//! * **fault-free prefix checkpointing** ([`checkpoint`]) — one shared
//!   fault-free run captures device snapshots at every block boundary a
//!   planned fault targets; each injection restores the snapshot and
//!   executes only its own block (splicing the reference tail when it
//!   reconverges), producing byte-identical summaries for a small fraction
//!   of the simulated cycles;
//! * **sharded orchestration** ([`orchestrator`]) — campaigns decomposed
//!   into per-stratum work units with checkpoint journaling and resume
//!   ([`journal`]), Wilson-interval adaptive early stopping ([`sampler`]),
//!   retry/quarantine of panicking units, and round-robin multi-process
//!   sharding whose journals merge back into one;
//! * **closed-loop selective hardening** ([`mod@harden`]) — vulnerability-
//!   ranked detector placement: a baseline campaign's escapes are
//!   attributed to placeable detectors, ranked by Wilson-bounded SDC rate
//!   × exposure, fitted to an overhead budget as a serializable plan, and
//!   re-measured, producing the coverage-vs-overhead Pareto front;
//! * **outcome classification** ([`classify`]) — the paper's five-way
//!   taxonomy (§VIII): failure / masked / detected & masked / detected /
//!   undetected, driven by each program's output-correctness spec and a
//!   golden run;
//! * **statistics** ([`stats`]) — aggregation by data class (Fig. 1), by
//!   error-bit count (Fig. 14), coverage, and the multi-fault coverage
//!   formula;
//! * **FP value-impact simulation** ([`value_impact`]) — Fig. 15's
//!   magnitude-change distribution over random FP samples;
//! * **CPU-mode study** ([`cpu_study`]) — stack/data/code fault categories
//!   for the Fig. 1 CPU rows, including code faults as AST operator
//!   mutations;
//! * **reporting** ([`report`]) — per-experiment CSV records and summaries
//!   (the file-based analogue of the paper's GUI controller).

pub mod campaign;
pub mod checkpoint;
pub mod classify;
pub mod cpu_study;
pub mod harden;
pub mod journal;
pub mod mask;
pub mod orchestrator;
pub mod plan;
pub mod profile;
pub mod report;
pub mod sampler;
pub mod stats;
pub mod value_impact;

pub use campaign::{
    run_coverage_campaign, run_sensitivity_campaign, CampaignConfig, CampaignKind, CampaignResult,
};
pub use checkpoint::{CheckpointStats, SectionOutcome};
pub use classify::{FiOutcome, InjectionResult};
pub use harden::{
    evaluate_placement, harden, HardenConfig, HardenReport, ParetoPoint, RankedCandidate,
};
pub use journal::{merge_journals, read_journal, JournalMeta, QuarantineRecord, UnitRecord};
pub use orchestrator::{
    run_orchestrated_campaign, ChaosConfig, OrchestratorConfig, ShardedCampaignResult,
    StratumReport,
};
pub use sampler::AdaptiveConfig;
pub use stats::OutcomeCounts;
