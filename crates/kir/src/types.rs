//! The KIR scalar type system.
//!
//! Types are intentionally minimal: the Hauberk study classifies program state
//! into **pointer**, **integer**, and **floating-point** data (the paper's
//! Fig. 1 and Fig. 2), and the detectors only need 32-bit scalars. Pointers
//! are typed (element type + memory space) so that loads/stores can be
//! checked and so that the fault-classification knows a corrupted value was
//! an address.

use std::fmt;

/// A primitive (register-sized, 32-bit) scalar type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PrimTy {
    /// IEEE-754 single-precision floating point.
    F32,
    /// 32-bit signed integer.
    I32,
    /// 32-bit unsigned integer.
    U32,
    /// Boolean (stored as one 32-bit word on device).
    Bool,
}

impl PrimTy {
    /// Size of a value of this type in device memory, in bytes.
    pub const fn size_bytes(self) -> u32 {
        4
    }

    /// Whether the type is one of the integer types (`i32`/`u32`/`bool`).
    pub const fn is_integer(self) -> bool {
        matches!(self, PrimTy::I32 | PrimTy::U32 | PrimTy::Bool)
    }

    /// Whether the type is floating point.
    pub const fn is_float(self) -> bool {
        matches!(self, PrimTy::F32)
    }
}

impl fmt::Display for PrimTy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PrimTy::F32 => "f32",
            PrimTy::I32 => "i32",
            PrimTy::U32 => "u32",
            PrimTy::Bool => "bool",
        };
        f.write_str(s)
    }
}

/// Device memory space a pointer refers to.
///
/// The simulated device has a per-device **global** memory and a per-block
/// **shared** memory, mirroring the CUDA memory hierarchy relevant to the
/// paper's benchmarks (TPACF's shared-memory histogram is the reason
/// R-Scatter cannot be compiled for it, §IX.A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemSpace {
    /// Per-device global memory (visible to all blocks, survives the kernel).
    Global,
    /// Per-block shared memory (zeroed at block start).
    Shared,
}

impl fmt::Display for MemSpace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            MemSpace::Global => "global",
            MemSpace::Shared => "shared",
        })
    }
}

/// A full KIR type: either a primitive scalar or a typed pointer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Ty {
    /// Primitive scalar.
    Prim(PrimTy),
    /// Pointer to `elem` values living in `space`.
    Ptr {
        /// Memory space the pointer refers to.
        space: MemSpace,
        /// Element type pointed to.
        elem: PrimTy,
    },
}

impl Ty {
    /// Shorthand for `Ty::Prim(PrimTy::F32)`.
    pub const F32: Ty = Ty::Prim(PrimTy::F32);
    /// Shorthand for `Ty::Prim(PrimTy::I32)`.
    pub const I32: Ty = Ty::Prim(PrimTy::I32);
    /// Shorthand for `Ty::Prim(PrimTy::U32)`.
    pub const U32: Ty = Ty::Prim(PrimTy::U32);
    /// Shorthand for `Ty::Prim(PrimTy::Bool)`.
    pub const BOOL: Ty = Ty::Prim(PrimTy::Bool);

    /// A pointer to `elem` values in global memory.
    pub const fn global_ptr(elem: PrimTy) -> Ty {
        Ty::Ptr {
            space: MemSpace::Global,
            elem,
        }
    }

    /// A pointer to `elem` values in shared memory.
    pub const fn shared_ptr(elem: PrimTy) -> Ty {
        Ty::Ptr {
            space: MemSpace::Shared,
            elem,
        }
    }

    /// The paper's three-way data classification (pointer / integer / FP).
    pub const fn data_class(self) -> DataClass {
        match self {
            Ty::Prim(PrimTy::F32) => DataClass::Float,
            Ty::Prim(_) => DataClass::Integer,
            Ty::Ptr { .. } => DataClass::Pointer,
        }
    }

    /// The primitive type if this is a scalar.
    pub const fn as_prim(self) -> Option<PrimTy> {
        match self {
            Ty::Prim(p) => Some(p),
            Ty::Ptr { .. } => None,
        }
    }

    /// Whether this is a pointer type.
    pub const fn is_ptr(self) -> bool {
        matches!(self, Ty::Ptr { .. })
    }
}

impl fmt::Display for Ty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Ty::Prim(p) => write!(f, "{p}"),
            Ty::Ptr { space, elem } => write!(f, "*{space} {elem}"),
        }
    }
}

impl From<PrimTy> for Ty {
    fn from(p: PrimTy) -> Self {
        Ty::Prim(p)
    }
}

/// The paper's data-type taxonomy for fault-sensitivity characterization
/// (Fig. 1: pointer vs. integer vs. floating-point state).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DataClass {
    /// Pointer / address values.
    Pointer,
    /// Integer values (including booleans and loop iterators).
    Integer,
    /// Floating-point values.
    Float,
}

impl DataClass {
    /// All classes, in the paper's presentation order.
    pub const ALL: [DataClass; 3] = [DataClass::Pointer, DataClass::Integer, DataClass::Float];
}

impl fmt::Display for DataClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            DataClass::Pointer => "pointer",
            DataClass::Integer => "integer",
            DataClass::Float => "floating-point",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_class_of_types() {
        assert_eq!(Ty::F32.data_class(), DataClass::Float);
        assert_eq!(Ty::I32.data_class(), DataClass::Integer);
        assert_eq!(Ty::U32.data_class(), DataClass::Integer);
        assert_eq!(Ty::BOOL.data_class(), DataClass::Integer);
        assert_eq!(Ty::global_ptr(PrimTy::F32).data_class(), DataClass::Pointer);
    }

    #[test]
    fn display_round_trips_visually() {
        assert_eq!(Ty::F32.to_string(), "f32");
        assert_eq!(Ty::global_ptr(PrimTy::I32).to_string(), "*global i32");
        assert_eq!(Ty::shared_ptr(PrimTy::F32).to_string(), "*shared f32");
    }

    #[test]
    fn prim_predicates() {
        assert!(PrimTy::I32.is_integer());
        assert!(PrimTy::Bool.is_integer());
        assert!(PrimTy::F32.is_float());
        assert!(!PrimTy::F32.is_integer());
        assert_eq!(PrimTy::F32.size_bytes(), 4);
    }

    #[test]
    fn as_prim_and_is_ptr() {
        assert_eq!(Ty::F32.as_prim(), Some(PrimTy::F32));
        assert_eq!(Ty::global_ptr(PrimTy::F32).as_prim(), None);
        assert!(Ty::global_ptr(PrimTy::F32).is_ptr());
        assert!(!Ty::I32.is_ptr());
    }
}
