//! Pretty-printer emitting the mini-CUDA surface syntax.
//!
//! `parse_kernel(print_kernel(k)) == k` holds for every kernel, including
//! instrumented ones: hooks print as `@hook(site=..., ...)` statements and
//! the parser accepts them, so translator output is fully serializable. The
//! round-trip property is enforced by the proptest suites.

use crate::expr::{BinOp, Expr, UnOp};
use crate::kernel::KernelDef;
use crate::stmt::{Block, Hook, HookKind, Stmt};

/// Render a kernel as mini-CUDA source text.
pub fn print_kernel(k: &KernelDef) -> String {
    let mut p = Printer {
        k,
        out: String::new(),
        indent: 0,
        declared: vec![false; k.vars.len()],
    };
    for i in 0..k.n_params {
        p.declared[i] = true;
    }
    p.kernel();
    p.out
}

/// Render an expression using a kernel's variable names.
pub fn print_expr(k: &KernelDef, e: &Expr) -> String {
    let mut p = Printer {
        k,
        out: String::new(),
        indent: 0,
        declared: vec![true; k.vars.len()],
    };
    p.expr(e, 0, false);
    p.out
}

struct Printer<'a> {
    k: &'a KernelDef,
    out: String,
    indent: usize,
    declared: Vec<bool>,
}

/// Binding strength of each operator; higher binds tighter. Mirrors the
/// parser's precedence table.
fn prec(op: BinOp) -> u8 {
    match op {
        BinOp::LOr => 1,
        BinOp::LAnd => 2,
        BinOp::Or => 3,
        BinOp::Xor => 4,
        BinOp::And => 5,
        BinOp::Eq | BinOp::Ne => 6,
        BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => 7,
        BinOp::Shl | BinOp::Shr => 8,
        BinOp::Add | BinOp::Sub => 9,
        BinOp::Mul | BinOp::Div | BinOp::Rem => 10,
    }
}

const UNARY_PREC: u8 = 11;

impl Printer<'_> {
    fn kernel(&mut self) {
        self.out.push_str(&format!("kernel {}(", self.k.name));
        for (i, p) in self.k.params().enumerate() {
            if i > 0 {
                self.out.push_str(", ");
            }
            self.out.push_str(&format!("{}: {}", p.name, p.ty));
        }
        self.out.push(')');
        if self.k.shared_mem_bytes > 0 {
            self.out
                .push_str(&format!(" shared {}", self.k.shared_mem_bytes));
        }
        self.out.push_str(" {\n");
        self.indent = 1;
        self.block_body(&self.k.body.clone());
        self.out.push_str("}\n");
    }

    fn pad(&mut self) {
        for _ in 0..self.indent {
            self.out.push_str("    ");
        }
    }

    fn block_body(&mut self, b: &Block) {
        for s in &b.0 {
            self.stmt(s);
        }
    }

    fn open_block(&mut self, b: &Block) {
        self.out.push_str(" {\n");
        self.indent += 1;
        self.block_body(b);
        self.indent -= 1;
        self.pad();
        self.out.push('}');
    }

    fn var_name(&self, v: u32) -> &str {
        &self.k.vars[v as usize].name
    }

    fn stmt(&mut self, s: &Stmt) {
        self.pad();
        match s {
            Stmt::Assign { var, value } => {
                let first = !self.declared[*var as usize];
                if first {
                    self.declared[*var as usize] = true;
                    let d = &self.k.vars[*var as usize];
                    self.out.push_str(&format!("let {}: {} = ", d.name, d.ty));
                } else {
                    self.out.push_str(&format!("{} = ", self.var_name(*var)));
                }
                self.expr(value, 0, false);
                self.out.push_str(";\n");
            }
            Stmt::Store { ptr, index, value } => {
                self.out.push_str("store(");
                self.expr(ptr, 0, false);
                self.out.push_str(", ");
                self.expr(index, 0, false);
                self.out.push_str(", ");
                self.expr(value, 0, false);
                self.out.push_str(");\n");
            }
            Stmt::AtomicAdd { ptr, index, value } => {
                self.out.push_str("atomic_add(");
                self.expr(ptr, 0, false);
                self.out.push_str(", ");
                self.expr(index, 0, false);
                self.out.push_str(", ");
                self.expr(value, 0, false);
                self.out.push_str(");\n");
            }
            Stmt::If {
                cond,
                then_blk,
                else_blk,
            } => {
                self.out.push_str("if (");
                self.expr(cond, 0, false);
                self.out.push(')');
                self.open_block(then_blk);
                if !else_blk.is_empty() {
                    self.out.push_str(" else");
                    self.open_block(else_blk);
                }
                self.out.push('\n');
            }
            Stmt::For {
                var,
                init,
                cond,
                step,
                body,
                ..
            } => {
                // A `for` iterator may be first-assigned by the loop header.
                if !self.declared[*var as usize] {
                    self.declared[*var as usize] = true;
                }
                self.out
                    .push_str(&format!("for ({} = ", self.var_name(*var)));
                self.expr(init, 0, false);
                self.out.push_str("; ");
                self.expr(cond, 0, false);
                self.out.push_str(&format!("; {} = ", self.var_name(*var)));
                self.expr(step, 0, false);
                self.out.push(')');
                self.open_block(body);
                self.out.push('\n');
            }
            Stmt::While { cond, body, .. } => {
                self.out.push_str("while (");
                self.expr(cond, 0, false);
                self.out.push(')');
                self.open_block(body);
                self.out.push('\n');
            }
            Stmt::Break => self.out.push_str("break;\n"),
            Stmt::Continue => self.out.push_str("continue;\n"),
            Stmt::SyncThreads => self.out.push_str("sync();\n"),
            Stmt::Hook(h) => self.hook(h),
        }
    }

    fn hook(&mut self, h: &Hook) {
        self.out
            .push_str(&format!("@{}(site={}", h.kind.tag(), h.site));
        match &h.kind {
            HookKind::FiPoint { hw } => self.out.push_str(&format!(", hw={hw}")),
            HookKind::Profile { detector }
            | HookKind::CheckRange { detector }
            | HookKind::CheckEqual { detector } => {
                self.out.push_str(&format!(", det={detector}"));
            }
            _ => {}
        }
        for a in &h.args {
            self.out.push_str(", ");
            self.expr(a, 0, false);
        }
        if let Some(t) = h.target {
            self.out.push_str(&format!(", target={}", self.var_name(t)));
        }
        self.out.push_str(");\n");
    }

    fn expr(&mut self, e: &Expr, parent_prec: u8, is_right: bool) {
        match e {
            Expr::Lit(v) => self.out.push_str(&v.to_string()),
            Expr::Var(v) => self.out.push_str(&self.k.vars[*v as usize].name.clone()),
            Expr::Builtin(b) => self.out.push_str(&format!("{}()", b.spelling())),
            Expr::Un(op, inner) => {
                let (sym, needs_space) = match op {
                    UnOp::Neg => ("-", false),
                    UnOp::Not => ("!", false),
                    UnOp::BitNot => ("~", false),
                    UnOp::BitsOf => ("bits", false),
                };
                if *op == UnOp::BitsOf {
                    self.out.push_str("bits(");
                    self.expr(inner, 0, false);
                    self.out.push(')');
                } else {
                    let _ = needs_space;
                    self.out.push_str(sym);
                    // Parenthesize non-primary operands of prefix operators.
                    let primary = matches!(
                        **inner,
                        Expr::Lit(_)
                            | Expr::Var(_)
                            | Expr::Builtin(_)
                            | Expr::Call(..)
                            | Expr::Load { .. }
                            | Expr::Cast(..)
                    );
                    if primary {
                        self.expr(inner, UNARY_PREC, false);
                    } else {
                        self.out.push('(');
                        self.expr(inner, 0, false);
                        self.out.push(')');
                    }
                }
            }
            Expr::Bin(op, a, b) => {
                let p = prec(*op);
                let need = p < parent_prec || (p == parent_prec && is_right);
                if need {
                    self.out.push('(');
                }
                self.expr(a, p, false);
                self.out.push_str(&format!(" {} ", op.spelling()));
                self.expr(b, p + 1, true);
                if need {
                    self.out.push(')');
                }
            }
            Expr::Call(m, args) => {
                self.out.push_str(m.spelling());
                self.out.push('(');
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        self.out.push_str(", ");
                    }
                    self.expr(a, 0, false);
                }
                self.out.push(')');
            }
            Expr::Load { ptr, index } => {
                self.out.push_str("load(");
                self.expr(ptr, 0, false);
                self.out.push_str(", ");
                self.expr(index, 0, false);
                self.out.push(')');
            }
            Expr::Cast(ty, inner) => {
                self.out.push_str(&format!("cast<{ty}>("));
                self.expr(inner, 0, false);
                self.out.push(')');
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::KernelBuilder;
    use crate::types::{PrimTy, Ty};

    #[test]
    fn prints_readable_kernel() {
        let mut b = KernelBuilder::new("axpy");
        let y = b.param("y", Ty::global_ptr(PrimTy::F32));
        let a = b.param("a", Ty::F32);
        let i = b.local("i", Ty::I32);
        b.assign(i, b.global_thread_id_x());
        b.store(
            Expr::var(y),
            Expr::var(i),
            Expr::mul(Expr::var(a), Expr::load(Expr::var(y), Expr::var(i))),
        );
        let k = b.finish();
        let s = print_kernel(&k);
        assert!(s.contains("kernel axpy(y: *global f32, a: f32)"));
        assert!(s.contains("let i: i32 = block_idx_x() * block_dim_x() + thread_idx_x();"));
        assert!(s.contains("store(y, i, a * load(y, i));"));
    }

    #[test]
    fn precedence_parens_only_when_needed() {
        let mut b = KernelBuilder::new("t");
        let x = b.local("x", Ty::I32);
        // x = (1 + 2) * 3;
        b.assign(
            x,
            Expr::mul(Expr::add(Expr::i32(1), Expr::i32(2)), Expr::i32(3)),
        );
        // x = 1 - (2 - 3);
        b.assign(
            x,
            Expr::sub(Expr::i32(1), Expr::sub(Expr::i32(2), Expr::i32(3))),
        );
        let k = b.finish();
        let s = print_kernel(&k);
        assert!(s.contains("(1 + 2) * 3"));
        assert!(s.contains("1 - (2 - 3)"));
    }
}
