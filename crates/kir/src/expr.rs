//! KIR expressions.
//!
//! Expressions are pure (loads read memory but have no side effects), which
//! lets the Hauberk translator duplicate a definition's right-hand side
//! verbatim (§V.A step ii) and lets the dataflow analysis treat an
//! expression tree as a slice of the loop dataflow graph (Fig. 9).

use crate::types::{PrimTy, Ty};
use crate::value::Value;
use std::fmt;

/// Index of a variable in a kernel's variable table
/// (see [`crate::kernel::KernelDef::vars`]). Parameters come first.
pub type VarId = u32;

/// Thread/block geometry builtins (the CUDA `threadIdx`/`blockIdx`/... values).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BuiltinVar {
    /// `threadIdx.x`
    ThreadIdxX,
    /// `threadIdx.y`
    ThreadIdxY,
    /// `blockIdx.x`
    BlockIdxX,
    /// `blockIdx.y`
    BlockIdxY,
    /// `blockDim.x`
    BlockDimX,
    /// `blockDim.y`
    BlockDimY,
    /// `gridDim.x`
    GridDimX,
    /// `gridDim.y`
    GridDimY,
    /// Base pointer of this block's shared memory (`f32` elements; cast as
    /// needed). Models CUDA dynamic shared memory.
    SharedBaseF32,
    /// Base pointer of this block's shared memory viewed as `i32` elements.
    SharedBaseI32,
}

impl BuiltinVar {
    /// The static type the builtin evaluates to.
    pub fn ty(self) -> Ty {
        match self {
            BuiltinVar::SharedBaseF32 => Ty::shared_ptr(PrimTy::F32),
            BuiltinVar::SharedBaseI32 => Ty::shared_ptr(PrimTy::I32),
            _ => Ty::I32,
        }
    }

    /// The mini-CUDA surface-syntax spelling (a nullary call).
    pub fn spelling(self) -> &'static str {
        match self {
            BuiltinVar::ThreadIdxX => "thread_idx_x",
            BuiltinVar::ThreadIdxY => "thread_idx_y",
            BuiltinVar::BlockIdxX => "block_idx_x",
            BuiltinVar::BlockIdxY => "block_idx_y",
            BuiltinVar::BlockDimX => "block_dim_x",
            BuiltinVar::BlockDimY => "block_dim_y",
            BuiltinVar::GridDimX => "grid_dim_x",
            BuiltinVar::GridDimY => "grid_dim_y",
            BuiltinVar::SharedBaseF32 => "shared_f32",
            BuiltinVar::SharedBaseI32 => "shared_i32",
        }
    }

    /// All builtins (used by the parser's keyword table).
    pub const ALL: [BuiltinVar; 10] = [
        BuiltinVar::ThreadIdxX,
        BuiltinVar::ThreadIdxY,
        BuiltinVar::BlockIdxX,
        BuiltinVar::BlockIdxY,
        BuiltinVar::BlockDimX,
        BuiltinVar::BlockDimY,
        BuiltinVar::GridDimX,
        BuiltinVar::GridDimY,
        BuiltinVar::SharedBaseF32,
        BuiltinVar::SharedBaseI32,
    ];
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Logical not (bool).
    Not,
    /// Bitwise not (integers).
    BitNot,
    /// Reinterpret the operand's 32-bit pattern as `u32` (no conversion).
    ///
    /// This is the primitive the XOR-checksum detector uses to fold values
    /// of any type into the per-kernel checksum (§V.A: "If a variable size
    /// is not 4 bytes, it is aligned by four-bytes for XOR operations").
    BitsOf,
}

/// Binary operators. Semantics follow C/CUDA for the operand types involved;
/// see the simulator's evaluator for the exact rules (wrapping integer
/// arithmetic, IEEE-754 floats, pointer ± integer element arithmetic).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Addition (also pointer + integer, in elements).
    Add,
    /// Subtraction (also pointer - integer, in elements).
    Sub,
    /// Multiplication.
    Mul,
    /// Division. Integer division by zero yields 0 on the GPU (no trap,
    /// like CUDA); float division follows IEEE-754.
    Div,
    /// Remainder. Integer remainder by zero yields 0 on the GPU.
    Rem,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Shift left.
    Shl,
    /// Shift right (arithmetic for `i32`, logical for `u32`).
    Shr,
    /// Less than.
    Lt,
    /// Less or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater or equal.
    Ge,
    /// Equality (bitwise for floats).
    Eq,
    /// Inequality.
    Ne,
    /// Short-circuit logical and (both sides are evaluated on the lockstep
    /// SIMT machine, like predicated CUDA code).
    LAnd,
    /// Short-circuit logical or (see [`BinOp::LAnd`]).
    LOr,
}

impl BinOp {
    /// Whether this operator yields a boolean.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::Eq | BinOp::Ne
        )
    }

    /// Whether this operator is a logical connective.
    pub fn is_logical(self) -> bool {
        matches!(self, BinOp::LAnd | BinOp::LOr)
    }

    /// Surface-syntax spelling.
    pub fn spelling(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Rem => "%",
            BinOp::And => "&",
            BinOp::Or => "|",
            BinOp::Xor => "^",
            BinOp::Shl => "<<",
            BinOp::Shr => ">>",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::LAnd => "&&",
            BinOp::LOr => "||",
        }
    }
}

/// Math intrinsics (the CUDA special-function unit operations the paper's
/// kernels use: `sqrtf`, `rsqrtf`, `sinf`, `cosf`, ...).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MathFn {
    /// `sqrtf(x)`
    Sqrt,
    /// `rsqrtf(x)` = 1/sqrt(x)
    Rsqrt,
    /// `sinf(x)`
    Sin,
    /// `cosf(x)`
    Cos,
    /// `expf(x)`
    Exp,
    /// `logf(x)` (natural log)
    Log,
    /// `fabsf(x)` / `abs(x)`
    Abs,
    /// `floorf(x)`
    Floor,
    /// two-argument minimum
    Min,
    /// two-argument maximum
    Max,
}

impl MathFn {
    /// Number of arguments.
    pub fn arity(self) -> usize {
        match self {
            MathFn::Min | MathFn::Max => 2,
            _ => 1,
        }
    }

    /// Surface-syntax spelling.
    pub fn spelling(self) -> &'static str {
        match self {
            MathFn::Sqrt => "sqrt",
            MathFn::Rsqrt => "rsqrt",
            MathFn::Sin => "sin",
            MathFn::Cos => "cos",
            MathFn::Exp => "exp",
            MathFn::Log => "log",
            MathFn::Abs => "abs",
            MathFn::Floor => "floor",
            MathFn::Min => "min",
            MathFn::Max => "max",
        }
    }

    /// All math intrinsics (parser keyword table).
    pub const ALL: [MathFn; 10] = [
        MathFn::Sqrt,
        MathFn::Rsqrt,
        MathFn::Sin,
        MathFn::Cos,
        MathFn::Exp,
        MathFn::Log,
        MathFn::Abs,
        MathFn::Floor,
        MathFn::Min,
        MathFn::Max,
    ];
}

/// A KIR expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A literal value.
    Lit(Value),
    /// A variable read.
    Var(VarId),
    /// A thread-geometry builtin.
    Builtin(BuiltinVar),
    /// Unary operation.
    Un(UnOp, Box<Expr>),
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Math intrinsic call.
    Call(MathFn, Vec<Expr>),
    /// `load(ptr, index)` — read element `index` (in elements) from `ptr`.
    Load {
        /// Pointer expression (must have pointer type).
        ptr: Box<Expr>,
        /// Element index expression (integer).
        index: Box<Expr>,
    },
    /// Numeric conversion to `to` (C-style cast; not a bit reinterpretation —
    /// use [`UnOp::BitsOf`] for that).
    Cast(PrimTy, Box<Expr>),
}

// add/sub/mul/div are AST constructors taking operands by value, not
// arithmetic on Expr — the std::ops traits would be the wrong signature.
#[allow(clippy::should_implement_trait)]
impl Expr {
    /// Literal `f32`.
    pub fn f32(v: f32) -> Expr {
        Expr::Lit(Value::F32(v))
    }

    /// Literal `i32`.
    pub fn i32(v: i32) -> Expr {
        Expr::Lit(Value::I32(v))
    }

    /// Literal `u32`.
    pub fn u32(v: u32) -> Expr {
        Expr::Lit(Value::U32(v))
    }

    /// Variable read.
    pub fn var(v: VarId) -> Expr {
        Expr::Var(v)
    }

    /// Binary op helper.
    pub fn bin(op: BinOp, a: Expr, b: Expr) -> Expr {
        Expr::Bin(op, Box::new(a), Box::new(b))
    }

    /// `a + b`
    pub fn add(a: Expr, b: Expr) -> Expr {
        Expr::bin(BinOp::Add, a, b)
    }

    /// `a - b`
    pub fn sub(a: Expr, b: Expr) -> Expr {
        Expr::bin(BinOp::Sub, a, b)
    }

    /// `a * b`
    pub fn mul(a: Expr, b: Expr) -> Expr {
        Expr::bin(BinOp::Mul, a, b)
    }

    /// `a / b`
    pub fn div(a: Expr, b: Expr) -> Expr {
        Expr::bin(BinOp::Div, a, b)
    }

    /// `a < b`
    pub fn lt(a: Expr, b: Expr) -> Expr {
        Expr::bin(BinOp::Lt, a, b)
    }

    /// `load(ptr, index)`
    pub fn load(ptr: Expr, index: Expr) -> Expr {
        Expr::Load {
            ptr: Box::new(ptr),
            index: Box::new(index),
        }
    }

    /// Math call helper.
    pub fn call(f: MathFn, args: Vec<Expr>) -> Expr {
        Expr::Call(f, args)
    }

    /// Walk the expression tree, invoking `f` on every node (pre-order).
    pub fn walk<'a>(&'a self, f: &mut impl FnMut(&'a Expr)) {
        f(self);
        match self {
            Expr::Lit(_) | Expr::Var(_) | Expr::Builtin(_) => {}
            Expr::Un(_, e) | Expr::Cast(_, e) => e.walk(f),
            Expr::Bin(_, a, b) => {
                a.walk(f);
                b.walk(f);
            }
            Expr::Call(_, args) => {
                for a in args {
                    a.walk(f);
                }
            }
            Expr::Load { ptr, index } => {
                ptr.walk(f);
                index.walk(f);
            }
        }
    }

    /// All variables read anywhere in the expression (with multiplicity).
    pub fn vars_used(&self) -> Vec<VarId> {
        let mut out = Vec::new();
        self.walk(&mut |e| {
            if let Expr::Var(v) = e {
                out.push(*v);
            }
        });
        out
    }

    /// Whether the expression reads variable `v`.
    pub fn uses_var(&self, v: VarId) -> bool {
        let mut found = false;
        self.walk(&mut |e| {
            if matches!(e, Expr::Var(x) if *x == v) {
                found = true;
            }
        });
        found
    }

    /// Number of memory-load nodes in the expression.
    pub fn load_count(&self) -> usize {
        let mut n = 0;
        self.walk(&mut |e| {
            if matches!(e, Expr::Load { .. }) {
                n += 1;
            }
        });
        n
    }

    /// Replace every variable read according to `map` (identity where the
    /// map returns `None`). Used by redundant-computation transforms (the
    /// R-Scatter baseline duplicates whole dataflow chains by substituting
    /// duplicate variables into duplicated right-hand sides).
    #[must_use]
    pub fn substitute_vars(&self, map: &impl Fn(VarId) -> Option<VarId>) -> Expr {
        match self {
            Expr::Var(v) => Expr::Var(map(*v).unwrap_or(*v)),
            Expr::Lit(_) | Expr::Builtin(_) => self.clone(),
            Expr::Un(op, e) => Expr::Un(*op, Box::new(e.substitute_vars(map))),
            Expr::Bin(op, a, b) => Expr::Bin(
                *op,
                Box::new(a.substitute_vars(map)),
                Box::new(b.substitute_vars(map)),
            ),
            Expr::Call(m, args) => {
                Expr::Call(*m, args.iter().map(|a| a.substitute_vars(map)).collect())
            }
            Expr::Load { ptr, index } => Expr::Load {
                ptr: Box::new(ptr.substitute_vars(map)),
                index: Box::new(index.substitute_vars(map)),
            },
            Expr::Cast(ty, e) => Expr::Cast(*ty, Box::new(e.substitute_vars(map))),
        }
    }

    /// Number of operator nodes (unary + binary + calls + loads + casts):
    /// a proxy for the instruction count of the computation, used by the
    /// cost-model discussion and by tests.
    pub fn op_count(&self) -> usize {
        let mut n = 0;
        self.walk(&mut |e| {
            if !matches!(e, Expr::Lit(_) | Expr::Var(_) | Expr::Builtin(_)) {
                n += 1;
            }
        });
        n
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Fully parenthesized debug form; the pretty-printer in
        // `crate::printer` produces the canonical surface syntax.
        match self {
            Expr::Lit(v) => write!(f, "{v}"),
            Expr::Var(v) => write!(f, "v{v}"),
            Expr::Builtin(b) => write!(f, "{}()", b.spelling()),
            Expr::Un(op, e) => match op {
                UnOp::Neg => write!(f, "(-{e})"),
                UnOp::Not => write!(f, "(!{e})"),
                UnOp::BitNot => write!(f, "(~{e})"),
                UnOp::BitsOf => write!(f, "bits({e})"),
            },
            Expr::Bin(op, a, b) => write!(f, "({a} {} {b})", op.spelling()),
            Expr::Call(m, args) => {
                write!(f, "{}(", m.spelling())?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            Expr::Load { ptr, index } => write!(f, "load({ptr}, {index})"),
            Expr::Cast(ty, e) => write!(f, "cast<{ty}>({e})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Expr {
        // a*load(p, i) + b
        Expr::add(
            Expr::mul(Expr::var(0), Expr::load(Expr::var(1), Expr::var(2))),
            Expr::var(3),
        )
    }

    #[test]
    fn vars_used_collects_all() {
        let e = sample();
        let mut vs = e.vars_used();
        vs.sort_unstable();
        assert_eq!(vs, vec![0, 1, 2, 3]);
        assert!(e.uses_var(2));
        assert!(!e.uses_var(9));
    }

    #[test]
    fn counts() {
        let e = sample();
        assert_eq!(e.load_count(), 1);
        // mul + add + load
        assert_eq!(e.op_count(), 3);
    }

    #[test]
    fn builtin_types() {
        assert_eq!(BuiltinVar::ThreadIdxX.ty(), Ty::I32);
        assert!(BuiltinVar::SharedBaseF32.ty().is_ptr());
    }

    #[test]
    fn display_is_stable() {
        let e = sample();
        assert_eq!(e.to_string(), "((v0 * load(v1, v2)) + v3)");
    }

    #[test]
    fn math_arities() {
        assert_eq!(MathFn::Min.arity(), 2);
        assert_eq!(MathFn::Sqrt.arity(), 1);
    }
}
