//! Recursive-descent parser for the mini-CUDA surface syntax.
//!
//! The grammar (see the crate-level docs for an example):
//!
//! ```text
//! kernel   := "kernel" IDENT "(" params ")" ["shared" INT] block
//! params   := [param ("," param)*]
//! param    := IDENT ":" type
//! type     := "f32" | "i32" | "u32" | "bool" | "*" ("global"|"shared") prim
//! block    := "{" stmt* "}"
//! stmt     := "let" IDENT ":" type "=" expr ";"
//!           | IDENT "=" expr ";"
//!           | "store" "(" expr "," expr "," expr ")" ";"
//!           | "atomic_add" "(" expr "," expr "," expr ")" ";"
//!           | "if" "(" expr ")" block ["else" block]
//!           | "for" "(" IDENT "=" expr ";" expr ";" IDENT "=" expr ")" block
//!           | "while" "(" expr ")" block
//!           | "break" ";" | "continue" ";" | "sync" "(" ")" ";"
//!           | "@" HOOKTAG "(" "site" "=" INT hookfields ")" ";"   (emitted by
//!             the Hauberk translator; parsed so instrumented kernels
//!             round-trip through the printer)
//! expr     := C-style precedence over the operators in [`crate::expr::BinOp`]
//! primary  := literal | IDENT | builtin "()" | mathfn "(" args ")"
//!           | "load" "(" expr "," expr ")" | "bits" "(" expr ")"
//!           | "cast" "<" type ">" "(" expr ")" | "(" expr ")"
//! literal  := INT | INT "u" | FLOAT | "true" | "false"
//! ```

use crate::expr::{BinOp, BuiltinVar, Expr, MathFn, UnOp, VarId};
use crate::kernel::{KernelDef, VarDecl};
use crate::stmt::{Block, Stmt};
use crate::types::{MemSpace, PrimTy, Ty};
use crate::value::Value;
use std::fmt;

/// A parse error with 1-based line/column position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable message.
    pub msg: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at {}:{}: {}", self.line, self.col, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Parse one kernel definition from mini-CUDA source text.
pub fn parse_kernel(src: &str) -> Result<KernelDef, ParseError> {
    let tokens = lex(src)?;
    let mut p = Parser {
        toks: tokens,
        pos: 0,
        vars: Vec::new(),
        n_params: 0,
    };
    let k = p.kernel()?;
    p.expect_eof()?;
    Ok(k)
}

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Int(i64),
    UInt(u32),
    Float(f32),
    Punct(&'static str),
    Eof,
}

#[derive(Debug, Clone)]
struct Spanned {
    tok: Tok,
    line: u32,
    col: u32,
}

const PUNCTS: &[&str] = &[
    "<<", ">>", "<=", ">=", "==", "!=", "&&", "||", "(", ")", "{", "}", "<", ">", "+", "-", "*",
    "/", "%", "&", "|", "^", "~", "!", "=", ";", ",", ":", "@",
];

fn lex(src: &str) -> Result<Vec<Spanned>, ParseError> {
    let bytes = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut col = 1u32;
    let err = |msg: String, line: u32, col: u32| ParseError { msg, line, col };
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c == '\n' {
            line += 1;
            col = 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            col += 1;
            continue;
        }
        // Line comments.
        if c == '/' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
            continue;
        }
        let (tline, tcol) = (line, col);
        if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < bytes.len()
                && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
            {
                i += 1;
                col += 1;
            }
            toks.push(Spanned {
                tok: Tok::Ident(src[start..i].to_string()),
                line: tline,
                col: tcol,
            });
            continue;
        }
        if c.is_ascii_digit() {
            let start = i;
            let mut is_float = false;
            while i < bytes.len() {
                let d = bytes[i] as char;
                if d.is_ascii_digit() {
                    i += 1;
                    col += 1;
                } else if d == '.' && i + 1 < bytes.len() && (bytes[i + 1] as char).is_ascii_digit()
                {
                    is_float = true;
                    i += 1;
                    col += 1;
                } else if (d == 'e' || d == 'E')
                    && i + 1 < bytes.len()
                    && ((bytes[i + 1] as char).is_ascii_digit()
                        || ((bytes[i + 1] == b'+' || bytes[i + 1] == b'-')
                            && i + 2 < bytes.len()
                            && (bytes[i + 2] as char).is_ascii_digit()))
                {
                    is_float = true;
                    i += 1;
                    col += 1;
                    if bytes[i] == b'+' || bytes[i] == b'-' {
                        i += 1;
                        col += 1;
                    }
                } else {
                    break;
                }
            }
            let text = &src[start..i];
            if is_float {
                let v: f32 = text
                    .parse()
                    .map_err(|_| err(format!("bad float literal `{text}`"), tline, tcol))?;
                toks.push(Spanned {
                    tok: Tok::Float(v),
                    line: tline,
                    col: tcol,
                });
            } else if i < bytes.len() && bytes[i] == b'u' {
                i += 1;
                col += 1;
                let v: u32 = text
                    .parse()
                    .map_err(|_| err(format!("bad u32 literal `{text}`"), tline, tcol))?;
                toks.push(Spanned {
                    tok: Tok::UInt(v),
                    line: tline,
                    col: tcol,
                });
            } else {
                let v: i64 = text
                    .parse()
                    .map_err(|_| err(format!("bad int literal `{text}`"), tline, tcol))?;
                toks.push(Spanned {
                    tok: Tok::Int(v),
                    line: tline,
                    col: tcol,
                });
            }
            continue;
        }
        let rest = &src[i..];
        let mut matched = None;
        for p in PUNCTS {
            if rest.starts_with(p) {
                matched = Some(*p);
                break;
            }
        }
        match matched {
            Some(p) => {
                toks.push(Spanned {
                    tok: Tok::Punct(p),
                    line: tline,
                    col: tcol,
                });
                i += p.len();
                col += p.len() as u32;
            }
            None => return Err(err(format!("unexpected character `{c}`"), tline, tcol)),
        }
    }
    toks.push(Spanned {
        tok: Tok::Eof,
        line,
        col,
    });
    Ok(toks)
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser {
    toks: Vec<Spanned>,
    pos: usize,
    vars: Vec<VarDecl>,
    n_params: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].tok
    }

    fn here(&self) -> (u32, u32) {
        (self.toks[self.pos].line, self.toks[self.pos].col)
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T, ParseError> {
        let (line, col) = self.here();
        Err(ParseError {
            msg: msg.into(),
            line,
            col,
        })
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].tok.clone();
        if !matches!(t, Tok::Eof) {
            self.pos += 1;
        }
        t
    }

    fn eat_punct(&mut self, p: &str) -> bool {
        if matches!(self.peek(), Tok::Punct(q) if *q == p) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, p: &str) -> Result<(), ParseError> {
        if self.eat_punct(p) {
            Ok(())
        } else {
            self.err(format!("expected `{p}`, found {:?}", self.peek()))
        }
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Tok::Ident(s) if s == kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), ParseError> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            self.err(format!("expected `{kw}`, found {:?}", self.peek()))
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.peek().clone() {
            Tok::Ident(s) => {
                self.pos += 1;
                Ok(s)
            }
            t => self.err(format!("expected identifier, found {t:?}")),
        }
    }

    fn expect_eof(&mut self) -> Result<(), ParseError> {
        if matches!(self.peek(), Tok::Eof) {
            Ok(())
        } else {
            self.err(format!("trailing input: {:?}", self.peek()))
        }
    }

    fn lookup_var(&self, name: &str) -> Option<VarId> {
        self.vars
            .iter()
            .position(|v| v.name == name)
            .map(|i| i as VarId)
    }

    fn kernel(&mut self) -> Result<KernelDef, ParseError> {
        self.expect_kw("kernel")?;
        let name = self.ident()?;
        self.expect_punct("(")?;
        if !self.eat_punct(")") {
            loop {
                let pname = self.ident()?;
                self.expect_punct(":")?;
                let ty = self.ty()?;
                if self.lookup_var(&pname).is_some() {
                    return self.err(format!("duplicate parameter `{pname}`"));
                }
                self.vars.push(VarDecl {
                    name: pname,
                    ty,
                    is_param: true,
                });
                self.n_params += 1;
                if self.eat_punct(")") {
                    break;
                }
                self.expect_punct(",")?;
            }
        }
        let mut shared_mem_bytes = 0u32;
        if self.eat_kw("shared") {
            match self.bump() {
                Tok::Int(v) if v >= 0 => shared_mem_bytes = v as u32,
                t => return self.err(format!("expected shared-memory size, found {t:?}")),
            }
        }
        let body = self.block()?;
        let mut k = KernelDef {
            name,
            vars: std::mem::take(&mut self.vars),
            n_params: self.n_params,
            shared_mem_bytes,
            body,
        };
        k.renumber();
        Ok(k)
    }

    fn ty(&mut self) -> Result<Ty, ParseError> {
        if self.eat_punct("*") {
            let space = if self.eat_kw("global") {
                MemSpace::Global
            } else if self.eat_kw("shared") {
                MemSpace::Shared
            } else {
                return self.err("expected `global` or `shared` after `*`");
            };
            let elem = self.prim_ty()?;
            Ok(Ty::Ptr { space, elem })
        } else {
            Ok(Ty::Prim(self.prim_ty()?))
        }
    }

    fn prim_ty(&mut self) -> Result<PrimTy, ParseError> {
        for (kw, ty) in [
            ("f32", PrimTy::F32),
            ("i32", PrimTy::I32),
            ("u32", PrimTy::U32),
            ("bool", PrimTy::Bool),
        ] {
            if self.eat_kw(kw) {
                return Ok(ty);
            }
        }
        self.err(format!(
            "expected a primitive type, found {:?}",
            self.peek()
        ))
    }

    fn block(&mut self) -> Result<Block, ParseError> {
        self.expect_punct("{")?;
        let mut stmts = Vec::new();
        while !self.eat_punct("}") {
            if matches!(self.peek(), Tok::Eof) {
                return self.err("unterminated block");
            }
            stmts.push(self.stmt()?);
        }
        Ok(Block(stmts))
    }

    fn stmt(&mut self) -> Result<Stmt, ParseError> {
        if self.eat_kw("let") {
            let name = self.ident()?;
            self.expect_punct(":")?;
            let ty = self.ty()?;
            self.expect_punct("=")?;
            let value = self.expr()?;
            self.expect_punct(";")?;
            if self.lookup_var(&name).is_some() {
                return self.err(format!("variable `{name}` already declared"));
            }
            self.vars.push(VarDecl {
                name,
                ty,
                is_param: false,
            });
            let var = (self.vars.len() - 1) as VarId;
            return Ok(Stmt::Assign { var, value });
        }
        if self.eat_kw("store") {
            self.expect_punct("(")?;
            let ptr = self.expr()?;
            self.expect_punct(",")?;
            let index = self.expr()?;
            self.expect_punct(",")?;
            let value = self.expr()?;
            self.expect_punct(")")?;
            self.expect_punct(";")?;
            return Ok(Stmt::Store { ptr, index, value });
        }
        if self.eat_kw("atomic_add") {
            self.expect_punct("(")?;
            let ptr = self.expr()?;
            self.expect_punct(",")?;
            let index = self.expr()?;
            self.expect_punct(",")?;
            let value = self.expr()?;
            self.expect_punct(")")?;
            self.expect_punct(";")?;
            return Ok(Stmt::AtomicAdd { ptr, index, value });
        }
        if self.eat_kw("if") {
            self.expect_punct("(")?;
            let cond = self.expr()?;
            self.expect_punct(")")?;
            let then_blk = self.block()?;
            let else_blk = if self.eat_kw("else") {
                self.block()?
            } else {
                Block::new()
            };
            return Ok(Stmt::If {
                cond,
                then_blk,
                else_blk,
            });
        }
        if self.eat_kw("for") {
            self.expect_punct("(")?;
            let iname = self.ident()?;
            // The iterator must already be declared (via `let`) or is
            // implicitly declared as i32 here.
            let var = match self.lookup_var(&iname) {
                Some(v) => v,
                None => {
                    self.vars.push(VarDecl {
                        name: iname.clone(),
                        ty: Ty::I32,
                        is_param: false,
                    });
                    (self.vars.len() - 1) as VarId
                }
            };
            self.expect_punct("=")?;
            let init = self.expr()?;
            self.expect_punct(";")?;
            let cond = self.expr()?;
            self.expect_punct(";")?;
            let iname2 = self.ident()?;
            if iname2 != iname {
                return self.err(format!(
                    "for-step must assign the iterator `{iname}`, found `{iname2}`"
                ));
            }
            self.expect_punct("=")?;
            let step = self.expr()?;
            self.expect_punct(")")?;
            let body = self.block()?;
            return Ok(Stmt::For {
                id: 0,
                var,
                init,
                cond,
                step,
                body,
            });
        }
        if self.eat_kw("while") {
            self.expect_punct("(")?;
            let cond = self.expr()?;
            self.expect_punct(")")?;
            let body = self.block()?;
            return Ok(Stmt::While { id: 0, cond, body });
        }
        if self.eat_kw("break") {
            self.expect_punct(";")?;
            return Ok(Stmt::Break);
        }
        if self.eat_kw("continue") {
            self.expect_punct(";")?;
            return Ok(Stmt::Continue);
        }
        if self.eat_kw("sync") {
            self.expect_punct("(")?;
            self.expect_punct(")")?;
            self.expect_punct(";")?;
            return Ok(Stmt::SyncThreads);
        }
        if self.eat_punct("@") {
            return self.hook_stmt();
        }
        // Plain assignment to an existing variable.
        let name = self.ident()?;
        let var = match self.lookup_var(&name) {
            Some(v) => v,
            None => return self.err(format!("assignment to undeclared variable `{name}`")),
        };
        self.expect_punct("=")?;
        let value = self.expr()?;
        self.expect_punct(";")?;
        Ok(Stmt::Assign { var, value })
    }

    /// `@tag(site=N[, hw=HW][, det=D][, arg...][, target=VAR]);` — the
    /// printer's rendering of instrumentation hooks.
    fn hook_stmt(&mut self) -> Result<Stmt, ParseError> {
        use crate::stmt::{Hook, HookKind, HwComponent};
        let tag = self.ident()?;
        self.expect_punct("(")?;
        self.expect_kw("site")?;
        self.expect_punct("=")?;
        let site = match self.bump() {
            Tok::Int(v) if v >= 0 => v as u32,
            t => return self.err(format!("expected site id, found {t:?}")),
        };
        let mut hw: Option<HwComponent> = None;
        let mut detector: Option<u32> = None;
        let mut args: Vec<Expr> = Vec::new();
        let mut target: Option<VarId> = None;
        while self.eat_punct(",") {
            // Keyword fields look like IDENT '='; anything else is an arg.
            if matches!(self.peek(), Tok::Ident(k) if k == "hw")
                && matches!(&self.toks[self.pos + 1].tok, Tok::Punct("="))
            {
                self.pos += 2;
                let name = self.ident()?;
                hw = Some(match name.as_str() {
                    "ALU" => HwComponent::IAlu,
                    "FPU" => HwComponent::Fpu,
                    "SFU" => HwComponent::Sfu,
                    "MEM" => HwComponent::Mem,
                    "REG" => HwComponent::RegisterFile,
                    "SCHED" => HwComponent::Scheduler,
                    other => return self.err(format!("unknown hw component `{other}`")),
                });
            } else if matches!(self.peek(), Tok::Ident(k) if k == "det")
                && matches!(&self.toks[self.pos + 1].tok, Tok::Punct("="))
            {
                self.pos += 2;
                detector = Some(match self.bump() {
                    Tok::Int(v) if v >= 0 => v as u32,
                    t => return self.err(format!("expected detector id, found {t:?}")),
                });
            } else if matches!(self.peek(), Tok::Ident(k) if k == "target")
                && matches!(&self.toks[self.pos + 1].tok, Tok::Punct("="))
            {
                self.pos += 2;
                let name = self.ident()?;
                target = Some(match self.lookup_var(&name) {
                    Some(v) => v,
                    None => return self.err(format!("unknown hook target `{name}`")),
                });
            } else {
                args.push(self.expr()?);
            }
        }
        self.expect_punct(")")?;
        self.expect_punct(";")?;
        let kind = match tag.as_str() {
            "fi_point" => HookKind::FiPoint {
                hw: hw.ok_or_else(|| ParseError {
                    msg: "@fi_point requires hw=".into(),
                    line: 0,
                    col: 0,
                })?,
            },
            "profile" => HookKind::Profile {
                detector: detector.unwrap_or(0),
            },
            "count_exec" => HookKind::CountExec,
            "check_range" => HookKind::CheckRange {
                detector: detector.unwrap_or(0),
            },
            "check_equal" => HookKind::CheckEqual {
                detector: detector.unwrap_or(0),
            },
            "checksum_check" => HookKind::ChecksumCheck,
            "nl_mismatch" => HookKind::NlMismatch,
            other => return self.err(format!("unknown hook `@{other}`")),
        };
        Ok(Stmt::Hook(Hook {
            kind,
            site,
            args,
            target,
        }))
    }

    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.bin_expr(1)
    }

    fn bin_expr(&mut self, min_prec: u8) -> Result<Expr, ParseError> {
        let mut lhs = self.unary()?;
        loop {
            let (op, p) = match self.peek() {
                Tok::Punct("||") => (BinOp::LOr, 1),
                Tok::Punct("&&") => (BinOp::LAnd, 2),
                Tok::Punct("|") => (BinOp::Or, 3),
                Tok::Punct("^") => (BinOp::Xor, 4),
                Tok::Punct("&") => (BinOp::And, 5),
                Tok::Punct("==") => (BinOp::Eq, 6),
                Tok::Punct("!=") => (BinOp::Ne, 6),
                Tok::Punct("<") => (BinOp::Lt, 7),
                Tok::Punct("<=") => (BinOp::Le, 7),
                Tok::Punct(">") => (BinOp::Gt, 7),
                Tok::Punct(">=") => (BinOp::Ge, 7),
                Tok::Punct("<<") => (BinOp::Shl, 8),
                Tok::Punct(">>") => (BinOp::Shr, 8),
                Tok::Punct("+") => (BinOp::Add, 9),
                Tok::Punct("-") => (BinOp::Sub, 9),
                Tok::Punct("*") => (BinOp::Mul, 10),
                Tok::Punct("/") => (BinOp::Div, 10),
                Tok::Punct("%") => (BinOp::Rem, 10),
                _ => break,
            };
            if p < min_prec {
                break;
            }
            self.pos += 1;
            // Left-associative: parse the rhs at one level tighter.
            let rhs = self.bin_expr(p + 1)?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, ParseError> {
        if self.eat_punct("-") {
            let inner = self.unary()?;
            // Fold `-literal` into a negative literal so the printer/parser
            // round-trip is exact (the printer renders `Lit(-x)` as `-x`).
            return Ok(match inner {
                Expr::Lit(Value::F32(v)) => Expr::f32(-v),
                Expr::Lit(Value::I32(v)) => Expr::i32(v.wrapping_neg()),
                other => Expr::Un(UnOp::Neg, Box::new(other)),
            });
        }
        if self.eat_punct("!") {
            return Ok(Expr::Un(UnOp::Not, Box::new(self.unary()?)));
        }
        if self.eat_punct("~") {
            return Ok(Expr::Un(UnOp::BitNot, Box::new(self.unary()?)));
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        match self.peek().clone() {
            Tok::Int(v) => {
                self.pos += 1;
                if v < i32::MIN as i64 || v > i32::MAX as i64 {
                    return self.err(format!("integer literal {v} out of i32 range"));
                }
                Ok(Expr::i32(v as i32))
            }
            Tok::UInt(v) => {
                self.pos += 1;
                Ok(Expr::u32(v))
            }
            Tok::Float(v) => {
                self.pos += 1;
                Ok(Expr::f32(v))
            }
            Tok::Punct("(") => {
                self.pos += 1;
                let e = self.expr()?;
                self.expect_punct(")")?;
                Ok(e)
            }
            Tok::Ident(name) => {
                self.pos += 1;
                if name == "true" {
                    return Ok(Expr::Lit(Value::Bool(true)));
                }
                if name == "false" {
                    return Ok(Expr::Lit(Value::Bool(false)));
                }
                if name == "load" {
                    self.expect_punct("(")?;
                    let ptr = self.expr()?;
                    self.expect_punct(",")?;
                    let index = self.expr()?;
                    self.expect_punct(")")?;
                    return Ok(Expr::Load {
                        ptr: Box::new(ptr),
                        index: Box::new(index),
                    });
                }
                if name == "bits" {
                    self.expect_punct("(")?;
                    let e = self.expr()?;
                    self.expect_punct(")")?;
                    return Ok(Expr::Un(UnOp::BitsOf, Box::new(e)));
                }
                if name == "cast" {
                    self.expect_punct("<")?;
                    let ty = self.prim_ty()?;
                    self.expect_punct(">")?;
                    self.expect_punct("(")?;
                    let e = self.expr()?;
                    self.expect_punct(")")?;
                    return Ok(Expr::Cast(ty, Box::new(e)));
                }
                for b in BuiltinVar::ALL {
                    if name == b.spelling() {
                        self.expect_punct("(")?;
                        self.expect_punct(")")?;
                        return Ok(Expr::Builtin(b));
                    }
                }
                for m in MathFn::ALL {
                    if name == m.spelling() {
                        self.expect_punct("(")?;
                        let mut args = Vec::new();
                        if !self.eat_punct(")") {
                            loop {
                                args.push(self.expr()?);
                                if self.eat_punct(")") {
                                    break;
                                }
                                self.expect_punct(",")?;
                            }
                        }
                        if args.len() != m.arity() {
                            return self.err(format!(
                                "`{}` takes {} argument(s), got {}",
                                m.spelling(),
                                m.arity(),
                                args.len()
                            ));
                        }
                        return Ok(Expr::Call(m, args));
                    }
                }
                match self.lookup_var(&name) {
                    Some(v) => Ok(Expr::Var(v)),
                    None => self.err(format!("unknown variable `{name}`")),
                }
            }
            t => self.err(format!("unexpected token {t:?} in expression")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::printer::print_kernel;

    const SAXPY: &str = r#"
        kernel saxpy(y: *global f32, x: *global f32, a: f32, n: i32) {
            let i: i32 = block_idx_x() * block_dim_x() + thread_idx_x();
            if (i < n) {
                let v: f32 = a * load(x, i) + load(y, i);
                store(y, i, v);
            }
        }
    "#;

    #[test]
    fn parses_saxpy() {
        let k = parse_kernel(SAXPY).unwrap();
        assert_eq!(k.name, "saxpy");
        assert_eq!(k.n_params, 4);
        assert_eq!(k.vars.len(), 6);
        assert_eq!(k.loop_count(), 0);
    }

    #[test]
    fn parses_loops_and_round_trips() {
        let src = r#"
            kernel acc(out: *global f32, n: i32) shared 128 {
                let s: f32 = 0.0;
                for (i = 0; i < n; i = i + 1) {
                    s = s + cast<f32>(i) * 0.5;
                    if (s > 100.0) {
                        break;
                    }
                }
                while (s > 0.0) {
                    s = s - 1.0;
                }
                store(out, 0, s);
            }
        "#;
        let k = parse_kernel(src).unwrap();
        assert_eq!(k.loop_count(), 2);
        assert_eq!(k.shared_mem_bytes, 128);
        let printed = print_kernel(&k);
        let k2 = parse_kernel(&printed).unwrap();
        assert_eq!(k, k2, "printer output:\n{printed}");
    }

    #[test]
    fn precedence_is_c_like() {
        let src = "kernel t(x: i32) { let y: i32 = 1 + 2 * 3 < 4 & 5; }";
        let k = parse_kernel(src).unwrap();
        // ((1 + (2*3)) < 4) & 5
        match &k.body.0[0] {
            Stmt::Assign { value, .. } => {
                assert!(matches!(value, Expr::Bin(BinOp::And, _, _)));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn rejects_undeclared_variable() {
        let e = parse_kernel("kernel t() { x = 1; }").unwrap_err();
        assert!(e.msg.contains("undeclared"));
    }

    #[test]
    fn rejects_duplicate_let() {
        let e = parse_kernel("kernel t() { let x: i32 = 1; let x: i32 = 2; }").unwrap_err();
        assert!(e.msg.contains("already declared"));
    }

    #[test]
    fn rejects_mismatched_for_iterator() {
        let e =
            parse_kernel("kernel t(n: i32) { let j: i32 = 0; for (i = 0; i < n; j = j + 1) { } }")
                .unwrap_err();
        assert!(e.msg.contains("iterator"));
    }

    #[test]
    fn float_literal_forms() {
        for (text, expect) in [
            ("1.5", 1.5f32),
            ("2.0", 2.0),
            ("1e-5", 1e-5),
            ("1.5e3", 1.5e3),
            ("3e+2", 3e2),
        ] {
            let src = format!("kernel t() {{ let x: f32 = {text}; }}");
            let k = parse_kernel(&src).unwrap();
            match &k.body.0[0] {
                Stmt::Assign { value, .. } => assert_eq!(*value, Expr::f32(expect)),
                _ => panic!(),
            }
        }
    }

    #[test]
    fn unsigned_literal() {
        let k = parse_kernel("kernel t() { let x: u32 = 7u; }").unwrap();
        match &k.body.0[0] {
            Stmt::Assign { value, .. } => assert_eq!(*value, Expr::u32(7)),
            _ => panic!(),
        }
    }

    #[test]
    fn comments_are_skipped() {
        let k = parse_kernel("kernel t() { // nothing\n let x: i32 = 1; // end\n }").unwrap();
        assert_eq!(k.body.len(), 1);
    }

    #[test]
    fn error_carries_position() {
        let e = parse_kernel("kernel t() {\n  let x: i32 = $;\n}").unwrap_err();
        assert_eq!(e.line, 2);
    }
}

#[cfg(test)]
mod hook_tests {
    use super::*;
    use crate::printer::print_kernel;
    use crate::stmt::HwComponent;

    #[test]
    fn hooks_parse_and_round_trip() {
        let src = r#"
            kernel h(out: *global f32, n: i32) {
                let a: f32 = 2.0;
                @fi_point(site=0, hw=FPU, target=a);
                let cnt: i32 = 0;
                for (i = 0; i < n; i = i + 1) {
                    cnt = cnt + 1;
                    a = a + 1.0;
                    @count_exec(site=1, target=a);
                }
                @check_range(site=20000, det=0, a / cast<f32>(n));
                @check_equal(site=20001, det=0, cnt, n);
                @checksum_check(site=3, bits(a));
                if (a != 2.0) {
                    @nl_mismatch(site=4);
                }
                store(out, 0, a);
            }
        "#;
        let k = parse_kernel(src).unwrap();
        let mut hooks = 0;
        crate::visit::for_each_stmt(&k.body, &mut |s| {
            if let Stmt::Hook(h) = s {
                hooks += 1;
                match &h.kind {
                    crate::stmt::HookKind::FiPoint { hw } => {
                        assert_eq!(*hw, HwComponent::Fpu);
                        assert_eq!(h.target, k.var_by_name("a"));
                    }
                    crate::stmt::HookKind::CheckRange { detector } => {
                        assert_eq!(*detector, 0);
                        assert_eq!(h.args.len(), 1);
                    }
                    crate::stmt::HookKind::CheckEqual { .. } => {
                        assert_eq!(h.args.len(), 2);
                    }
                    _ => {}
                }
            }
        });
        assert_eq!(hooks, 6);
        // Full round-trip including hooks.
        let printed = print_kernel(&k);
        let back = parse_kernel(&printed).unwrap_or_else(|e| panic!("{e}\n{printed}"));
        assert_eq!(k, back);
    }

    #[test]
    fn instrumented_kernels_round_trip() {
        // End-to-end: the printer output of a translator-instrumented kernel
        // must re-parse to the identical AST (tested here with hand-written
        // hooks of every kind; the hauberk crate's tests cover the passes).
        let src = r#"kernel k(p: *global f32) {
            let x: f32 = load(p, 0);
            @fi_point(site=7, hw=MEM, target=x);
            store(p, 1, x);
        }"#;
        let k = parse_kernel(src).unwrap();
        assert_eq!(parse_kernel(&print_kernel(&k)).unwrap(), k);
    }

    #[test]
    fn unknown_hook_rejected() {
        let e = parse_kernel("kernel k() { @explode(site=1); }").unwrap_err();
        assert!(e.msg.contains("unknown hook"));
    }
}
