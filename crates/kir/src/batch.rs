//! Batch-form planning over lowered bytecode: the structural half of the
//! third execution tier.
//!
//! [`plan_batches`] scans a [`LoweredKernel`]'s instruction stream for
//! **regions** — maximal straight-line runs of value-producing ops (no
//! control flow, no memory traffic, no hooks) — and precomputes, per region,
//! everything about the producer-tag bookkeeping that is static:
//!
//! * which ops *charge* cycles (everything except `Lit`/`Copy`/`Bits`, which
//!   the engines treat as free register moves) and, for each charging op
//!   after the first, whether it statically depends on its predecessor
//!   (charging ops receive consecutive tags, so an intra-region dependence is
//!   a compile-time fact);
//! * for the **first** charging op, the set of entry registers whose
//!   producer tag must be compared against the pipeline state at runtime
//!   (the only dynamic input to the whole charge sequence);
//! * a **tag write-back program**: for every register the region writes, how
//!   to reconstruct its producer tag afterwards ([`TagSrc`]).
//!
//! A batch engine can then execute a full-mask region as one block: look up a
//! precomputed cycle total keyed on (first-op dependence × entry pipeline
//! state), run the data plane as lane-blocked micro-ops, and replay the tag
//! program — bit-identical to per-op execution, without per-op dispatch.
//!
//! Which ops are *batchable* is an engine property (it depends on which
//! micro-op loops the engine implements and which op/type combinations can
//! trap), so the pass takes a predicate instead of hard-coding the set. The
//! structure computed here is engine-agnostic: this module knows nothing
//! about cycle costs or op classes.
//!
//! Regions may start mid-run at any jump target (so a loop entered from the
//! back edge still lands on a region), and a control transfer *into* the
//! middle of a region is harmless: the per-op engine simply executes the
//! suffix instruction by instruction.

use crate::lower::{LoweredKernel, Op, Reg};
use std::collections::HashMap;

/// How a register's producer tag is reconstructed after a region executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TagSrc {
    /// Tag 0 (the register was last written by a `Lit`).
    Zero,
    /// The tag register `r` held at region entry (a `Copy`/`Bits` chain
    /// bottoms out at an unwritten register).
    Entry(Reg),
    /// The tag of the region's `i`-th charging op (entry `next_tag + i`).
    Charge(u32),
}

/// One batchable straight-line region of `[start, end)` ops.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchRegion {
    /// First op of the region.
    pub start: u32,
    /// One past the last op.
    pub end: u32,
    /// Number of charging ops (tags advance by exactly this much).
    pub n_charges: u32,
    /// Entry registers feeding the first charging op's operands; the op is
    /// *dependent* iff any of their entry producer tags equals the
    /// pipeline's `last_tag` (and `last_tag != 0`). Empty when every operand
    /// was defined by a `Lit` inside the region (never dependent).
    pub first_dep_entries: Vec<Reg>,
    /// `dep_static[c]` (for `c > 0`): whether charging op `c` consumes the
    /// value produced by charging op `c - 1`. Index 0 is always `false`
    /// (that op's dependence is the dynamic check above).
    pub dep_static: Vec<bool>,
    /// Producer-tag write-back program, ordered by register.
    pub writeback: Vec<(Reg, TagSrc)>,
}

/// The batch plan for one lowered kernel.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct BatchPlan {
    /// All planned regions.
    pub regions: Vec<BatchRegion>,
    /// `region_at[pc]` is the index into [`BatchPlan::regions`] of the region
    /// starting at `pc`, or [`NO_REGION`].
    pub region_at: Vec<u32>,
}

/// Sentinel for "no region starts here" in [`BatchPlan::region_at`].
pub const NO_REGION: u32 = u32::MAX;

/// Whether `op` is a value op that charges cycles (advances the tag counter).
/// `Lit`/`Copy`/`Bits` move data and forward tags for free; everything else
/// the planner accepts is a charging ALU op.
pub fn is_charging(op: &Op) -> bool {
    matches!(
        op,
        Op::Un { .. } | Op::Bin { .. } | Op::Call1 { .. } | Op::Call2 { .. } | Op::Cast { .. }
    )
}

/// Operand registers an op reads (value ops only).
fn operands(op: &Op) -> [Option<Reg>; 2] {
    match op {
        Op::Un { src, .. } | Op::Cast { src, .. } => [Some(*src), None],
        Op::Call1 { a, .. } => [Some(*a), None],
        Op::Bin { a, b, .. } | Op::Call2 { a, b, .. } => [Some(*a), Some(*b)],
        _ => [None, None],
    }
}

/// Destination register a batchable op writes.
fn dest(op: &Op) -> Reg {
    match op {
        Op::Lit { dst, .. }
        | Op::Copy { dst, .. }
        | Op::Bits { dst, .. }
        | Op::Un { dst, .. }
        | Op::Bin { dst, .. }
        | Op::Call1 { dst, .. }
        | Op::Call2 { dst, .. }
        | Op::Cast { dst, .. } => *dst,
        other => unreachable!("dest of non-value op {other:?}"),
    }
}

/// Collect every pc that some instruction can transfer control to.
fn jump_targets(code: &[Op]) -> Vec<u32> {
    let mut t = Vec::new();
    for op in code {
        match op {
            Op::IfSplit {
                else_pc, end_pc, ..
            } => {
                t.push(*else_pc);
                t.push(*end_pc);
            }
            Op::EndArm { join_pc } | Op::Break { join_pc } | Op::Continue { join_pc } => {
                t.push(*join_pc)
            }
            Op::LoopTest { exit_pc, .. } => t.push(*exit_pc),
            Op::LoopNext {
                head_pc, exit_pc, ..
            } => {
                t.push(*head_pc);
                t.push(*exit_pc);
            }
            Op::Jump { pc } => t.push(*pc),
            _ => {}
        }
    }
    t.sort_unstable();
    t.dedup();
    t
}

/// Analyze the region `[start, end)` (all ops batchable by construction).
fn analyze(code: &[Op], start: u32, end: u32) -> BatchRegion {
    // Producer source of registers written so far in the region.
    let mut cur: HashMap<Reg, TagSrc> = HashMap::new();
    let src_of = |cur: &HashMap<Reg, TagSrc>, r: Reg| *cur.get(&r).unwrap_or(&TagSrc::Entry(r));

    let mut n_charges: u32 = 0;
    let mut first_dep_entries: Vec<Reg> = Vec::new();
    let mut dep_static: Vec<bool> = Vec::new();
    for op in &code[start as usize..end as usize] {
        if is_charging(op) {
            let c = n_charges;
            let mut dep = false;
            for r in operands(op).into_iter().flatten() {
                match src_of(&cur, r) {
                    TagSrc::Entry(e) => {
                        if c == 0 && !first_dep_entries.contains(&e) {
                            first_dep_entries.push(e);
                        }
                    }
                    TagSrc::Charge(j) => {
                        // Entry tags are all smaller than any region tag, so
                        // only the immediately preceding charge can match the
                        // pipeline's last_tag.
                        if c > 0 && j == c - 1 {
                            dep = true;
                        }
                    }
                    TagSrc::Zero => {}
                }
            }
            dep_static.push(dep);
            cur.insert(dest(op), TagSrc::Charge(c));
            n_charges += 1;
        } else {
            match op {
                Op::Lit { dst, .. } => {
                    cur.insert(*dst, TagSrc::Zero);
                }
                Op::Copy { dst, src } | Op::Bits { dst, src } => {
                    let s = src_of(&cur, *src);
                    cur.insert(*dst, s);
                }
                other => unreachable!("non-batchable op {other:?} inside region"),
            }
        }
    }
    let mut writeback: Vec<(Reg, TagSrc)> = cur.into_iter().collect();
    writeback.sort_unstable_by_key(|(r, _)| *r);
    BatchRegion {
        start,
        end,
        n_charges,
        first_dep_entries,
        dep_static,
        writeback,
    }
}

/// Plan batch regions over `kernel`'s code. `batchable` decides which ops the
/// executing engine can run inside a region (it must accept only value ops —
/// `Lit`/`Copy`/`Bits`/`Un`/`Bin`/`Call1`/`Call2`/`Cast` — and should reject
/// any op/type combination whose lane loop can trap; the planner additionally
/// never batches memory, hook, sync, or control ops).
pub fn plan_batches(kernel: &LoweredKernel, batchable: &dyn Fn(&Op) -> bool) -> BatchPlan {
    let code = &kernel.code;
    let ok = |op: &Op| -> bool {
        matches!(
            op,
            Op::Lit { .. }
                | Op::Copy { .. }
                | Op::Bits { .. }
                | Op::Un { .. }
                | Op::Bin { .. }
                | Op::Call1 { .. }
                | Op::Call2 { .. }
                | Op::Cast { .. }
        ) && batchable(op)
    };
    let targets = jump_targets(code);
    let mut plan = BatchPlan {
        regions: Vec::new(),
        region_at: vec![NO_REGION; code.len()],
    };
    let emit = |plan: &mut BatchPlan, start: u32, end: u32| {
        let region = analyze(code, start, end);
        // Singleton free-op regions gain nothing over direct dispatch.
        if region.n_charges == 0 && end - start < 2 {
            return;
        }
        plan.region_at[start as usize] = plan.regions.len() as u32;
        plan.regions.push(region);
    };
    let mut i = 0usize;
    while i < code.len() {
        if !ok(&code[i]) {
            i += 1;
            continue;
        }
        let start = i as u32;
        while i < code.len() && ok(&code[i]) {
            i += 1;
        }
        let end = i as u32;
        emit(&mut plan, start, end);
        // A jump target inside the run gets its own suffix region, so control
        // transfers landing mid-run still hit a fast path.
        for &t in &targets {
            if t > start && t < end {
                emit(&mut plan, t, end);
            }
        }
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::KernelBuilder;
    use crate::lower::lower_kernel;
    use crate::{Expr, PrimTy, Ty};

    fn plan_all(k: &LoweredKernel) -> BatchPlan {
        plan_batches(k, &|_| true)
    }

    #[test]
    fn straight_line_alu_forms_one_region() {
        let mut b = KernelBuilder::new("alu");
        let out = b.param("out", Ty::global_ptr(PrimTy::F32));
        let v = b.let_(
            "v",
            Ty::F32,
            Expr::add(
                Expr::mul(Expr::f32(2.0), Expr::f32(3.0)),
                Expr::mul(Expr::f32(4.0), Expr::f32(5.0)),
            ),
        );
        b.store(Expr::var(out), Expr::i32(0), Expr::var(v));
        let k = b.finish();
        let l = lower_kernel(&k);
        let p = plan_all(&l);
        // One ALU region (the three bin ops) before the store.
        let big = p.regions.iter().find(|r| r.n_charges == 3);
        assert!(big.is_some(), "{p:?}");
        let r = big.unwrap();
        // mul, mul (independent), add (consumes the second mul).
        assert_eq!(r.dep_static, vec![false, false, true]);
        // The first mul reads two interned constants: const-pool registers
        // are never written, so they surface as entry registers (their
        // producer tag is 0 at runtime and the check is always false).
        assert_eq!(r.first_dep_entries.len(), 2);
        // v and the temporaries get Charge write-backs.
        assert!(r
            .writeback
            .iter()
            .any(|(_, s)| matches!(s, TagSrc::Charge(2))));
    }

    #[test]
    fn copies_forward_entry_tags() {
        let mut b = KernelBuilder::new("copy");
        let out = b.param("out", Ty::global_ptr(PrimTy::F32));
        let x = b.let_("x", Ty::F32, Expr::f32(1.0));
        let y = b.let_("y", Ty::F32, Expr::var(x));
        let z = b.let_("z", Ty::F32, Expr::add(Expr::var(y), Expr::f32(1.0)));
        b.store(Expr::var(out), Expr::i32(0), Expr::var(z));
        let k = b.finish();
        let l = lower_kernel(&k);
        let p = plan_all(&l);
        let r = p.regions.iter().find(|r| r.n_charges == 1).expect("region");
        // x := lit, y := copy x: the copy chain bottoms out at the in-region
        // Lit, so both registers write back tag Zero.
        assert!(
            r.writeback
                .iter()
                .filter(|(_, s)| matches!(s, TagSrc::Zero))
                .count()
                >= 2,
            "{r:?}"
        );
        // z gets the add's charge tag.
        assert!(r
            .writeback
            .iter()
            .any(|(_, s)| matches!(s, TagSrc::Charge(0))));
    }

    #[test]
    fn first_charge_reads_entry_registers() {
        let mut b = KernelBuilder::new("entry");
        let out = b.param("out", Ty::global_ptr(PrimTy::F32));
        let n = b.param("n", Ty::F32);
        // The add reads `n`, whose producer tag is a region input.
        let v = b.let_("v", Ty::F32, Expr::add(Expr::var(n), Expr::f32(1.0)));
        b.store(Expr::var(out), Expr::i32(0), Expr::var(v));
        let k = b.finish();
        let l = lower_kernel(&k);
        let p = plan_all(&l);
        let r = p.regions.iter().find(|r| r.n_charges >= 1).expect("region");
        assert!(r.first_dep_entries.contains(&n), "{r:?}");
    }

    #[test]
    fn predicate_splits_regions() {
        let mut b = KernelBuilder::new("split");
        let out = b.param("out", Ty::global_ptr(PrimTy::I32));
        let v = b.let_(
            "v",
            Ty::I32,
            Expr::add(
                Expr::div(Expr::i32(10), Expr::i32(2)),
                Expr::mul(Expr::i32(3), Expr::i32(4)),
            ),
        );
        b.store(Expr::var(out), Expr::i32(0), Expr::var(v));
        let k = b.finish();
        let l = lower_kernel(&k);
        // Reject integer division (a trap point for a strict-mode engine).
        let p = plan_batches(&l, &|op| {
            !matches!(
                op,
                Op::Bin {
                    op: crate::BinOp::Div,
                    ..
                }
            )
        });
        // The div op belongs to no region.
        for r in &p.regions {
            for op in &l.code[r.start as usize..r.end as usize] {
                assert!(
                    !matches!(
                        op,
                        Op::Bin {
                            op: crate::BinOp::Div,
                            ..
                        }
                    ),
                    "div batched"
                );
            }
        }
        // But other ALU work is still planned.
        assert!(p.regions.iter().any(|r| r.n_charges >= 1));
    }

    #[test]
    fn jump_targets_get_suffix_regions() {
        let mut b = KernelBuilder::new("loopy");
        let out = b.param("out", Ty::global_ptr(PrimTy::F32));
        let n = b.param("n", Ty::I32);
        let acc = b.let_("acc", Ty::F32, Expr::f32(0.0));
        let i = b.local("i", Ty::I32);
        b.for_range(i, Expr::var(n), |b| {
            b.assign(
                acc,
                Expr::add(Expr::var(acc), Expr::mul(Expr::f32(1.5), Expr::f32(0.5))),
            );
        });
        b.store(Expr::var(out), Expr::i32(0), Expr::var(acc));
        let k = b.finish();
        let l = lower_kernel(&k);
        let p = plan_all(&l);
        // Every region's span contains only value ops and region_at agrees.
        for (idx, r) in p.regions.iter().enumerate() {
            assert_eq!(p.region_at[r.start as usize], idx as u32);
            assert!(r.end > r.start);
        }
    }
}
