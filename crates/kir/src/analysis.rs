//! Static analyses backing the Hauberk detector-derivation algorithms.
//!
//! * [`DefUse`] — per-variable definition/use summary (which variables are
//!   defined inside loops, how often each is used), the information the
//!   non-loop detector and the fault-injection target selection need.
//! * [`LoopDataflow`] — the dataflow graph of a loop body (the paper's
//!   Fig. 9): which loop-defined variables feed which, how many memory loads
//!   participate, which variables are *self-accumulating*, and which are
//!   outputs.
//! * [`select_protection_targets`] — the paper's §V.B step (i): pick
//!   self-accumulators first, then repeatedly the variable with the largest
//!   **cumulative backward dataflow dependency**, removing each selection's
//!   backward slice from further consideration, up to `max_var` variables.
//! * [`derive_trip_count`] — §V.B step (iii)/(iv): derive a loop-invariant
//!   expression for the expected iteration count of a counting loop, checked
//!   at runtime with `HauberkCheckEqual`.

use crate::expr::{BinOp, Expr, VarId};
use crate::kernel::KernelDef;
use crate::stmt::{Block, LoopId, SiteId, Stmt};
use crate::visit::for_each_stmt;
use std::collections::{BTreeMap, BTreeSet};

// ---------------------------------------------------------------------------
// Def/use summary
// ---------------------------------------------------------------------------

/// Per-variable def/use summary for a kernel.
#[derive(Debug, Clone, Default)]
pub struct VarInfo {
    /// Number of assignments to the variable anywhere in the kernel
    /// (a `for` header counts as assigning its iterator).
    pub n_defs: usize,
    /// Number of textual uses (reads) of the variable.
    pub n_uses: usize,
    /// Whether any definition is inside a loop body or is a loop iterator.
    pub defined_in_loop: bool,
    /// Whether any use is inside a loop body (or a loop header).
    pub used_in_loop: bool,
}

/// Def/use summaries for every variable of a kernel.
#[derive(Debug, Clone)]
pub struct DefUse {
    /// Indexed by [`VarId`].
    pub vars: Vec<VarInfo>,
}

impl DefUse {
    /// Compute the summary for `kernel`.
    pub fn of(kernel: &KernelDef) -> DefUse {
        let mut vars = vec![VarInfo::default(); kernel.vars.len()];
        walk_defuse(&kernel.body, false, &mut vars);
        DefUse { vars }
    }

    /// Variables never defined inside loops (the non-loop detector's domain).
    pub fn non_loop_vars(&self) -> impl Iterator<Item = VarId> + '_ {
        self.vars
            .iter()
            .enumerate()
            .filter_map(|(i, v)| (!v.defined_in_loop && v.n_defs > 0).then_some(i as VarId))
    }
}

fn count_uses(e: &Expr, in_loop: bool, vars: &mut [VarInfo]) {
    e.walk(&mut |n| {
        if let Expr::Var(v) = n {
            vars[*v as usize].n_uses += 1;
            if in_loop {
                vars[*v as usize].used_in_loop = true;
            }
        }
    });
}

fn walk_defuse(block: &Block, in_loop: bool, vars: &mut [VarInfo]) {
    for s in &block.0 {
        match s {
            Stmt::Assign { var, value } => {
                vars[*var as usize].n_defs += 1;
                if in_loop {
                    vars[*var as usize].defined_in_loop = true;
                }
                count_uses(value, in_loop, vars);
            }
            Stmt::Store { ptr, index, value } | Stmt::AtomicAdd { ptr, index, value } => {
                count_uses(ptr, in_loop, vars);
                count_uses(index, in_loop, vars);
                count_uses(value, in_loop, vars);
            }
            Stmt::If {
                cond,
                then_blk,
                else_blk,
            } => {
                count_uses(cond, in_loop, vars);
                walk_defuse(then_blk, in_loop, vars);
                walk_defuse(else_blk, in_loop, vars);
            }
            Stmt::For {
                var,
                init,
                cond,
                step,
                body,
                ..
            } => {
                // The iterator is defined by the header and re-defined every
                // iteration: it belongs to the loop-protected domain.
                vars[*var as usize].n_defs += 2;
                vars[*var as usize].defined_in_loop = true;
                count_uses(init, in_loop, vars);
                count_uses(cond, true, vars);
                count_uses(step, true, vars);
                walk_defuse(body, true, vars);
            }
            Stmt::While { cond, body, .. } => {
                count_uses(cond, true, vars);
                walk_defuse(body, true, vars);
            }
            Stmt::Hook(h) => {
                for a in &h.args {
                    count_uses(a, in_loop, vars);
                }
            }
            Stmt::Break | Stmt::Continue | Stmt::SyncThreads => {}
        }
    }
}

// ---------------------------------------------------------------------------
// Loop dataflow (Fig. 9)
// ---------------------------------------------------------------------------

/// The dataflow graph of one loop body, over variables assigned in the loop.
///
/// External variables (defined outside the loop) are excluded from dependency
/// counts — they are "protected by non-loop error detectors" (the black
/// ellipses of Fig. 9). Memory loads are counted as inputs ("including the
/// memory load data but not the constant").
#[derive(Debug, Clone)]
pub struct LoopDataflow {
    /// Loop id this graph describes.
    pub loop_id: LoopId,
    /// Variables assigned anywhere in the loop (including nested loops and
    /// loop iterators), in first-assignment order.
    pub assigned: Vec<VarId>,
    /// For each assigned variable: the set of *loop-assigned* variables its
    /// defining expressions read (union over all of its defs in the loop).
    pub deps: BTreeMap<VarId, BTreeSet<VarId>>,
    /// For each assigned variable: number of memory-load nodes across its
    /// defining expressions.
    pub loads: BTreeMap<VarId, usize>,
    /// Variables whose *every* in-loop definition is accumulative
    /// (`v = v ± e` / `v = v * e`): their value carries across iterations,
    /// so they need no extra accumulator (§V.B step i: selected first).
    /// A variable that is also reset inside the loop is excluded.
    pub self_accumulating: BTreeSet<VarId>,
    /// Variables whose value leaves the loop: stored to memory inside the
    /// loop, or read after the loop body by any later statement.
    pub outputs: BTreeSet<VarId>,
}

impl LoopDataflow {
    /// Build the dataflow graph for the loop statement `loop_stmt`
    /// (`Stmt::For` or `Stmt::While`) of `kernel`.
    ///
    /// # Panics
    /// Panics if `loop_stmt` is not a loop.
    pub fn of(kernel: &KernelDef, loop_stmt: &Stmt) -> LoopDataflow {
        let (loop_id, body, header_assigns) = match loop_stmt {
            Stmt::For { id, var, body, .. } => (*id, body, vec![*var]),
            Stmt::While { id, body, .. } => (*id, body, vec![]),
            _ => panic!("LoopDataflow::of requires a loop statement"),
        };

        let mut assigned: Vec<VarId> = Vec::new();
        let push_assigned = |v: VarId, assigned: &mut Vec<VarId>| {
            if !assigned.contains(&v) {
                assigned.push(v);
            }
        };
        for v in &header_assigns {
            push_assigned(*v, &mut assigned);
        }
        for_each_stmt(body, &mut |s| match s {
            Stmt::Assign { var, .. } => push_assigned(*var, &mut assigned),
            Stmt::For { var, .. } => push_assigned(*var, &mut assigned),
            _ => {}
        });
        let in_loop: BTreeSet<VarId> = assigned.iter().copied().collect();

        let mut deps: BTreeMap<VarId, BTreeSet<VarId>> = BTreeMap::new();
        let mut loads: BTreeMap<VarId, usize> = BTreeMap::new();
        // Self-accumulation requires *every* in-loop definition to be
        // accumulative: a variable that is also reset (`s = 0;` at the top
        // of a nested iteration) does not carry its history across the loop
        // and needs an explicit accumulator like any other target.
        let mut acc_defs: BTreeMap<VarId, (usize, usize)> = BTreeMap::new(); // (acc, total)
        for v in &assigned {
            deps.entry(*v).or_default();
            loads.entry(*v).or_default();
        }

        // `for` iterators: the step expression defines the iterator.
        if let Stmt::For { var, step, .. } = loop_stmt {
            for u in step.vars_used() {
                if in_loop.contains(&u) && u != *var {
                    deps.get_mut(var).expect("inserted above").insert(u);
                }
            }
        }

        // Walk with a control-dependency context: a definition guarded by a
        // branch (or a nested-loop condition) also depends on the condition
        // variables — errors propagate through control decisions too.
        fn dep_walk(
            block: &Block,
            in_loop: &BTreeSet<VarId>,
            ctrl: &mut Vec<VarId>,
            deps: &mut BTreeMap<VarId, BTreeSet<VarId>>,
            loads: &mut BTreeMap<VarId, usize>,
            acc_defs: &mut BTreeMap<VarId, (usize, usize)>,
        ) {
            for s in &block.0 {
                match s {
                    Stmt::Assign { var, value } => {
                        let d = deps.get_mut(var).expect("all assigned vars inserted");
                        for u in value.vars_used() {
                            if in_loop.contains(&u) && u != *var {
                                d.insert(u);
                            }
                        }
                        for u in ctrl.iter() {
                            if *u != *var {
                                d.insert(*u);
                            }
                        }
                        *loads.get_mut(var).expect("inserted above") += value.load_count();
                        let entry = acc_defs.entry(*var).or_insert((0, 0));
                        entry.1 += 1;
                        if is_self_accumulating(*var, value) {
                            entry.0 += 1;
                        }
                    }
                    Stmt::If {
                        cond,
                        then_blk,
                        else_blk,
                    } => {
                        let pushed = push_ctrl(cond, in_loop, ctrl);
                        dep_walk(then_blk, in_loop, ctrl, deps, loads, acc_defs);
                        dep_walk(else_blk, in_loop, ctrl, deps, loads, acc_defs);
                        ctrl.truncate(ctrl.len() - pushed);
                    }
                    Stmt::For {
                        var,
                        step,
                        cond,
                        body,
                        ..
                    } => {
                        let d = deps.get_mut(var).expect("inserted above");
                        for u in step.vars_used() {
                            if in_loop.contains(&u) && u != *var {
                                d.insert(u);
                            }
                        }
                        let pushed = push_ctrl(cond, in_loop, ctrl);
                        dep_walk(body, in_loop, ctrl, deps, loads, acc_defs);
                        ctrl.truncate(ctrl.len() - pushed);
                    }
                    Stmt::While { cond, body, .. } => {
                        let pushed = push_ctrl(cond, in_loop, ctrl);
                        dep_walk(body, in_loop, ctrl, deps, loads, acc_defs);
                        ctrl.truncate(ctrl.len() - pushed);
                    }
                    _ => {}
                }
            }
        }
        fn push_ctrl(cond: &Expr, in_loop: &BTreeSet<VarId>, ctrl: &mut Vec<VarId>) -> usize {
            let mut n = 0;
            for u in cond.vars_used() {
                if in_loop.contains(&u) && !ctrl.contains(&u) {
                    ctrl.push(u);
                    n += 1;
                }
            }
            n
        }
        let mut ctrl: Vec<VarId> = Vec::new();
        dep_walk(
            body,
            &in_loop,
            &mut ctrl,
            &mut deps,
            &mut loads,
            &mut acc_defs,
        );

        // Outputs: stored to memory inside the loop, or used after the loop.
        let mut outputs: BTreeSet<VarId> = BTreeSet::new();
        for_each_stmt(body, &mut |s| {
            if let Stmt::Store { ptr, index, value } | Stmt::AtomicAdd { ptr, index, value } = s {
                for e in [ptr, index, value] {
                    for u in e.vars_used() {
                        if in_loop.contains(&u) {
                            outputs.insert(u);
                        }
                    }
                }
            }
        });
        // Uses after the loop, anywhere in the kernel body that follows it.
        let mut seen_loop = false;
        scan_after(&kernel.body, loop_stmt, &mut seen_loop, &mut |s| {
            for v in &in_loop {
                if s.uses_var_directly(*v) || s.uses_var_recursively(*v) {
                    outputs.insert(*v);
                }
            }
        });

        let self_acc: BTreeSet<VarId> = acc_defs
            .iter()
            .filter(|(_, (acc, total))| *acc > 0 && acc == total)
            .map(|(v, _)| *v)
            .collect();

        LoopDataflow {
            loop_id,
            assigned,
            deps,
            loads,
            self_accumulating: self_acc,
            outputs,
        }
    }

    /// The backward slice of `v`: all loop-assigned variables that directly
    /// or indirectly feed `v` (excluding `v` itself unless it is cyclic).
    pub fn backward_slice(&self, v: VarId) -> BTreeSet<VarId> {
        let mut out = BTreeSet::new();
        let mut work: Vec<VarId> = self
            .deps
            .get(&v)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default();
        while let Some(u) = work.pop() {
            if out.insert(u) {
                if let Some(ds) = self.deps.get(&u) {
                    work.extend(ds.iter().copied());
                }
            }
        }
        out
    }

    /// The paper's **cumulative backward dataflow dependency** of `v`: the
    /// number of loop-defined virtual variables that can flow into `v`, plus
    /// the memory-load inputs of those definitions (constants and variables
    /// protected by non-loop detectors excluded).
    pub fn cumulative_backward(&self, v: VarId) -> usize {
        let slice = self.backward_slice(v);
        let own_loads = self.loads.get(&v).copied().unwrap_or(0);
        let slice_loads: usize = slice
            .iter()
            .map(|u| self.loads.get(u).copied().unwrap_or(0))
            .sum();
        slice.len() + own_loads + slice_loads
    }
}

/// Whether the previous value of `var` sits at the head of an accumulation
/// chain: `v = v + a`, `v = a + v`, `v = v + a - b`, `v = v * a`, ... — the
/// paper's "self-accumulating" shape generalized to +/−/× spines.
fn is_self_accumulating(var: VarId, value: &Expr) -> bool {
    fn head_is_var(e: &Expr, var: VarId) -> bool {
        match e {
            Expr::Var(x) => *x == var,
            Expr::Bin(BinOp::Add, a, b) => head_is_var(a, var) || head_is_var(b, var),
            Expr::Bin(BinOp::Sub, a, _) => head_is_var(a, var),
            Expr::Bin(BinOp::Mul, a, b) => head_is_var(a, var) || head_is_var(b, var),
            _ => false,
        }
    }
    matches!(value, Expr::Bin(BinOp::Add | BinOp::Sub | BinOp::Mul, _, _))
        && head_is_var(value, var)
}

/// Invoke `f` on every statement that comes after `marker` in program order
/// (used to find loop outputs that are read later).
fn scan_after<'a>(block: &'a Block, marker: &Stmt, seen: &mut bool, f: &mut impl FnMut(&'a Stmt)) {
    for s in &block.0 {
        if *seen {
            f(s);
        }
        if std::ptr::eq(s, marker) || s == marker {
            *seen = true;
            continue;
        }
        match s {
            Stmt::If {
                then_blk, else_blk, ..
            } => {
                scan_after(then_blk, marker, seen, f);
                scan_after(else_blk, marker, seen, f);
            }
            Stmt::For { body, .. } | Stmt::While { body, .. } => {
                scan_after(body, marker, seen, f);
            }
            _ => {}
        }
    }
}

// ---------------------------------------------------------------------------
// Protection-target selection (§V.B step i)
// ---------------------------------------------------------------------------

/// Select the loop variables to protect, per the paper's algorithm:
///
/// 1. All self-accumulating variables are selected first (they need no extra
///    accumulator code inside the loop).
/// 2. Variables with forward dataflow dependency *to* a selected variable
///    (i.e. members of its backward slice) are excluded.
/// 3. Repeatedly select the remaining variable with the largest cumulative
///    backward dataflow dependency, excluding its backward slice, until
///    `max_var` variables are selected (self-accumulators count toward
///    `max_var`) or no candidates remain.
///
/// Loop iterators are never selected (they are covered by the iteration-count
/// invariant instead), and neither are boolean flags.
pub fn select_protection_targets(
    kernel: &KernelDef,
    df: &LoopDataflow,
    iterator: Option<VarId>,
    max_var: usize,
) -> Vec<VarId> {
    let mut selected: Vec<VarId> = Vec::new();
    let mut excluded: BTreeSet<VarId> = BTreeSet::new();
    if let Some(it) = iterator {
        excluded.insert(it);
    }
    let numeric = |v: VarId| {
        let ty = kernel.var_ty(v);
        !ty.is_ptr() && ty != crate::types::Ty::BOOL
    };

    // Self-accumulators first (they need no in-loop code), largest
    // cumulative backward dependency first so one free detector covers the
    // widest slice of the loop's state.
    let mut self_accs: Vec<VarId> = df
        .assigned
        .iter()
        .copied()
        .filter(|v| df.self_accumulating.contains(v) && numeric(*v))
        .collect();
    self_accs.sort_by_key(|v| std::cmp::Reverse(df.cumulative_backward(*v)));
    for v in self_accs {
        if selected.len() >= max_var {
            break;
        }
        if !excluded.contains(&v) {
            selected.push(v);
            excluded.insert(v);
            for u in df.backward_slice(v) {
                excluded.insert(u);
            }
        }
    }

    while selected.len() < max_var {
        let best = df
            .assigned
            .iter()
            .filter(|v| !excluded.contains(v) && numeric(**v))
            .max_by_key(|v| (df.cumulative_backward(**v), df.outputs.contains(v)));
        match best {
            Some(&v) if df.cumulative_backward(v) > 0 || df.outputs.contains(&v) => {
                selected.push(v);
                excluded.insert(v);
                for u in df.backward_slice(v) {
                    excluded.insert(u);
                }
            }
            _ => break,
        }
    }
    selected
}

// ---------------------------------------------------------------------------
// Trip-count derivation (§V.B steps iii–iv)
// ---------------------------------------------------------------------------

/// Derive a loop-invariant expression for the expected iteration count of a
/// counting `for` loop: `for (i = init; i < bound; i = i + 1)` yields
/// `max(bound - init, 0)`, and `<=` yields `max(bound - init + 1, 0)`.
///
/// Returns `None` when the loop shape is not a recognizable counting loop or
/// the bound/init are not loop-invariant (in which case the translator simply
/// omits the `HauberkCheckEqual` invariant, as the paper allows).
pub fn derive_trip_count(loop_stmt: &Stmt) -> Option<Expr> {
    let Stmt::For {
        var,
        init,
        cond,
        step,
        body,
        ..
    } = loop_stmt
    else {
        return None;
    };
    // Step must be `var + 1`.
    let is_incr = matches!(
        step,
        Expr::Bin(BinOp::Add, a, b)
            if matches!(**a, Expr::Var(x) if x == *var)
                && matches!(**b, Expr::Lit(crate::value::Value::I32(1)))
    );
    if !is_incr {
        return None;
    }
    let (op, bound) = match cond {
        Expr::Bin(op @ (BinOp::Lt | BinOp::Le), a, b) if matches!(**a, Expr::Var(x) if x == *var) => {
            (*op, (**b).clone())
        }
        _ => return None,
    };
    // The bound, the init, and the iterator must not be written in the body
    // (the iterator is only advanced by the header step).
    let mut invariant_vars: Vec<VarId> = bound.vars_used();
    invariant_vars.extend(init.vars_used());
    invariant_vars.push(*var);
    for s in &body.0 {
        for v in &invariant_vars {
            if s.assigns_var_recursively(*v) {
                return None;
            }
        }
        // `break` makes the static count an over-approximation; give up.
        if stmt_contains_break(s) {
            return None;
        }
    }
    let diff = Expr::sub(bound, init.clone());
    let count = if op == BinOp::Le {
        Expr::add(diff, Expr::i32(1))
    } else {
        diff
    };
    Some(Expr::call(
        crate::expr::MathFn::Max,
        vec![count, Expr::i32(0)],
    ))
}

fn stmt_contains_break(s: &Stmt) -> bool {
    match s {
        Stmt::Break => true,
        Stmt::If {
            then_blk, else_blk, ..
        } => {
            then_blk.0.iter().any(stmt_contains_break) || else_blk.0.iter().any(stmt_contains_break)
        }
        // A break inside a *nested* loop exits that loop, not this one.
        Stmt::For { .. } | Stmt::While { .. } => false,
        _ => false,
    }
}

/// Render a loop dataflow graph in a compact text form (used to reproduce
/// the paper's Fig. 9).
pub fn render_dataflow(kernel: &KernelDef, df: &LoopDataflow) -> String {
    let name = |v: VarId| kernel.vars[v as usize].name.clone();
    let mut out = String::new();
    out.push_str(&format!("loop #{} dataflow graph:\n", df.loop_id));
    for v in &df.assigned {
        let deps: Vec<String> = df.deps[v].iter().map(|u| name(*u)).collect();
        let mut tags = Vec::new();
        if df.self_accumulating.contains(v) {
            tags.push("self-accumulating");
        }
        if df.outputs.contains(v) {
            tags.push("output");
        }
        out.push_str(&format!(
            "  {:<12} <- [{}] loads={} cumulative_backward={}{}\n",
            name(*v),
            deps.join(", "),
            df.loads[v],
            df.cumulative_backward(*v),
            if tags.is_empty() {
                String::new()
            } else {
                format!("  ({})", tags.join(", "))
            }
        ));
    }
    out
}

/// Render a loop dataflow graph as Graphviz DOT (Fig. 9 as an image:
/// `dot -Tpng`). Self-accumulating variables are double circles, outputs
/// are filled.
pub fn dataflow_to_dot(kernel: &KernelDef, df: &LoopDataflow) -> String {
    let name = |v: VarId| kernel.vars[v as usize].name.clone();
    let mut out = String::from("digraph loop_dataflow {\n  rankdir=BT;\n");
    for v in &df.assigned {
        let mut attrs = vec![format!(
            "label=\"{}\\ncbd={}\"",
            name(*v),
            df.cumulative_backward(*v)
        )];
        if df.self_accumulating.contains(v) {
            attrs.push("shape=doublecircle".to_string());
        }
        if df.outputs.contains(v) {
            attrs.push("style=filled".to_string());
            attrs.push("fillcolor=gray85".to_string());
        }
        out.push_str(&format!("  \"{}\" [{}];\n", name(*v), attrs.join(", ")));
        if df.loads[v] > 0 {
            out.push_str(&format!(
                "  \"{}_loads\" [label=\"{} load(s)\", shape=box];\n  \"{}_loads\" -> \"{}\";\n",
                name(*v),
                df.loads[v],
                name(*v),
                name(*v)
            ));
        }
    }
    for (v, deps) in &df.deps {
        for u in deps {
            out.push_str(&format!("  \"{}\" -> \"{}\";\n", name(*u), name(*v)));
        }
    }
    out.push_str("}\n");
    out
}

// ---------------------------------------------------------------------------
// Slot allocation (backing the bytecode lowering in [`crate::lower`])
// ---------------------------------------------------------------------------

/// Stack-disciplined allocator for temporary registers.
///
/// The bytecode lowering evaluates expression operands into scratch slots; a
/// slot is released as soon as the instruction consuming it has been emitted,
/// so sibling subtrees reuse the same registers and the high-water mark stays
/// proportional to expression depth, not size. `mark`/`release` give the
/// caller a cheap way to free everything allocated since a checkpoint.
#[derive(Debug, Clone, Default)]
pub struct SlotAllocator {
    /// First slot index this allocator hands out (slots below are reserved
    /// for variables, constants, builtins, ...).
    base: u32,
    /// Number of currently live temporaries.
    in_use: u32,
    /// Maximum of `in_use` ever observed.
    high_water: u32,
}

impl SlotAllocator {
    /// Allocator whose first slot is `base`.
    pub fn new(base: u32) -> SlotAllocator {
        SlotAllocator {
            base,
            in_use: 0,
            high_water: 0,
        }
    }

    /// Allocate one temporary slot.
    pub fn alloc(&mut self) -> u32 {
        self.alloc_n(1)
    }

    /// Allocate `n` contiguous slots, returning the first.
    pub fn alloc_n(&mut self, n: u32) -> u32 {
        let first = self.base + self.in_use;
        self.in_use += n;
        self.high_water = self.high_water.max(self.in_use);
        first
    }

    /// Checkpoint the current allocation depth for a later [`release`].
    ///
    /// [`release`]: SlotAllocator::release
    pub fn mark(&self) -> u32 {
        self.in_use
    }

    /// Free every slot allocated since `mark` was taken.
    pub fn release(&mut self, mark: u32) {
        debug_assert!(mark <= self.in_use, "slot release past current depth");
        self.in_use = mark;
    }

    /// Largest number of simultaneously-live temporaries observed.
    pub fn high_water(&self) -> u32 {
        self.high_water
    }
}

// ---------------------------------------------------------------------------
// Section partitioning (compositional injection analysis)
// ---------------------------------------------------------------------------

/// One kernel *section*: a maximal top-level span whose interior contains no
/// top-level loop or barrier boundary. Fault-injection sites inside a
/// section share their dynamic window — a fault armed in the section cannot
/// fire before the section's first statement executes — so campaigns that
/// checkpoint at section-aligned boundaries can restore a shared fault-free
/// prefix for every injection the section holds (FastFlip's per-section
/// composition, applied to the orchestrator's strata).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Section {
    /// Section ordinal, in program order.
    pub index: usize,
    /// Stable human-readable label (`"straight@0"`, `"loop2@4"`, ...).
    pub label: String,
    /// Top-level statement span `[start, end)` in `kernel.body.0`.
    pub stmts: (usize, usize),
    /// Hook site ids anywhere inside the span (including nested blocks).
    pub sites: Vec<SiteId>,
    /// Loop ids anywhere inside the span (including nested loops).
    pub loops: Vec<LoopId>,
}

/// The section decomposition of a kernel body, with site/loop → section
/// lookup — how the SWIFI planner maps each injection's fault window to the
/// section containing it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SectionMap {
    /// Sections in program order.
    pub sections: Vec<Section>,
}

/// Partition `kernel`'s top-level statement list into [`Section`]s.
///
/// Splitting rules:
/// * every top-level `for`/`while` is its own section (a loop is the unit
///   the paper's detectors protect, and the dominant fault window);
/// * a top-level `__syncthreads()` barrier *closes* the current section
///   (the barrier is the last statement of the section it terminates),
///   because a barrier is a reconvergence point: state flowing across it is
///   exactly the state a section-boundary checkpoint captures;
/// * maximal runs of the remaining straight-line statements form one
///   section each.
pub fn partition_sections(kernel: &KernelDef) -> SectionMap {
    let stmts = &kernel.body.0;
    let mut sections: Vec<Section> = Vec::new();
    let mut run_start: Option<usize> = None;

    let close = |sections: &mut Vec<Section>, start: usize, end: usize, kind: &str| {
        if start >= end {
            return;
        }
        let index = sections.len();
        let mut sites = Vec::new();
        let mut loops = Vec::new();
        for s in &stmts[start..end] {
            collect_windows(s, &mut sites, &mut loops);
        }
        let label = match kind {
            "loop" => format!("loop{}@{start}", loops.first().copied().unwrap_or(0)),
            _ => format!("{kind}@{start}"),
        };
        sections.push(Section {
            index,
            label,
            stmts: (start, end),
            sites,
            loops,
        });
    };

    for (i, s) in stmts.iter().enumerate() {
        match s {
            Stmt::For { .. } | Stmt::While { .. } => {
                if let Some(start) = run_start.take() {
                    close(&mut sections, start, i, "straight");
                }
                close(&mut sections, i, i + 1, "loop");
            }
            Stmt::SyncThreads => {
                // The barrier terminates the current straight-line run.
                let start = run_start.take().unwrap_or(i);
                close(&mut sections, start, i + 1, "straight");
            }
            _ => {
                run_start.get_or_insert(i);
            }
        }
    }
    if let Some(start) = run_start.take() {
        close(&mut sections, start, stmts.len(), "straight");
    }
    SectionMap { sections }
}

/// Collect every hook site id and loop id inside `stmt`, nested blocks
/// included.
fn collect_windows(stmt: &Stmt, sites: &mut Vec<SiteId>, loops: &mut Vec<LoopId>) {
    let mut one = |s: &Stmt| match s {
        Stmt::Hook(h) => sites.push(h.site),
        Stmt::For { id, .. } | Stmt::While { id, .. } => loops.push(*id),
        _ => {}
    };
    one(stmt);
    match stmt {
        Stmt::If {
            then_blk, else_blk, ..
        } => {
            for_each_stmt(then_blk, &mut one);
            for_each_stmt(else_blk, &mut one);
        }
        Stmt::For { body, .. } | Stmt::While { body, .. } => {
            for_each_stmt(body, &mut one);
        }
        _ => {}
    }
}

impl SectionMap {
    /// Section containing hook site `site`, if any.
    pub fn section_of_site(&self, site: SiteId) -> Option<usize> {
        self.sections
            .iter()
            .find(|s| s.sites.contains(&site))
            .map(|s| s.index)
    }

    /// Section containing loop `loop_id`, if any.
    pub fn section_of_loop(&self, loop_id: LoopId) -> Option<usize> {
        self.sections
            .iter()
            .find(|s| s.loops.contains(&loop_id))
            .map(|s| s.index)
    }

    /// A stable FNV-1a hash of the partition: section spans plus the
    /// site/loop windows each one owns. Campaign journals record it (with
    /// the plan fingerprint and engine) as the checkpoint identity, so a
    /// resume can refuse a journal whose checkpoints were cut against a
    /// different section structure.
    pub fn section_hash(&self) -> u64 {
        let (mut h, prime) = (0xcbf29ce484222325u64, 0x100000001b3u64);
        let mut mix = |v: u64| {
            for b in v.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(prime);
            }
        };
        mix(self.sections.len() as u64);
        for s in &self.sections {
            mix(s.stmts.0 as u64);
            mix(s.stmts.1 as u64);
            mix(s.sites.len() as u64);
            for site in &s.sites {
                mix(*site as u64);
            }
            mix(s.loops.len() as u64);
            for l in &s.loops {
                mix(*l as u64);
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::KernelBuilder;
    use crate::types::{PrimTy, Ty};

    /// A miniature of the paper's Fig. 9 coulombic-potential loop:
    /// two output accumulators, one with a slightly larger backward slice.
    fn cp_like() -> (KernelDef, Stmt) {
        let mut b = KernelBuilder::new("cp");
        let atoms = b.param("atoms", Ty::global_ptr(PrimTy::F32));
        let n = b.param("n", Ty::I32);
        let coorx = b.local("coorx", Ty::F32);
        let coory = b.local("coory", Ty::F32);
        b.assign(coorx, Expr::f32(1.0));
        b.assign(coory, Expr::f32(2.0));
        let aid = b.local("atomid", Ty::I32);
        let dx1 = b.local("dx1", Ty::F32);
        let dx2 = b.local("dx2", Ty::F32);
        let dy = b.local("dy", Ty::F32);
        let e1 = b.local("energyx1", Ty::F32);
        let e2 = b.local("energyx2", Ty::F32);
        b.assign(e1, Expr::f32(0.0));
        b.assign(e2, Expr::f32(0.0));
        b.for_range(aid, Expr::var(n), |b| {
            b.assign(
                dy,
                Expr::sub(
                    Expr::var(coory),
                    Expr::load(Expr::var(atoms), Expr::var(aid)),
                ),
            );
            b.assign(
                dx1,
                Expr::sub(
                    Expr::var(coorx),
                    Expr::load(Expr::var(atoms), Expr::var(aid)),
                ),
            );
            b.assign(dx2, Expr::add(Expr::var(dx1), Expr::f32(0.5)));
            b.assign(
                e1,
                Expr::add(
                    Expr::var(e1),
                    Expr::div(
                        Expr::f32(1.0),
                        Expr::call(
                            crate::expr::MathFn::Sqrt,
                            vec![Expr::add(
                                Expr::mul(Expr::var(dx1), Expr::var(dx1)),
                                Expr::mul(Expr::var(dy), Expr::var(dy)),
                            )],
                        ),
                    ),
                ),
            );
            b.assign(
                e2,
                Expr::add(
                    Expr::var(e2),
                    Expr::div(
                        Expr::f32(1.0),
                        Expr::call(
                            crate::expr::MathFn::Sqrt,
                            vec![Expr::add(
                                Expr::mul(Expr::var(dx2), Expr::var(dx2)),
                                Expr::mul(Expr::var(dy), Expr::var(dy)),
                            )],
                        ),
                    ),
                ),
            );
        });
        let k = b.finish();
        let loop_stmt = k
            .body
            .0
            .iter()
            .find(|s| s.is_loop())
            .expect("kernel has a loop")
            .clone();
        (k, loop_stmt)
    }

    #[test]
    fn defuse_identifies_loop_vars() {
        let (k, _) = cp_like();
        let du = DefUse::of(&k);
        let e2 = k.var_by_name("energyx2").unwrap();
        let coorx = k.var_by_name("coorx").unwrap();
        assert!(du.vars[e2 as usize].defined_in_loop);
        assert!(!du.vars[coorx as usize].defined_in_loop);
        assert!(du.vars[coorx as usize].used_in_loop);
        let nl: Vec<VarId> = du.non_loop_vars().collect();
        assert!(nl.contains(&coorx));
        assert!(!nl.contains(&e2));
    }

    #[test]
    fn loop_dataflow_shapes_match_fig9() {
        let (k, ls) = cp_like();
        let df = LoopDataflow::of(&k, &ls);
        let e1 = k.var_by_name("energyx1").unwrap();
        let e2 = k.var_by_name("energyx2").unwrap();
        let dx2 = k.var_by_name("dx2").unwrap();
        // Both energies are self-accumulating outputs... they are written
        // but never stored; outputs only if used after the loop — here not,
        // so check accumulation and ranking instead.
        assert!(df.self_accumulating.contains(&e1));
        assert!(df.self_accumulating.contains(&e2));
        // energyx2 transitively depends on dx2 -> dx1, dy: strictly more
        // than energyx1 (dx1, dy).
        assert!(df.cumulative_backward(e2) > df.cumulative_backward(e1));
        assert!(df.backward_slice(e2).contains(&dx2));
    }

    #[test]
    fn selection_prefers_self_accumulators_and_respects_maxvar() {
        let (k, ls) = cp_like();
        let df = LoopDataflow::of(&k, &ls);
        let it = k.var_by_name("atomid").unwrap();
        let sel = select_protection_targets(&k, &df, Some(it), 1);
        assert_eq!(sel.len(), 1);
        assert!(df.self_accumulating.contains(&sel[0]));
        let sel2 = select_protection_targets(&k, &df, Some(it), 8);
        assert!(sel2.len() >= 2, "both accumulators fit under max_var=8");
        assert!(!sel2.contains(&it), "iterator never selected");
    }

    #[test]
    fn selection_excludes_backward_slice_of_selected() {
        // x feeds acc; after selecting acc (self-accumulating), x must not
        // be selected even with a large max_var.
        let mut b = KernelBuilder::new("t");
        let n = b.param("n", Ty::I32);
        let i = b.local("i", Ty::I32);
        let x = b.local("x", Ty::F32);
        let acc = b.local("acc", Ty::F32);
        b.assign(acc, Expr::f32(0.0));
        b.for_range(i, Expr::var(n), |b| {
            b.assign(
                x,
                Expr::mul(
                    Expr::f32(2.0),
                    Expr::Cast(PrimTy::F32, Box::new(Expr::var(i))),
                ),
            );
            b.assign(acc, Expr::add(Expr::var(acc), Expr::var(x)));
        });
        let k = b.finish();
        let ls = k.body.0.iter().find(|s| s.is_loop()).unwrap().clone();
        let df = LoopDataflow::of(&k, &ls);
        let sel = select_protection_targets(&k, &df, Some(i), 4);
        assert_eq!(sel, vec![acc]);
    }

    #[test]
    fn trip_count_simple_and_le() {
        let mut b = KernelBuilder::new("t");
        let n = b.param("n", Ty::I32);
        let i = b.local("i", Ty::I32);
        let s = b.local("s", Ty::I32);
        b.for_range(i, Expr::var(n), |b| {
            b.assign(s, Expr::add(Expr::var(s), Expr::i32(1)));
        });
        let k = b.finish();
        let tc = derive_trip_count(&k.body.0[0]).expect("countable loop");
        // max(n - 0, 0)
        assert!(matches!(tc, Expr::Call(crate::expr::MathFn::Max, _)));
    }

    #[test]
    fn trip_count_rejects_modified_bound_or_break() {
        // Bound modified inside the loop.
        let mut b = KernelBuilder::new("t");
        let i = b.local("i", Ty::I32);
        let n = b.local("n", Ty::I32);
        b.assign(n, Expr::i32(10));
        b.for_range(i, Expr::var(n), |b| {
            b.assign(n, Expr::sub(Expr::var(n), Expr::i32(1)));
        });
        let k = b.finish();
        assert!(derive_trip_count(&k.body.0[1]).is_none());

        // Break in the body.
        let mut b = KernelBuilder::new("t2");
        let i = b.local("i", Ty::I32);
        b.for_range(i, Expr::i32(5), |b| {
            b.if_(Expr::lt(Expr::var(i), Expr::i32(2)), |b| {
                b.stmt(Stmt::Break)
            });
        });
        let k = b.finish();
        assert!(derive_trip_count(&k.body.0[0]).is_none());

        // Break in a *nested* loop does not disqualify the outer loop.
        let mut b = KernelBuilder::new("t3");
        let i = b.local("i", Ty::I32);
        let j = b.local("j", Ty::I32);
        b.for_range(i, Expr::i32(5), |b| {
            b.for_range(j, Expr::i32(5), |b| b.stmt(Stmt::Break));
        });
        let k = b.finish();
        assert!(derive_trip_count(&k.body.0[0]).is_some());
    }

    #[test]
    fn reset_variable_is_not_self_accumulating() {
        // s is accumulated in an inner loop but reset every outer iteration:
        // its value does not carry across outer iterations.
        let mut b = KernelBuilder::new("t");
        let n = b.param("n", Ty::I32);
        let i = b.local("i", Ty::I32);
        let j = b.local("j", Ty::I32);
        let s = b.local("s", Ty::I32);
        let t = b.local("total", Ty::I32);
        b.assign(t, Expr::i32(0));
        b.for_range(i, Expr::var(n), |b| {
            b.assign(s, Expr::i32(0)); // reset
            b.for_range(j, Expr::i32(4), |b| {
                b.assign(s, Expr::add(Expr::var(s), Expr::var(j)));
            });
            b.assign(t, Expr::add(Expr::var(t), Expr::var(s)));
        });
        let k = b.finish();
        let ls = k.body.0.iter().find(|x| x.is_loop()).unwrap().clone();
        let df = LoopDataflow::of(&k, &ls);
        assert!(!df.self_accumulating.contains(&s), "reset var excluded");
        assert!(df.self_accumulating.contains(&t), "true accumulator kept");
    }

    #[test]
    fn render_dataflow_mentions_all_vars() {
        let (k, ls) = cp_like();
        let df = LoopDataflow::of(&k, &ls);
        let s = render_dataflow(&k, &df);
        assert!(s.contains("energyx2"));
        assert!(s.contains("self-accumulating"));
    }

    #[test]
    fn dot_export_is_wellformed() {
        let (k, ls) = cp_like();
        let df = LoopDataflow::of(&k, &ls);
        let dot = dataflow_to_dot(&k, &df);
        assert!(dot.starts_with("digraph"));
        assert!(dot.trim_end().ends_with('}'));
        assert!(dot.contains("doublecircle"), "self-accumulators marked");
        assert!(dot.contains("-> \"energyx2\""), "edges into the target");
        assert!(dot.contains("load(s)"));
        // Balanced braces and quotes.
        assert_eq!(dot.matches('{').count(), dot.matches('}').count());
        assert_eq!(dot.matches('"').count() % 2, 0);
    }

    use crate::stmt::{Hook, HookKind};

    /// straight / loop / straight+barrier / loop / straight, with hooks
    /// sprinkled at distinct sites inside each region.
    fn sectioned() -> KernelDef {
        let mut b = KernelBuilder::new("sectioned");
        let n = b.param("n", crate::types::Ty::I32);
        let x = b.local("x", crate::types::Ty::I32);
        let i = b.local("i", crate::types::Ty::I32);
        let j = b.local("j", crate::types::Ty::I32);
        let hook = |site| {
            Stmt::Hook(Hook {
                kind: HookKind::CountExec,
                site,
                args: vec![],
                target: None,
            })
        };
        b.assign(x, Expr::i32(0));
        b.stmt(hook(0));
        b.for_range(i, Expr::var(n), |b| b.stmt(hook(1)));
        b.assign(x, Expr::var(i));
        b.sync();
        b.for_range(j, Expr::var(n), |b| b.stmt(hook(2)));
        b.stmt(hook(3));
        let mut k = b.finish();
        k.renumber();
        k
    }

    #[test]
    fn partition_splits_at_loops_and_barriers() {
        let k = sectioned();
        let sm = partition_sections(&k);
        let spans: Vec<(usize, usize)> = sm.sections.iter().map(|s| s.stmts).collect();
        // [assign, hook0] [for i] [assign, sync] [for j] [hook3]
        assert_eq!(spans, vec![(0, 2), (2, 3), (3, 5), (5, 6), (6, 7)]);
        assert_eq!(sm.sections[0].sites, vec![0]);
        assert_eq!(sm.sections[1].sites, vec![1]);
        assert_eq!(sm.sections[3].sites, vec![2]);
        assert_eq!(sm.sections[4].sites, vec![3]);
        assert_eq!(sm.sections[1].loops.len(), 1);
        assert_eq!(sm.sections[3].loops.len(), 1);
        assert!(sm.sections[1].label.starts_with("loop"));
        for (i, s) in sm.sections.iter().enumerate() {
            assert_eq!(s.index, i);
        }
    }

    #[test]
    fn section_lookup_maps_sites_and_loops() {
        let k = sectioned();
        let sm = partition_sections(&k);
        assert_eq!(sm.section_of_site(0), Some(0));
        assert_eq!(sm.section_of_site(1), Some(1));
        assert_eq!(sm.section_of_site(2), Some(3));
        assert_eq!(sm.section_of_site(3), Some(4));
        assert_eq!(sm.section_of_site(99), None);
        let loop_ids: Vec<LoopId> = sm.sections.iter().flat_map(|s| s.loops.clone()).collect();
        assert_eq!(loop_ids.len(), 2);
        assert_eq!(sm.section_of_loop(loop_ids[0]), Some(1));
        assert_eq!(sm.section_of_loop(loop_ids[1]), Some(3));
        assert_eq!(sm.section_of_loop(77), None);
    }

    #[test]
    fn section_hash_is_stable_and_structure_sensitive() {
        let k = sectioned();
        let h1 = partition_sections(&k).section_hash();
        let h2 = partition_sections(&k).section_hash();
        assert_eq!(h1, h2, "hash is deterministic");
        let (k2, _) = cp_like();
        let other = partition_sections(&k2).section_hash();
        assert_ne!(h1, other, "different structure, different hash");
    }

    #[test]
    fn barrier_only_kernel_is_single_sections_per_run() {
        // A kernel that is nothing but straight-line code forms one section.
        let mut b = KernelBuilder::new("flat");
        let x = b.local("x", crate::types::Ty::I32);
        b.assign(x, Expr::i32(1));
        b.assign(x, Expr::i32(2));
        let sm = partition_sections(&b.finish());
        assert_eq!(sm.sections.len(), 1);
        assert_eq!(sm.sections[0].stmts, (0, 2));
        // An empty body has no sections.
        let empty = KernelBuilder::new("empty").finish();
        assert!(partition_sections(&empty).sections.is_empty());
    }

    #[test]
    fn nested_loops_and_branch_hooks_belong_to_outer_section() {
        let mut b = KernelBuilder::new("nested");
        let n = b.param("n", crate::types::Ty::I32);
        let i = b.local("i", crate::types::Ty::I32);
        let j = b.local("j", crate::types::Ty::I32);
        b.for_range(i, Expr::var(n), |b| {
            b.for_range(j, Expr::var(n), |b| {
                b.stmt(Stmt::Hook(Hook {
                    kind: HookKind::CountExec,
                    site: 5,
                    args: vec![],
                    target: None,
                }));
            });
        });
        let mut k = b.finish();
        k.renumber();
        let sm = partition_sections(&k);
        assert_eq!(sm.sections.len(), 1);
        assert_eq!(sm.sections[0].loops.len(), 2, "nested loop ids collected");
        assert_eq!(sm.section_of_site(5), Some(0), "nested hook mapped");
    }
}
