//! KIR statements, blocks, and instrumentation hooks.
//!
//! Control flow is *structured* (`if`/`for`/`while`/`break`/`continue`),
//! which is what the lockstep SIMT interpreter needs for mask-based
//! reconvergence and what the Hauberk loop analysis needs to enumerate loops
//! and their bodies syntactically.
//!
//! [`Hook`] statements are the IR-level form of the function calls the
//! Hauberk translator inserts (Table I): fault-injection points, profiler
//! recordings, and the FT-library checks (`HauberkCheckRange`,
//! `HauberkCheckEqual`, checksum validation). They carry a *site id* so a
//! fault-injection campaign can arm a specific dynamic occurrence of a
//! specific site.

use crate::expr::{Expr, VarId};
use std::fmt;

/// Static identifier of a loop within one kernel (pre-order; assigned by
/// [`crate::kernel::KernelDef::renumber`]). Used to target scheduler /
/// loop-control faults deterministically.
pub type LoopId = u32;

/// Static identifier of an instrumentation site within one kernel.
pub type SiteId = u32;

/// The hardware component the preceding statement exercised, statically
/// derived from its operation types (§VII: "e.g., ALU and FPU for integer
/// and FP expressions, respectively").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum HwComponent {
    /// Integer ALU.
    IAlu,
    /// Floating-point unit.
    Fpu,
    /// Special function unit (sqrt/sin/cos/div...).
    Sfu,
    /// Load/store path.
    Mem,
    /// Register file (faults while a value sits in a register between uses).
    RegisterFile,
    /// SM scheduler / control flow.
    Scheduler,
}

impl fmt::Display for HwComponent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            HwComponent::IAlu => "ALU",
            HwComponent::Fpu => "FPU",
            HwComponent::Sfu => "SFU",
            HwComponent::Mem => "MEM",
            HwComponent::RegisterFile => "REG",
            HwComponent::Scheduler => "SCHED",
        })
    }
}

/// What an instrumentation hook does when it executes.
#[derive(Debug, Clone, PartialEq)]
pub enum HookKind {
    /// A fault-injection point inserted after a state-changing statement
    /// (§VII, Fig. 12). `target` on the [`Hook`] names the variable the
    /// preceding statement defined; the FI library may corrupt it here.
    FiPoint {
        /// Hardware component whose fault this point can emulate.
        hw: HwComponent,
    },
    /// Profiler: record the value of `args[0]` for detector `detector`
    /// (value-range learning, §V.B step iv / Fig. 10).
    Profile {
        /// Loop-detector index within the kernel.
        detector: u32,
    },
    /// Profiler: count one execution of this site (used to enumerate fault
    /// injection targets and weight their selection).
    CountExec,
    /// FT library `HauberkCheckRange(cb, detector, args[0])`: check the
    /// averaged accumulator value against the profiled value ranges; set the
    /// SDC bit and record the outlier if outside.
    CheckRange {
        /// Loop-detector index within the kernel.
        detector: u32,
    },
    /// FT library `HauberkCheckEqual(cb, detector, args[0], args[1])`:
    /// loop-trip-count invariant check.
    CheckEqual {
        /// Loop-detector index within the kernel.
        detector: u32,
    },
    /// Validate the per-kernel XOR checksum at kernel exit: `args[0]` must
    /// be zero, otherwise the SDC bit is set (§V.A step v).
    ChecksumCheck,
    /// A non-loop duplication mismatch was observed (the body of the
    /// `if (orig != dup)` the NL detector inserts); sets the SDC bit.
    NlMismatch,
}

impl HookKind {
    /// Short tag used by the printer.
    pub fn tag(&self) -> &'static str {
        match self {
            HookKind::FiPoint { .. } => "fi_point",
            HookKind::Profile { .. } => "profile",
            HookKind::CountExec => "count_exec",
            HookKind::CheckRange { .. } => "check_range",
            HookKind::CheckEqual { .. } => "check_equal",
            HookKind::ChecksumCheck => "checksum_check",
            HookKind::NlMismatch => "nl_mismatch",
        }
    }
}

/// An instrumentation hook statement (a call into one of the Hauberk
/// libraries, carried through the IR so the simulator can dispatch it to the
/// active library runtime).
#[derive(Debug, Clone, PartialEq)]
pub struct Hook {
    /// What the hook does.
    pub kind: HookKind,
    /// Static site id, unique per kernel (assigned by the inserting pass).
    pub site: SiteId,
    /// Evaluated arguments handed to the library.
    pub args: Vec<Expr>,
    /// Variable the hook may mutate (fault injection) — the variable defined
    /// by the preceding statement, per Fig. 12.
    pub target: Option<VarId>,
}

/// A sequence of statements.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Block(pub Vec<Stmt>);

impl Block {
    /// An empty block.
    pub fn new() -> Self {
        Block(Vec::new())
    }

    /// Number of statements (non-recursive).
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the block has no statements.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Total number of statements, recursively.
    pub fn stmt_count(&self) -> usize {
        let mut n = 0;
        for s in &self.0 {
            n += 1;
            match s {
                Stmt::If {
                    then_blk, else_blk, ..
                } => n += then_blk.stmt_count() + else_blk.stmt_count(),
                Stmt::For { body, .. } | Stmt::While { body, .. } => n += body.stmt_count(),
                _ => {}
            }
        }
        n
    }
}

/// A KIR statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `var = value;` — every assignment defines a *virtual variable* in the
    /// paper's sense (one definition, uses until the next definition).
    Assign {
        /// Destination variable.
        var: VarId,
        /// Right-hand side.
        value: Expr,
    },
    /// `store(ptr, index, value);` — write element `index` of `ptr`.
    Store {
        /// Pointer expression.
        ptr: Expr,
        /// Element index (integer).
        index: Expr,
        /// Value to store.
        value: Expr,
    },
    /// `atomic_add(ptr, index, value);` — atomic read-modify-write.
    AtomicAdd {
        /// Pointer expression.
        ptr: Expr,
        /// Element index (integer).
        index: Expr,
        /// Addend.
        value: Expr,
    },
    /// Two-armed conditional.
    If {
        /// Condition (bool).
        cond: Expr,
        /// Taken when true.
        then_blk: Block,
        /// Taken when false.
        else_blk: Block,
    },
    /// `for (var = init; cond; var = step) body` — `step` computes the new
    /// value of `var` (commonly `var + 1`).
    For {
        /// Loop id (assigned by [`crate::kernel::KernelDef::renumber`]).
        id: LoopId,
        /// Iterator variable.
        var: VarId,
        /// Initial value of the iterator.
        init: Expr,
        /// Continuation condition.
        cond: Expr,
        /// New iterator value computed at the end of each iteration.
        step: Expr,
        /// Loop body.
        body: Block,
    },
    /// `while (cond) body`.
    While {
        /// Loop id (assigned by [`crate::kernel::KernelDef::renumber`]).
        id: LoopId,
        /// Continuation condition.
        cond: Expr,
        /// Loop body.
        body: Block,
    },
    /// Exit the innermost loop.
    Break,
    /// Jump to the next iteration of the innermost loop (the `for` step still
    /// executes, like C).
    Continue,
    /// `__syncthreads()` barrier. On the lockstep warp interpreter this is a
    /// (costed) no-op within a warp; the simulated kernels do not rely on
    /// inter-warp shared-memory hand-off (see `hauberk-sim` docs).
    SyncThreads,
    /// Instrumentation hook.
    Hook(Hook),
}

impl Stmt {
    /// Convenience constructor: `var = value;`.
    pub fn assign(var: VarId, value: Expr) -> Stmt {
        Stmt::Assign { var, value }
    }

    /// Whether this statement *is* a loop.
    pub fn is_loop(&self) -> bool {
        matches!(self, Stmt::For { .. } | Stmt::While { .. })
    }

    /// The variable this statement defines, if it is an assignment.
    pub fn defined_var(&self) -> Option<VarId> {
        match self {
            Stmt::Assign { var, .. } => Some(*var),
            _ => None,
        }
    }

    /// Expressions evaluated directly by this statement (not descending into
    /// nested blocks).
    pub fn direct_exprs(&self) -> Vec<&Expr> {
        match self {
            Stmt::Assign { value, .. } => vec![value],
            Stmt::Store { ptr, index, value } | Stmt::AtomicAdd { ptr, index, value } => {
                vec![ptr, index, value]
            }
            Stmt::If { cond, .. } => vec![cond],
            Stmt::For {
                init, cond, step, ..
            } => vec![init, cond, step],
            Stmt::While { cond, .. } => vec![cond],
            Stmt::Hook(h) => h.args.iter().collect(),
            Stmt::Break | Stmt::Continue | Stmt::SyncThreads => vec![],
        }
    }

    /// Whether the statement (directly) uses variable `v` in any evaluated
    /// expression.
    pub fn uses_var_directly(&self, v: VarId) -> bool {
        self.direct_exprs().iter().any(|e| e.uses_var(v))
    }

    /// Whether the statement or any nested statement uses variable `v`.
    pub fn uses_var_recursively(&self, v: VarId) -> bool {
        if self.uses_var_directly(v) {
            return true;
        }
        match self {
            Stmt::If {
                then_blk, else_blk, ..
            } => {
                then_blk.0.iter().any(|s| s.uses_var_recursively(v))
                    || else_blk.0.iter().any(|s| s.uses_var_recursively(v))
            }
            Stmt::For { body, .. } | Stmt::While { body, .. } => {
                body.0.iter().any(|s| s.uses_var_recursively(v))
            }
            _ => false,
        }
    }

    /// Whether the statement or any nested statement assigns variable `v`
    /// (a `for` loop assigns its iterator).
    pub fn assigns_var_recursively(&self, v: VarId) -> bool {
        match self {
            Stmt::Assign { var, .. } => *var == v,
            Stmt::If {
                then_blk, else_blk, ..
            } => {
                then_blk.0.iter().any(|s| s.assigns_var_recursively(v))
                    || else_blk.0.iter().any(|s| s.assigns_var_recursively(v))
            }
            Stmt::For { var, body, .. } => {
                *var == v || body.0.iter().any(|s| s.assigns_var_recursively(v))
            }
            Stmt::While { body, .. } => body.0.iter().any(|s| s.assigns_var_recursively(v)),
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn loop_stmt() -> Stmt {
        // for (i = 0; i < n(v1); i = i + 1) { acc(v2) = acc + load(p(v3), i); }
        Stmt::For {
            id: 0,
            var: 0,
            init: Expr::i32(0),
            cond: Expr::lt(Expr::var(0), Expr::var(1)),
            step: Expr::add(Expr::var(0), Expr::i32(1)),
            body: Block(vec![Stmt::assign(
                2,
                Expr::add(Expr::var(2), Expr::load(Expr::var(3), Expr::var(0))),
            )]),
        }
    }

    #[test]
    fn recursive_use_and_assign() {
        let s = loop_stmt();
        assert!(s.uses_var_recursively(3));
        assert!(s.assigns_var_recursively(2));
        assert!(s.assigns_var_recursively(0)); // iterator
        assert!(!s.assigns_var_recursively(3));
        assert!(s.is_loop());
    }

    #[test]
    fn direct_exprs_of_for_are_header_only() {
        let s = loop_stmt();
        assert_eq!(s.direct_exprs().len(), 3);
        assert!(s.uses_var_directly(1)); // bound in condition
        assert!(!s.uses_var_directly(3)); // body load is not direct
    }

    #[test]
    fn stmt_count_recurses() {
        let b = Block(vec![
            loop_stmt(),
            Stmt::If {
                cond: Expr::Lit(crate::value::Value::Bool(true)),
                then_blk: Block(vec![Stmt::Break]),
                else_blk: Block::new(),
            },
        ]);
        // for + its 1 body stmt + if + break
        assert_eq!(b.stmt_count(), 4);
    }

    #[test]
    fn defined_var_only_for_assign() {
        assert_eq!(Stmt::assign(5, Expr::i32(1)).defined_var(), Some(5));
        assert_eq!(Stmt::Break.defined_var(), None);
    }
}
