//! Lowering from the KIR tree to a flat, register-addressed bytecode.
//!
//! The tree-walking interpreter in `hauberk-sim` re-walks every `Expr` node
//! per warp per launch, allocating a `Vec<Value>` per intermediate. For
//! SWIFI-campaign scale that cost dominates, so this module compiles a
//! [`KernelDef`] **once** into a [`LoweredKernel`]:
//!
//! * every variable, literal constant, thread-geometry builtin, and
//!   expression temporary gets a **register slot** (an index into one flat
//!   register file), so execution never looks anything up by name and never
//!   allocates;
//! * structured control flow (`if`/`for`/`while`/`break`/`continue`) becomes
//!   **jump-target instructions** ([`Op::IfSplit`], [`Op::LoopTest`], ...)
//!   whose targets are backpatched during lowering;
//! * instrumentation hooks are collected into a side table so the executor
//!   can preresolve their costs and names.
//!
//! The bytecode is purely a *representation* change: the VM in
//! `hauberk-sim::vm` executes it with bit-identical semantics to the tree
//! walker (same charge ordering, same trap ordering, same `ExecStats`), which
//! the differential property suite in the workspace root enforces.
//!
//! ## Register-file layout
//!
//! ```text
//! [0, n_vars)                         kernel variables (reg == VarId)
//! [n_vars, n_vars+n_consts)           interned literal pool
//! [.., .. + n_builtins)               builtin pool (filled at warp start)
//! [.., .. + n_temps)                  expression temporaries
//! ```
//!
//! Constants are interned **bitwise** (via [`Value`]'s bit-equality), never
//! by numeric equality: `-0.0` and `0.0` must stay distinct slots.
//!
//! ## Control-flow protocol
//!
//! The executor keeps a small frame stack (one frame per open `if` or loop).
//! Lowering guarantees the *join invariant*: whenever a lane subset's path
//! dies (all active lanes took `break`, an `if` joined empty, ...), control
//! transfers through a `join_pc` straight to a terminator-style instruction
//! ([`Op::EndArm`], [`Op::LoopNext`], [`Op::Halt`]) that tolerates an empty
//! mask. Ordinary instructions therefore always execute with at least one
//! active lane, which is what keeps the cycle accounting identical to the
//! tree walker (which simply never visits dead statements).

use crate::analysis::SlotAllocator;
use crate::expr::{BuiltinVar, Expr, MathFn, UnOp};
use crate::kernel::KernelDef;
use crate::stmt::{Block, Hook, LoopId, Stmt};
use crate::types::{MemSpace, PrimTy, Ty};
use crate::value::Value;
use crate::BinOp;
use std::fmt;

/// A register index into the flat per-warp register file.
pub type Reg = u32;

/// Sentinel for "no register" (e.g. the iterator slot of a `while` loop).
pub const NO_REG: Reg = u32::MAX;

/// One bytecode instruction.
///
/// Value-producing ops mirror the tree interpreter's `eval` arms one-to-one
/// (same operand evaluation order, same charge class, same trap points);
/// control ops encode the structured-reconvergence protocol described in the
/// module docs.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// `dst[l] = v` for active lanes. Tag 0 (literals have no producer).
    Lit {
        /// Destination register.
        dst: Reg,
        /// Literal value.
        v: Value,
    },
    /// `dst[l] = src[l]` for active lanes; producer tag is forwarded.
    Copy {
        /// Destination register.
        dst: Reg,
        /// Source register.
        src: Reg,
    },
    /// `bits_of` reinterpretation: `dst[l] = U32(src[l].to_bits())`.
    /// Free (no charge); producer tag is forwarded.
    Bits {
        /// Destination register.
        dst: Reg,
        /// Source register.
        src: Reg,
    },
    /// Unary op (never [`UnOp::BitsOf`], which lowers to [`Op::Bits`]).
    Un {
        /// Operator.
        op: UnOp,
        /// Destination register.
        dst: Reg,
        /// Operand register.
        src: Reg,
        /// Static operand type (KIR is fully typed, so the runtime lane type
        /// always equals this — even under injected faults, which flip bits
        /// but never change a register's type).
        ty: PrimTy,
    },
    /// Binary op.
    Bin {
        /// Operator.
        op: BinOp,
        /// Destination register.
        dst: Reg,
        /// Left operand register.
        a: Reg,
        /// Right operand register.
        b: Reg,
        /// Static type of the left operand (pointer arithmetic included).
        ta: Ty,
        /// Static type of the right operand.
        tb: Ty,
    },
    /// Unary math intrinsic call.
    Call1 {
        /// Intrinsic.
        f: MathFn,
        /// Destination register.
        dst: Reg,
        /// Argument register.
        a: Reg,
        /// Static argument type (drives the charge class of `abs`).
        ty: PrimTy,
    },
    /// Binary math intrinsic call (`min`/`max`).
    Call2 {
        /// Intrinsic.
        f: MathFn,
        /// Destination register.
        dst: Reg,
        /// First argument register.
        a: Reg,
        /// Second argument register.
        b: Reg,
        /// Static type of the first argument.
        ty: PrimTy,
    },
    /// Numeric conversion.
    Cast {
        /// Target primitive type.
        to: PrimTy,
        /// Static source type.
        from: PrimTy,
        /// Destination register.
        dst: Reg,
        /// Operand register.
        src: Reg,
    },
    /// `dst[l] = mem[ptr[l] + idx[l]]` (coalescing-costed memory read).
    Load {
        /// Destination register.
        dst: Reg,
        /// Pointer operand register.
        ptr: Reg,
        /// Element-index operand register.
        idx: Reg,
        /// Static memory space of the pointer.
        space: MemSpace,
        /// Static element type of the pointer.
        elem: PrimTy,
        /// Static type of the index operand (drives sign extension).
        idx_ty: PrimTy,
    },
    /// `mem[ptr[l] + idx[l]] = val[l]` (coalescing-costed memory write).
    Store {
        /// Pointer operand register.
        ptr: Reg,
        /// Element-index operand register.
        idx: Reg,
        /// Value operand register.
        val: Reg,
        /// Static memory space of the pointer.
        space: MemSpace,
        /// Static element type of the pointer.
        elem: PrimTy,
        /// Static type of the index operand.
        idx_ty: PrimTy,
    },
    /// Atomic read-modify-write add (serialized across lanes).
    AtomicAdd {
        /// Pointer operand register.
        ptr: Reg,
        /// Element-index operand register.
        idx: Reg,
        /// Addend operand register.
        val: Reg,
        /// Static memory space of the pointer.
        space: MemSpace,
        /// Static element type of the pointer.
        elem: PrimTy,
        /// Static type of the index operand.
        idx_ty: PrimTy,
    },
    /// `__syncthreads()` barrier (costed no-op within a warp).
    Sync,
    /// Zero the **inactive** lanes of `n` consecutive registers starting at
    /// `base` (hook-argument normalization, so both engines hand runtimes
    /// identical full-width buffers).
    ZeroInactive {
        /// First register to normalize.
        base: Reg,
        /// Number of consecutive registers.
        n: u32,
    },
    /// Dispatch hook `hook` (index into [`LoweredKernel::hooks`]) with `n`
    /// argument registers starting at `base`.
    Hook {
        /// Hook-table index.
        hook: u32,
        /// First argument register.
        base: Reg,
        /// Number of argument registers.
        n: u32,
    },
    /// Evaluate an `if` condition: charge control, split the mask, push an
    /// if-frame, and continue into the then-arm (or jump to `else_pc`).
    IfSplit {
        /// Condition register.
        cond: Reg,
        /// First pc of the else-arm.
        else_pc: u32,
        /// First pc after the whole `if`.
        end_pc: u32,
    },
    /// End of an `if` arm: bank surviving lanes, dispatch the other arm or
    /// reconverge. `join_pc` is the enclosing block's join (taken with an
    /// empty mask when no lane survived the `if`).
    EndArm {
        /// Enclosing block's join point.
        join_pc: u32,
    },
    /// Open a loop frame (records the entry mask, bumps loop depth).
    LoopEnter,
    /// Top of a loop iteration: restore the mask to the loop's live set.
    LoopHead,
    /// Evaluate the loop condition: charge control, run the `loop_check`
    /// hook, drop finished lanes, exit to `exit_pc` when none remain.
    LoopTest {
        /// Condition register.
        cond: Reg,
        /// Static loop id (for the `loop_check` instrumentation hook).
        loop_id: LoopId,
        /// Iterator variable register, or [`NO_REG`] for `while` loops.
        iter: Reg,
        /// First pc after the loop.
        exit_pc: u32,
    },
    /// Bottom of a loop body: retire `break` lanes, rejoin `continue` lanes,
    /// then either run the step code (`has_step`) or jump to `head_pc`.
    LoopNext {
        /// Pc of the loop's [`Op::LoopHead`].
        head_pc: u32,
        /// First pc after the loop.
        exit_pc: u32,
        /// Whether step code follows this instruction (`for` loops).
        has_step: bool,
    },
    /// Unconditional jump (closes a `for` loop's step code).
    Jump {
        /// Target pc.
        pc: u32,
    },
    /// `break`: bank the active mask into the innermost loop frame and jump
    /// (empty-masked) to the enclosing block's join.
    Break {
        /// Enclosing block's join point.
        join_pc: u32,
    },
    /// `continue`: leave the lanes in the loop's live set and jump
    /// (empty-masked) to the enclosing block's join.
    Continue {
        /// Enclosing block's join point.
        join_pc: u32,
    },
    /// End of the kernel body.
    Halt,
}

/// Metadata for one kernel variable carried into the bytecode.
#[derive(Debug, Clone, PartialEq)]
pub struct LoweredVar {
    /// Source-level name (used by the disassembly only).
    pub name: String,
    /// Declared type (drives register initialization).
    pub ty: Ty,
    /// Whether the variable is a kernel parameter (initialized from the
    /// launch arguments instead of zero).
    pub is_param: bool,
}

/// A kernel compiled to flat bytecode, plus the tables the executor needs.
#[derive(Debug, Clone, PartialEq)]
pub struct LoweredKernel {
    /// Kernel name (diagnostics only).
    pub name: String,
    /// Per-variable metadata; `vars[i]` backs register `i`.
    pub vars: Vec<LoweredVar>,
    /// Number of kernel parameters (must match the launch argument count).
    pub n_params: usize,
    /// Statically-declared shared memory, in bytes (copied from the kernel).
    pub shared_mem_bytes: u32,
    /// Interned literal pool backing registers `[const_base, builtin_base)`.
    pub consts: Vec<Value>,
    /// Builtin pool backing registers `[builtin_base, temp_base)`, filled
    /// once per warp at startup.
    pub builtins: Vec<BuiltinVar>,
    /// Number of expression-temporary registers.
    pub n_temps: u32,
    /// The instruction stream. Always ends with [`Op::Halt`].
    pub code: Vec<Op>,
    /// Hook side table, indexed by [`Op::Hook::hook`].
    pub hooks: Vec<Hook>,
    /// Static types of each hook's argument expressions (parallel to
    /// [`LoweredKernel::hooks`]); the raw-register VM uses these to
    /// materialize typed argument views for the hook runtime.
    pub hook_arg_tys: Vec<Vec<Ty>>,
}

impl LoweredKernel {
    /// Number of variable registers.
    pub fn n_vars(&self) -> u32 {
        self.vars.len() as u32
    }

    /// First register of the literal pool.
    pub fn const_base(&self) -> Reg {
        self.n_vars()
    }

    /// First register of the builtin pool.
    pub fn builtin_base(&self) -> Reg {
        self.const_base() + self.consts.len() as u32
    }

    /// First expression-temporary register.
    pub fn temp_base(&self) -> Reg {
        self.builtin_base() + self.builtins.len() as u32
    }

    /// Total size of the register file.
    pub fn n_regs(&self) -> u32 {
        self.temp_base() + self.n_temps
    }

    /// Human-readable name of register `r` for the disassembly.
    fn reg_name(&self, r: Reg) -> String {
        if r == NO_REG {
            return "-".to_string();
        }
        if r < self.const_base() {
            return format!("%{}", self.vars[r as usize].name);
        }
        if r < self.builtin_base() {
            return format!("c{}", r - self.const_base());
        }
        if r < self.temp_base() {
            return format!(
                "@{}",
                self.builtins[(r - self.builtin_base()) as usize].spelling()
            );
        }
        format!("t{}", r - self.temp_base())
    }

    /// Sanity-check internal consistency: every jump target lands inside the
    /// code, every register reference is inside the register file, every hook
    /// index resolves. Used by tests and debug assertions; returns a
    /// description of the first violation found.
    pub fn check(&self) -> Result<(), String> {
        let n_code = self.code.len() as u32;
        let n_regs = self.n_regs();
        let reg = |r: Reg, what: &str, pc: usize| -> Result<(), String> {
            if r != NO_REG && r >= n_regs {
                return Err(format!(
                    "pc {pc}: {what} register {r} out of range ({n_regs})"
                ));
            }
            Ok(())
        };
        let pc_ok = |t: u32, what: &str, pc: usize| -> Result<(), String> {
            if t >= n_code {
                return Err(format!(
                    "pc {pc}: {what} target {t} out of range ({n_code})"
                ));
            }
            Ok(())
        };
        if !matches!(self.code.last(), Some(Op::Halt)) {
            return Err("code does not end with Halt".to_string());
        }
        for (pc, op) in self.code.iter().enumerate() {
            match op {
                Op::Lit { dst, .. } => reg(*dst, "dst", pc)?,
                Op::Copy { dst, src } | Op::Bits { dst, src } => {
                    reg(*dst, "dst", pc)?;
                    reg(*src, "src", pc)?;
                }
                Op::Un { dst, src, .. } => {
                    reg(*dst, "dst", pc)?;
                    reg(*src, "src", pc)?;
                }
                Op::Bin { dst, a, b, .. } | Op::Call2 { dst, a, b, .. } => {
                    reg(*dst, "dst", pc)?;
                    reg(*a, "a", pc)?;
                    reg(*b, "b", pc)?;
                }
                Op::Call1 { dst, a, .. } => {
                    reg(*dst, "dst", pc)?;
                    reg(*a, "a", pc)?;
                }
                Op::Cast { dst, src, .. } => {
                    reg(*dst, "dst", pc)?;
                    reg(*src, "src", pc)?;
                }
                Op::Load { dst, ptr, idx, .. } => {
                    reg(*dst, "dst", pc)?;
                    reg(*ptr, "ptr", pc)?;
                    reg(*idx, "idx", pc)?;
                }
                Op::Store { ptr, idx, val, .. } | Op::AtomicAdd { ptr, idx, val, .. } => {
                    reg(*ptr, "ptr", pc)?;
                    reg(*idx, "idx", pc)?;
                    reg(*val, "val", pc)?;
                }
                Op::Sync | Op::LoopEnter | Op::LoopHead | Op::Halt => {}
                Op::ZeroInactive { base, n } => {
                    if *n > 0 {
                        reg(*base + n - 1, "arg", pc)?;
                    }
                }
                Op::Hook { hook, base, n } => {
                    if *hook as usize >= self.hooks.len() {
                        return Err(format!("pc {pc}: hook index {hook} out of range"));
                    }
                    let tys = self.hook_arg_tys.get(*hook as usize);
                    if tys.map(|t| t.len() as u32) != Some(*n) {
                        return Err(format!("pc {pc}: hook {hook} arg-type table mismatch"));
                    }
                    if *n > 0 {
                        reg(*base + n - 1, "arg", pc)?;
                    }
                }
                Op::IfSplit {
                    cond,
                    else_pc,
                    end_pc,
                } => {
                    reg(*cond, "cond", pc)?;
                    pc_ok(*else_pc, "else", pc)?;
                    pc_ok(*end_pc, "end", pc)?;
                }
                Op::EndArm { join_pc } | Op::Break { join_pc } | Op::Continue { join_pc } => {
                    pc_ok(*join_pc, "join", pc)?;
                }
                Op::LoopTest {
                    cond,
                    iter,
                    exit_pc,
                    ..
                } => {
                    reg(*cond, "cond", pc)?;
                    reg(*iter, "iter", pc)?;
                    pc_ok(*exit_pc, "exit", pc)?;
                }
                Op::LoopNext {
                    head_pc, exit_pc, ..
                } => {
                    pc_ok(*head_pc, "head", pc)?;
                    pc_ok(*exit_pc, "exit", pc)?;
                }
                Op::Jump { pc: t } => pc_ok(*t, "jump", pc)?,
            }
        }
        Ok(())
    }
}

impl fmt::Display for LoweredKernel {
    /// Bytecode disassembly (the minimal-repro artifact printed by the
    /// differential tests on a divergence).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "kernel {}: {} vars ({} params), {} consts, {} builtins, {} temps, {} ops, {} hooks",
            self.name,
            self.vars.len(),
            self.n_params,
            self.consts.len(),
            self.builtins.len(),
            self.n_temps,
            self.code.len(),
            self.hooks.len()
        )?;
        for (i, c) in self.consts.iter().enumerate() {
            writeln!(f, "  c{i} = {c}")?;
        }
        for (i, h) in self.hooks.iter().enumerate() {
            writeln!(
                f,
                "  hook{i} = {:?} site={} target={}",
                h.kind,
                h.site,
                h.target
                    .map(|v| self.reg_name(v))
                    .unwrap_or_else(|| "-".to_string())
            )?;
        }
        let r = |x: Reg| self.reg_name(x);
        for (pc, op) in self.code.iter().enumerate() {
            let body = match op {
                Op::Lit { dst, v } => format!("lit        {} <- {v}", r(*dst)),
                Op::Copy { dst, src } => format!("copy       {} <- {}", r(*dst), r(*src)),
                Op::Bits { dst, src } => format!("bits       {} <- {}", r(*dst), r(*src)),
                Op::Un { op, dst, src, ty } => {
                    format!("un {op:?}     {} <- {} :{ty}", r(*dst), r(*src))
                }
                Op::Bin {
                    op, dst, a, b, ta, ..
                } => {
                    format!("bin {op:?} {} <- {}, {} :{ta}", r(*dst), r(*a), r(*b))
                }
                Op::Call1 { f: mf, dst, a, .. } => {
                    format!("call {mf:?} {} <- {}", r(*dst), r(*a))
                }
                Op::Call2 {
                    f: mf, dst, a, b, ..
                } => {
                    format!("call {mf:?} {} <- {}, {}", r(*dst), r(*a), r(*b))
                }
                Op::Cast { to, from, dst, src } => {
                    format!("cast {from}->{to} {} <- {}", r(*dst), r(*src))
                }
                Op::Load {
                    dst,
                    ptr,
                    idx,
                    space,
                    ..
                } => {
                    format!("load.{space} {} <- [{} + {}]", r(*dst), r(*ptr), r(*idx))
                }
                Op::Store {
                    ptr,
                    idx,
                    val,
                    space,
                    ..
                } => {
                    format!("store.{space} [{} + {}] <- {}", r(*ptr), r(*idx), r(*val))
                }
                Op::AtomicAdd {
                    ptr,
                    idx,
                    val,
                    space,
                    ..
                } => {
                    format!(
                        "atomic_add.{space} [{} + {}] <- {}",
                        r(*ptr),
                        r(*idx),
                        r(*val)
                    )
                }
                Op::Sync => "sync".to_string(),
                Op::ZeroInactive { base, n } => {
                    format!("zero_inact {} x{n}", r(*base))
                }
                Op::Hook { hook, base, n } => {
                    format!("hook       #{hook} args={} x{n}", r(*base))
                }
                Op::IfSplit {
                    cond,
                    else_pc,
                    end_pc,
                } => {
                    format!("if         {} else->{else_pc} end->{end_pc}", r(*cond))
                }
                Op::EndArm { join_pc } => format!("end_arm    join->{join_pc}"),
                Op::LoopEnter => "loop_enter".to_string(),
                Op::LoopHead => "loop_head".to_string(),
                Op::LoopTest {
                    cond,
                    loop_id,
                    iter,
                    exit_pc,
                } => format!(
                    "loop_test  {} id={loop_id} iter={} exit->{exit_pc}",
                    r(*cond),
                    r(*iter)
                ),
                Op::LoopNext {
                    head_pc,
                    exit_pc,
                    has_step,
                } => {
                    format!("loop_next  head->{head_pc} exit->{exit_pc} step={has_step}")
                }
                Op::Jump { pc: t } => format!("jump       ->{t}"),
                Op::Break { join_pc } => format!("break      join->{join_pc}"),
                Op::Continue { join_pc } => format!("continue   join->{join_pc}"),
                Op::Halt => "halt".to_string(),
            };
            writeln!(f, "  {pc:04} {body}")?;
        }
        Ok(())
    }
}

/// Compile `kernel` to bytecode.
///
/// The kernel should already satisfy [`crate::validate::validate_kernel`];
/// lowering panics on forms the validator rejects (math calls with more than
/// two arguments). The output always passes [`LoweredKernel::check`].
pub fn lower_kernel(kernel: &KernelDef) -> LoweredKernel {
    // Pass 1: intern literals (bitwise) and collect used builtins.
    let mut consts: Vec<Value> = Vec::new();
    let mut builtins: Vec<BuiltinVar> = Vec::new();
    scan_block(&kernel.body, &mut consts, &mut builtins);

    let n_vars = kernel.vars.len() as u32;
    let const_base = n_vars;
    let builtin_base = const_base + consts.len() as u32;
    let temp_base = builtin_base + builtins.len() as u32;
    let mut lw = Lowerer {
        const_base,
        builtin_base,
        consts,
        builtins,
        var_tys: kernel.vars.iter().map(|d| d.ty).collect(),
        code: Vec::new(),
        hooks: Vec::new(),
        hook_arg_tys: Vec::new(),
        temps: SlotAllocator::new(temp_base),
    };

    // Pass 2: emit code, backpatching jump targets.
    let joins = lw.block(&kernel.body);
    let halt = lw.here();
    lw.code.push(Op::Halt);
    lw.patch_joins(&joins, halt);

    let lowered = LoweredKernel {
        name: kernel.name.clone(),
        vars: kernel
            .vars
            .iter()
            .map(|d| LoweredVar {
                name: d.name.clone(),
                ty: d.ty,
                is_param: d.is_param,
            })
            .collect(),
        n_params: kernel.n_params,
        shared_mem_bytes: kernel.shared_mem_bytes,
        consts: lw.consts,
        builtins: lw.builtins,
        n_temps: lw.temps.high_water(),
        code: lw.code,
        hooks: lw.hooks,
        hook_arg_tys: lw.hook_arg_tys,
    };
    debug_assert_eq!(lowered.check(), Ok(()));
    lowered
}

/// Intern `v` into the literal pool by **bit** equality ([`Value`]'s
/// `PartialEq` compares `to_bits`, so `-0.0` and `0.0` stay distinct and NaN
/// payloads are preserved).
fn intern_const(consts: &mut Vec<Value>, v: Value) {
    if !consts.contains(&v) {
        consts.push(v);
    }
}

fn scan_expr(e: &Expr, consts: &mut Vec<Value>, builtins: &mut Vec<BuiltinVar>) {
    match e {
        Expr::Lit(v) => intern_const(consts, *v),
        Expr::Builtin(b) => {
            if !builtins.contains(b) {
                builtins.push(*b);
            }
        }
        Expr::Var(_) => {}
        Expr::Un(_, a) | Expr::Cast(_, a) => scan_expr(a, consts, builtins),
        Expr::Bin(_, a, b) => {
            scan_expr(a, consts, builtins);
            scan_expr(b, consts, builtins);
        }
        Expr::Call(_, args) => {
            for a in args {
                scan_expr(a, consts, builtins);
            }
        }
        Expr::Load { ptr, index } => {
            scan_expr(ptr, consts, builtins);
            scan_expr(index, consts, builtins);
        }
    }
}

fn scan_block(b: &Block, consts: &mut Vec<Value>, builtins: &mut Vec<BuiltinVar>) {
    for s in &b.0 {
        match s {
            Stmt::Assign { value, .. } => scan_expr(value, consts, builtins),
            Stmt::Store { ptr, index, value } | Stmt::AtomicAdd { ptr, index, value } => {
                scan_expr(ptr, consts, builtins);
                scan_expr(index, consts, builtins);
                scan_expr(value, consts, builtins);
            }
            Stmt::If {
                cond,
                then_blk,
                else_blk,
            } => {
                scan_expr(cond, consts, builtins);
                scan_block(then_blk, consts, builtins);
                scan_block(else_blk, consts, builtins);
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
                ..
            } => {
                scan_expr(init, consts, builtins);
                scan_expr(cond, consts, builtins);
                scan_expr(step, consts, builtins);
                scan_block(body, consts, builtins);
            }
            Stmt::While { cond, body, .. } => {
                scan_expr(cond, consts, builtins);
                scan_block(body, consts, builtins);
            }
            Stmt::Break | Stmt::Continue | Stmt::SyncThreads => {}
            Stmt::Hook(h) => {
                for a in &h.args {
                    scan_expr(a, consts, builtins);
                }
            }
        }
    }
}

struct Lowerer {
    const_base: u32,
    builtin_base: u32,
    consts: Vec<Value>,
    builtins: Vec<BuiltinVar>,
    var_tys: Vec<Ty>,
    code: Vec<Op>,
    hooks: Vec<Hook>,
    hook_arg_tys: Vec<Vec<Ty>>,
    temps: SlotAllocator,
}

/// Extract the primitive type from a [`Ty`]; panics on pointers (callers are
/// positions the validator guarantees are scalar).
fn prim(ty: Ty) -> PrimTy {
    match ty {
        Ty::Prim(p) => p,
        t => panic!("bytecode lowering: scalar position has pointer type {t}"),
    }
}

impl Lowerer {
    fn here(&self) -> u32 {
        self.code.len() as u32
    }

    fn const_reg(&self, v: &Value) -> Reg {
        let i = self
            .consts
            .iter()
            .position(|c| c == v)
            .expect("literal missed by prescan");
        self.const_base + i as u32
    }

    fn builtin_reg(&self, b: BuiltinVar) -> Reg {
        let i = self
            .builtins
            .iter()
            .position(|x| *x == b)
            .expect("builtin missed by prescan");
        self.builtin_base + i as u32
    }

    /// Static type of `e`, mirroring the typing rules of
    /// [`crate::validate::validate_kernel`]. Infallible on validated kernels;
    /// the result annotates the emitted op so the VM never inspects runtime
    /// value tags.
    fn ty_of(&self, e: &Expr) -> Ty {
        match e {
            Expr::Lit(v) => v.ty(),
            Expr::Var(v) => self.var_tys[*v as usize],
            Expr::Builtin(b) => b.ty(),
            Expr::Un(UnOp::BitsOf, _) => Ty::U32,
            Expr::Un(_, a) => self.ty_of(a),
            Expr::Bin(op, a, _) => {
                if op.is_comparison() || op.is_logical() {
                    Ty::BOOL
                } else {
                    // Arithmetic/bitwise preserve the left operand's type;
                    // this covers pointer arithmetic (`ptr ± int` is `ptr`).
                    self.ty_of(a)
                }
            }
            Expr::Call(f, args) => match f {
                MathFn::Min | MathFn::Max | MathFn::Abs => self.ty_of(&args[0]),
                _ => Ty::F32,
            },
            Expr::Load { ptr, .. } => match self.ty_of(ptr) {
                Ty::Ptr { elem, .. } => Ty::Prim(elem),
                t => panic!("bytecode lowering: load through non-pointer {t}"),
            },
            Expr::Cast(to, _) => Ty::Prim(*to),
        }
    }

    /// Lower `e` to a register: variables, literals, and builtins resolve to
    /// their home slots with no code; anything else evaluates into a fresh
    /// temporary. Callers release temporaries (via a mark taken *before*
    /// calling) once the consuming instruction has been emitted.
    fn operand(&mut self, e: &Expr) -> Reg {
        match e {
            Expr::Var(v) => *v as Reg,
            Expr::Lit(v) => self.const_reg(v),
            Expr::Builtin(b) => self.builtin_reg(*b),
            _ => {
                let dst = self.temps.alloc();
                self.expr(e, dst);
                dst
            }
        }
    }

    /// Emit code computing `e` into `dst`. Operand evaluation order matches
    /// the tree interpreter exactly (left to right, depth first), which keeps
    /// the pipeline-pairing charge sequence identical.
    fn expr(&mut self, e: &Expr, dst: Reg) {
        match e {
            Expr::Lit(v) => self.code.push(Op::Lit { dst, v: *v }),
            Expr::Var(v) => self.code.push(Op::Copy {
                dst,
                src: *v as Reg,
            }),
            Expr::Builtin(b) => {
                let src = self.builtin_reg(*b);
                self.code.push(Op::Copy { dst, src });
            }
            Expr::Un(UnOp::BitsOf, a) => {
                let m = self.temps.mark();
                let src = self.operand(a);
                self.code.push(Op::Bits { dst, src });
                self.temps.release(m);
            }
            Expr::Un(op, a) => {
                let m = self.temps.mark();
                let ty = prim(self.ty_of(a));
                let src = self.operand(a);
                self.code.push(Op::Un {
                    op: *op,
                    dst,
                    src,
                    ty,
                });
                self.temps.release(m);
            }
            Expr::Bin(op, a, b) => {
                let m = self.temps.mark();
                let ta = self.ty_of(a);
                let tb = self.ty_of(b);
                let ra = self.operand(a);
                let rb = self.operand(b);
                self.code.push(Op::Bin {
                    op: *op,
                    dst,
                    a: ra,
                    b: rb,
                    ta,
                    tb,
                });
                self.temps.release(m);
            }
            Expr::Call(f, args) => {
                let m = self.temps.mark();
                match args.as_slice() {
                    [a] => {
                        let ty = prim(self.ty_of(a));
                        let ra = self.operand(a);
                        self.code.push(Op::Call1 {
                            f: *f,
                            dst,
                            a: ra,
                            ty,
                        });
                    }
                    [a, b] => {
                        let ty = prim(self.ty_of(a));
                        let ra = self.operand(a);
                        let rb = self.operand(b);
                        self.code.push(Op::Call2 {
                            f: *f,
                            dst,
                            a: ra,
                            b: rb,
                            ty,
                        });
                    }
                    _ => panic!(
                        "bytecode lowering: math call with {} args (validator allows 1 or 2)",
                        args.len()
                    ),
                }
                self.temps.release(m);
            }
            Expr::Load { ptr, index } => {
                let m = self.temps.mark();
                let (space, elem) = match self.ty_of(ptr) {
                    Ty::Ptr { space, elem } => (space, elem),
                    t => panic!("bytecode lowering: load through non-pointer {t}"),
                };
                let idx_ty = prim(self.ty_of(index));
                let rp = self.operand(ptr);
                let ri = self.operand(index);
                self.code.push(Op::Load {
                    dst,
                    ptr: rp,
                    idx: ri,
                    space,
                    elem,
                    idx_ty,
                });
                self.temps.release(m);
            }
            Expr::Cast(to, a) => {
                let m = self.temps.mark();
                let from = prim(self.ty_of(a));
                let src = self.operand(a);
                self.code.push(Op::Cast {
                    to: *to,
                    from,
                    dst,
                    src,
                });
                self.temps.release(m);
            }
        }
    }

    fn patch_joins(&mut self, joins: &[usize], target: u32) {
        for &i in joins {
            match &mut self.code[i] {
                Op::EndArm { join_pc } | Op::Break { join_pc } | Op::Continue { join_pc } => {
                    *join_pc = target;
                }
                other => unreachable!("join patch on non-join op {other:?}"),
            }
        }
    }

    /// Lower a block, returning the code indices whose `join_pc` must be
    /// patched to the block's join point (the pc of the terminator-style
    /// instruction that follows the block in its enclosing construct).
    fn block(&mut self, b: &Block) -> Vec<usize> {
        let mut joins = Vec::new();
        for s in &b.0 {
            self.stmt(s, &mut joins);
        }
        joins
    }

    fn stmt(&mut self, s: &Stmt, joins: &mut Vec<usize>) {
        match s {
            Stmt::Assign { var, value } => self.expr(value, *var as Reg),
            Stmt::Store { ptr, index, value } => {
                let m = self.temps.mark();
                let (space, elem) = match self.ty_of(ptr) {
                    Ty::Ptr { space, elem } => (space, elem),
                    t => panic!("bytecode lowering: store through non-pointer {t}"),
                };
                let idx_ty = prim(self.ty_of(index));
                let rp = self.operand(ptr);
                let ri = self.operand(index);
                let rv = self.operand(value);
                self.code.push(Op::Store {
                    ptr: rp,
                    idx: ri,
                    val: rv,
                    space,
                    elem,
                    idx_ty,
                });
                self.temps.release(m);
            }
            Stmt::AtomicAdd { ptr, index, value } => {
                let m = self.temps.mark();
                let (space, elem) = match self.ty_of(ptr) {
                    Ty::Ptr { space, elem } => (space, elem),
                    t => panic!("bytecode lowering: atomic through non-pointer {t}"),
                };
                let idx_ty = prim(self.ty_of(index));
                let rp = self.operand(ptr);
                let ri = self.operand(index);
                let rv = self.operand(value);
                self.code.push(Op::AtomicAdd {
                    ptr: rp,
                    idx: ri,
                    val: rv,
                    space,
                    elem,
                    idx_ty,
                });
                self.temps.release(m);
            }
            Stmt::If {
                cond,
                then_blk,
                else_blk,
            } => {
                let m = self.temps.mark();
                let rc = self.operand(cond);
                let split = self.code.len();
                self.code.push(Op::IfSplit {
                    cond: rc,
                    else_pc: 0,
                    end_pc: 0,
                });
                self.temps.release(m);

                let then_joins = self.block(then_blk);
                let end_arm1 = self.code.len();
                self.code.push(Op::EndArm { join_pc: 0 });
                self.patch_joins(&then_joins, end_arm1 as u32);
                joins.push(end_arm1);

                let else_pc = self.here();
                let else_joins = self.block(else_blk);
                let end_arm2 = self.code.len();
                self.code.push(Op::EndArm { join_pc: 0 });
                self.patch_joins(&else_joins, end_arm2 as u32);
                joins.push(end_arm2);

                let end_pc = self.here();
                if let Op::IfSplit {
                    else_pc: ep,
                    end_pc: en,
                    ..
                } = &mut self.code[split]
                {
                    *ep = else_pc;
                    *en = end_pc;
                }
            }
            Stmt::For {
                id,
                var,
                init,
                cond,
                step,
                body,
            } => {
                // Iterator init runs *outside* the loop (not attributed to
                // loop cycles), exactly like the tree walker.
                self.expr(init, *var as Reg);
                self.code.push(Op::LoopEnter);
                let head = self.here();
                self.code.push(Op::LoopHead);
                let m = self.temps.mark();
                let rc = self.operand(cond);
                let test = self.code.len();
                self.code.push(Op::LoopTest {
                    cond: rc,
                    loop_id: *id,
                    iter: *var as Reg,
                    exit_pc: 0,
                });
                self.temps.release(m);

                let body_joins = self.block(body);
                let next = self.code.len();
                self.code.push(Op::LoopNext {
                    head_pc: head,
                    exit_pc: 0,
                    has_step: true,
                });
                self.patch_joins(&body_joins, next as u32);

                self.expr(step, *var as Reg);
                self.code.push(Op::Jump { pc: head });
                let exit = self.here();
                if let Op::LoopTest { exit_pc, .. } = &mut self.code[test] {
                    *exit_pc = exit;
                }
                if let Op::LoopNext { exit_pc, .. } = &mut self.code[next] {
                    *exit_pc = exit;
                }
            }
            Stmt::While { id, cond, body } => {
                self.code.push(Op::LoopEnter);
                let head = self.here();
                self.code.push(Op::LoopHead);
                let m = self.temps.mark();
                let rc = self.operand(cond);
                let test = self.code.len();
                self.code.push(Op::LoopTest {
                    cond: rc,
                    loop_id: *id,
                    iter: NO_REG,
                    exit_pc: 0,
                });
                self.temps.release(m);

                let body_joins = self.block(body);
                let next = self.code.len();
                self.code.push(Op::LoopNext {
                    head_pc: head,
                    exit_pc: 0,
                    has_step: false,
                });
                self.patch_joins(&body_joins, next as u32);
                let exit = self.here();
                if let Op::LoopTest { exit_pc, .. } = &mut self.code[test] {
                    *exit_pc = exit;
                }
                if let Op::LoopNext { exit_pc, .. } = &mut self.code[next] {
                    *exit_pc = exit;
                }
            }
            Stmt::Break => {
                joins.push(self.code.len());
                self.code.push(Op::Break { join_pc: 0 });
            }
            Stmt::Continue => {
                joins.push(self.code.len());
                self.code.push(Op::Continue { join_pc: 0 });
            }
            Stmt::SyncThreads => self.code.push(Op::Sync),
            Stmt::Hook(h) => {
                let m = self.temps.mark();
                let n = h.args.len() as u32;
                let base = self.temps.alloc_n(n);
                for (i, a) in h.args.iter().enumerate() {
                    self.expr(a, base + i as u32);
                }
                if n > 0 {
                    self.code.push(Op::ZeroInactive { base, n });
                }
                let hook = self.hooks.len() as u32;
                self.hooks.push(h.clone());
                self.hook_arg_tys
                    .push(h.args.iter().map(|a| self.ty_of(a)).collect());
                self.code.push(Op::Hook { hook, base, n });
                self.temps.release(m);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::KernelBuilder;
    use crate::validate::validate_kernel;

    fn saxpy_like() -> KernelDef {
        let mut b = KernelBuilder::new("saxpy");
        let y = b.param("y", Ty::global_ptr(PrimTy::F32));
        let x = b.param("x", Ty::global_ptr(PrimTy::F32));
        let n = b.param("n", Ty::I32);
        let tid = b.local("tid", Ty::I32);
        b.assign(tid, b.global_thread_id_x());
        b.if_(Expr::lt(Expr::var(tid), Expr::var(n)), |b| {
            let v = b.let_(
                "v",
                Ty::F32,
                Expr::add(
                    Expr::mul(Expr::f32(2.0), Expr::load(Expr::var(x), Expr::var(tid))),
                    Expr::load(Expr::var(y), Expr::var(tid)),
                ),
            );
            b.store(Expr::var(y), Expr::var(tid), Expr::var(v));
        });
        b.finish()
    }

    #[test]
    fn lowered_saxpy_is_well_formed() {
        let k = saxpy_like();
        validate_kernel(&k).unwrap();
        let l = lower_kernel(&k);
        l.check().unwrap();
        assert_eq!(l.n_params, 3);
        assert_eq!(l.vars.len(), k.vars.len());
        // 2.0 is the only literal; global_thread_id_x uses three builtins.
        assert_eq!(l.consts, vec![Value::F32(2.0)]);
        assert_eq!(l.builtins.len(), 3);
        assert!(matches!(l.code.last(), Some(Op::Halt)));
        // Disassembly renders every instruction.
        let d = l.to_string();
        assert!(d.contains("if"), "{d}");
        assert!(d.contains("store"), "{d}");
    }

    #[test]
    fn const_interning_is_bitwise() {
        let mut b = KernelBuilder::new("consts");
        let out = b.param("out", Ty::global_ptr(PrimTy::F32));
        let v = b.let_("v", Ty::F32, Expr::f32(0.0));
        b.assign(v, Expr::add(Expr::var(v), Expr::f32(-0.0)));
        b.assign(v, Expr::add(Expr::var(v), Expr::f32(0.0)));
        b.store(Expr::var(out), Expr::i32(0), Expr::var(v));
        let k = b.finish();
        let l = lower_kernel(&k);
        // 0.0 (interned once across the init and the add), -0.0, and the
        // store index 0i are distinct pool entries.
        assert_eq!(l.consts.len(), 3);
        assert!(l
            .consts
            .iter()
            .any(|c| matches!(c, Value::F32(f) if f.to_bits() == (-0.0f32).to_bits())));
    }

    #[test]
    fn loops_backpatch_targets() {
        let mut b = KernelBuilder::new("looped");
        let out = b.param("out", Ty::global_ptr(PrimTy::F32));
        let n = b.param("n", Ty::I32);
        let acc = b.let_("acc", Ty::F32, Expr::f32(0.0));
        let i = b.local("i", Ty::I32);
        b.for_range(i, Expr::var(n), |b| {
            b.assign(acc, Expr::add(Expr::var(acc), Expr::f32(1.0)));
            b.if_(Expr::lt(Expr::var(n), Expr::var(i)), |b| {
                b.stmt(Stmt::Break);
            });
        });
        b.store(Expr::var(out), Expr::i32(0), Expr::var(acc));
        let k = b.finish();
        let l = lower_kernel(&k);
        l.check().unwrap();
        let n_test = l
            .code
            .iter()
            .filter(|o| matches!(o, Op::LoopTest { .. }))
            .count();
        let n_break = l
            .code
            .iter()
            .filter(|o| matches!(o, Op::Break { .. }))
            .count();
        assert_eq!(n_test, 1);
        assert_eq!(n_break, 1);
        // The break's join must point at a terminator-style op.
        let join = l
            .code
            .iter()
            .find_map(|o| match o {
                Op::Break { join_pc } => Some(*join_pc),
                _ => None,
            })
            .unwrap();
        assert!(matches!(
            l.code[join as usize],
            Op::EndArm { .. } | Op::LoopNext { .. } | Op::Halt
        ));
    }

    #[test]
    fn temp_slots_are_reused() {
        let mut b = KernelBuilder::new("temps");
        let out = b.param("out", Ty::global_ptr(PrimTy::F32));
        let v = b.let_(
            "v",
            Ty::F32,
            Expr::add(
                Expr::mul(Expr::f32(1.5), Expr::f32(2.5)),
                Expr::mul(Expr::f32(3.5), Expr::f32(4.5)),
            ),
        );
        b.store(Expr::var(out), Expr::i32(0), Expr::var(v));
        let k = b.finish();
        let l = lower_kernel(&k);
        // Two sibling products: the second reuses the first's temp, so the
        // high-water mark stays at 2 (one per live product), not 4.
        assert!(l.n_temps <= 2, "n_temps = {}", l.n_temps);
    }
}
