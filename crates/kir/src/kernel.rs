//! Kernel definitions: variable tables, parameters, and loop renumbering.

use crate::expr::VarId;
use crate::stmt::{Block, LoopId, Stmt};
use crate::types::Ty;

/// A named variable slot in a kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VarDecl {
    /// Source-level name (unique within the kernel).
    pub name: String,
    /// Static type.
    pub ty: Ty,
    /// Whether the slot is a kernel parameter (parameters occupy the first
    /// `n_params` slots).
    pub is_param: bool,
}

/// A GPU kernel: the unit the Hauberk translator instruments and the
/// simulator launches.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelDef {
    /// Kernel name.
    pub name: String,
    /// Variable table; parameters first, then locals (including any
    /// translator-introduced variables such as the checksum or accumulators).
    pub vars: Vec<VarDecl>,
    /// Number of leading parameter slots in [`KernelDef::vars`].
    pub n_params: usize,
    /// Statically declared shared-memory usage in bytes (the resource the
    /// R-Scatter baseline doubles; §IX.A).
    pub shared_mem_bytes: u32,
    /// Kernel body.
    pub body: Block,
}

impl KernelDef {
    /// Iterate over the parameter declarations, in slot order.
    pub fn params(&self) -> impl Iterator<Item = &VarDecl> {
        self.vars[..self.n_params].iter()
    }

    /// Iterate over the local (non-parameter) declarations.
    pub fn locals(&self) -> impl Iterator<Item = &VarDecl> {
        self.vars[self.n_params..].iter()
    }

    /// Look up a variable slot by name.
    pub fn var_by_name(&self, name: &str) -> Option<VarId> {
        self.vars
            .iter()
            .position(|v| v.name == name)
            .map(|i| i as VarId)
    }

    /// Type of a variable slot.
    pub fn var_ty(&self, v: VarId) -> Ty {
        self.vars[v as usize].ty
    }

    /// Add a local variable slot (used by instrumentation passes; names are
    /// made unique by the caller).
    pub fn add_local(&mut self, name: impl Into<String>, ty: Ty) -> VarId {
        let id = self.vars.len() as VarId;
        self.vars.push(VarDecl {
            name: name.into(),
            ty,
            is_param: false,
        });
        id
    }

    /// Produce a fresh local name that does not collide with any existing
    /// variable, based on `stem`.
    pub fn fresh_name(&self, stem: &str) -> String {
        if self.var_by_name(stem).is_none() {
            return stem.to_string();
        }
        let mut i = 1;
        loop {
            let cand = format!("{stem}_{i}");
            if self.var_by_name(&cand).is_none() {
                return cand;
            }
            i += 1;
        }
    }

    /// Assign pre-order [`LoopId`]s to every `for`/`while` in the body.
    /// Must be called after any pass that adds or removes loops; the
    /// simulator and the analyses rely on these ids being consistent.
    pub fn renumber(&mut self) {
        let mut next: LoopId = 0;
        fn walk(block: &mut Block, next: &mut LoopId) {
            for s in &mut block.0 {
                match s {
                    Stmt::For { id, body, .. } => {
                        *id = *next;
                        *next += 1;
                        walk(body, next);
                    }
                    Stmt::While { id, body, .. } => {
                        *id = *next;
                        *next += 1;
                        walk(body, next);
                    }
                    Stmt::If {
                        then_blk, else_blk, ..
                    } => {
                        walk(then_blk, next);
                        walk(else_blk, next);
                    }
                    _ => {}
                }
            }
        }
        walk(&mut self.body, &mut next);
    }

    /// Number of loops in the kernel (after [`KernelDef::renumber`]).
    pub fn loop_count(&self) -> usize {
        let mut n = 0;
        fn walk(block: &Block, n: &mut usize) {
            for s in &block.0 {
                match s {
                    Stmt::For { body, .. } | Stmt::While { body, .. } => {
                        *n += 1;
                        walk(body, n);
                    }
                    Stmt::If {
                        then_blk, else_blk, ..
                    } => {
                        walk(then_blk, n);
                        walk(else_blk, n);
                    }
                    _ => {}
                }
            }
        }
        walk(&self.body, &mut n);
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::types::PrimTy;

    fn mk() -> KernelDef {
        KernelDef {
            name: "k".into(),
            vars: vec![
                VarDecl {
                    name: "p".into(),
                    ty: Ty::global_ptr(PrimTy::F32),
                    is_param: true,
                },
                VarDecl {
                    name: "i".into(),
                    ty: Ty::I32,
                    is_param: false,
                },
            ],
            n_params: 1,
            shared_mem_bytes: 0,
            body: Block(vec![Stmt::For {
                id: 99,
                var: 1,
                init: Expr::i32(0),
                cond: Expr::lt(Expr::var(1), Expr::i32(4)),
                step: Expr::add(Expr::var(1), Expr::i32(1)),
                body: Block(vec![Stmt::While {
                    id: 99,
                    cond: Expr::Lit(crate::value::Value::Bool(false)),
                    body: Block::new(),
                }]),
            }]),
        }
    }

    #[test]
    fn renumber_assigns_preorder_ids() {
        let mut k = mk();
        k.renumber();
        match &k.body.0[0] {
            Stmt::For { id, body, .. } => {
                assert_eq!(*id, 0);
                match &body.0[0] {
                    Stmt::While { id, .. } => assert_eq!(*id, 1),
                    _ => panic!(),
                }
            }
            _ => panic!(),
        }
        assert_eq!(k.loop_count(), 2);
    }

    #[test]
    fn fresh_name_avoids_collisions() {
        let k = mk();
        assert_eq!(k.fresh_name("chk"), "chk");
        assert_eq!(k.fresh_name("i"), "i_1");
    }

    #[test]
    fn params_and_locals_split() {
        let k = mk();
        assert_eq!(k.params().count(), 1);
        assert_eq!(k.locals().count(), 1);
        assert_eq!(k.var_by_name("i"), Some(1));
        assert_eq!(k.var_ty(0), Ty::global_ptr(PrimTy::F32));
    }
}
