#![warn(missing_docs)]

//! # hauberk-kir — Kernel Intermediate Representation
//!
//! A small, typed, structured AST for GPU kernels ("KIR"), standing in for the
//! CUDA C++ source code that the original Hauberk system instruments with its
//! CETUS-based source-to-source translator.
//!
//! The IR is deliberately *source-shaped* rather than SSA-shaped: Hauberk's
//! detector-derivation algorithms are defined over **virtual variables** (a
//! single definition of a named variable plus all of its uses until the next
//! definition), over structured loops (`for`/`while`), and over statement
//! positions such as "right after the definition" and "the immediate
//! post-dominator of the last uses". A structured AST makes these notions
//! exact and makes instrumentation a pure AST→AST rewrite, exactly mirroring
//! the paper's source mutation.
//!
//! The crate provides:
//!
//! * [`types`] / [`value`] — the scalar type system (`f32`, `i32`, `u32`,
//!   `bool`, and typed device pointers) and runtime values with bit-precise
//!   semantics (needed for bit-flip fault injection and XOR checksums).
//! * [`expr`] / [`stmt`] — expressions, statements, instrumentation hooks, and
//!   the [`kernel::KernelDef`] container.
//! * [`builder`] — an ergonomic builder for constructing kernels from Rust.
//! * [`parser`] / [`printer`] — a mini-CUDA concrete syntax that round-trips,
//!   used by examples and by the property-test suite.
//! * [`analysis`] — def/use information, loop enumeration, the cumulative
//!   backward dataflow dependency metric of the paper's Fig. 9,
//!   self-accumulator detection, and loop trip-count derivation.
//! * [`validate`] — a structural + type checker run before execution.
//!
//! ```
//! use hauberk_kir::parser::parse_kernel;
//!
//! let k = parse_kernel(
//!     r#"
//!     kernel saxpy(y: *global f32, x: *global f32, a: f32, n: i32) {
//!         let i: i32 = block_idx_x() * block_dim_x() + thread_idx_x();
//!         if (i < n) {
//!             let v: f32 = a * load(x, i) + load(y, i);
//!             store(y, i, v);
//!         }
//!     }
//!     "#,
//! )
//! .unwrap();
//! assert_eq!(k.name, "saxpy");
//! assert_eq!(k.params().count(), 4);
//! ```

pub mod analysis;
pub mod batch;
pub mod builder;
pub mod expr;
pub mod kernel;
pub mod lower;
pub mod parser;
pub mod printer;
pub mod stmt;
pub mod types;
pub mod validate;
pub mod value;
pub mod visit;

pub use analysis::{partition_sections, Section, SectionMap};
pub use builder::KernelBuilder;
pub use expr::{BinOp, BuiltinVar, Expr, MathFn, UnOp, VarId};
pub use kernel::{KernelDef, VarDecl};
pub use stmt::{Block, Hook, HookKind, HwComponent, Stmt};
pub use types::{DataClass, MemSpace, PrimTy, Ty};
pub use value::{PtrVal, Value};
