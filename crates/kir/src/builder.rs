//! Fluent construction of kernels from Rust.
//!
//! The benchmark crate uses this builder to express the Parboil-style kernels;
//! it keeps variable declaration and scoping honest (declare-before-use) while
//! staying close to how the CUDA sources read.
//!
//! ```
//! use hauberk_kir::builder::KernelBuilder;
//! use hauberk_kir::{BinOp, Expr, PrimTy, Stmt, Ty};
//!
//! let mut b = KernelBuilder::new("scale");
//! let out = b.param("out", Ty::global_ptr(PrimTy::F32));
//! let inp = b.param("inp", Ty::global_ptr(PrimTy::F32));
//! let n = b.param("n", Ty::I32);
//! let i = b.local("i", Ty::I32);
//! b.stmt(Stmt::assign(i, b.global_thread_id_x()));
//! b.if_(Expr::lt(Expr::var(i), Expr::var(n)), |b| {
//!     b.store(Expr::var(out), Expr::var(i),
//!             Expr::mul(Expr::f32(2.0), Expr::load(Expr::var(inp), Expr::var(i))));
//! });
//! let kernel = b.finish();
//! assert_eq!(kernel.loop_count(), 0);
//! ```

use crate::expr::{BuiltinVar, Expr, VarId};
use crate::kernel::{KernelDef, VarDecl};
use crate::stmt::{Block, Stmt};
use crate::types::Ty;

/// Builder for a [`KernelDef`].
pub struct KernelBuilder {
    name: String,
    vars: Vec<VarDecl>,
    n_params: usize,
    shared_mem_bytes: u32,
    // Stack of open blocks; the bottom entry is the kernel body.
    blocks: Vec<Vec<Stmt>>,
}

impl KernelBuilder {
    /// Start building a kernel called `name`.
    pub fn new(name: impl Into<String>) -> Self {
        KernelBuilder {
            name: name.into(),
            vars: Vec::new(),
            n_params: 0,
            shared_mem_bytes: 0,
            blocks: vec![Vec::new()],
        }
    }

    /// Declare a kernel parameter. Must precede all [`KernelBuilder::local`]
    /// calls.
    pub fn param(&mut self, name: impl Into<String>, ty: Ty) -> VarId {
        assert_eq!(
            self.n_params,
            self.vars.len(),
            "declare all params before locals"
        );
        let id = self.vars.len() as VarId;
        self.vars.push(VarDecl {
            name: name.into(),
            ty,
            is_param: true,
        });
        self.n_params += 1;
        id
    }

    /// Declare a local variable.
    pub fn local(&mut self, name: impl Into<String>, ty: Ty) -> VarId {
        let id = self.vars.len() as VarId;
        self.vars.push(VarDecl {
            name: name.into(),
            ty,
            is_param: false,
        });
        id
    }

    /// Declare the kernel's static shared-memory footprint in bytes.
    pub fn shared_mem(&mut self, bytes: u32) {
        self.shared_mem_bytes = bytes;
    }

    /// Append a raw statement to the open block.
    pub fn stmt(&mut self, s: Stmt) {
        self.blocks
            .last_mut()
            .expect("builder always has an open block")
            .push(s);
    }

    /// Append `var = value;`.
    pub fn assign(&mut self, var: VarId, value: Expr) {
        self.stmt(Stmt::Assign { var, value });
    }

    /// Declare a local and immediately assign it (the common `let x = e;`).
    pub fn let_(&mut self, name: impl Into<String>, ty: Ty, value: Expr) -> VarId {
        let v = self.local(name, ty);
        self.assign(v, value);
        v
    }

    /// Append `store(ptr, index, value);`.
    pub fn store(&mut self, ptr: Expr, index: Expr, value: Expr) {
        self.stmt(Stmt::Store { ptr, index, value });
    }

    /// Append `atomic_add(ptr, index, value);`.
    pub fn atomic_add(&mut self, ptr: Expr, index: Expr, value: Expr) {
        self.stmt(Stmt::AtomicAdd { ptr, index, value });
    }

    /// Append an `if` with only a then-arm.
    pub fn if_(&mut self, cond: Expr, then_f: impl FnOnce(&mut Self)) {
        self.blocks.push(Vec::new());
        then_f(self);
        let then_blk = Block(self.blocks.pop().expect("pushed above"));
        self.stmt(Stmt::If {
            cond,
            then_blk,
            else_blk: Block::new(),
        });
    }

    /// Append an `if`/`else`.
    pub fn if_else(
        &mut self,
        cond: Expr,
        then_f: impl FnOnce(&mut Self),
        else_f: impl FnOnce(&mut Self),
    ) {
        self.blocks.push(Vec::new());
        then_f(self);
        let then_blk = Block(self.blocks.pop().expect("pushed above"));
        self.blocks.push(Vec::new());
        else_f(self);
        let else_blk = Block(self.blocks.pop().expect("pushed above"));
        self.stmt(Stmt::If {
            cond,
            then_blk,
            else_blk,
        });
    }

    /// Append `for (var = init; cond; var = step) { body }`.
    pub fn for_(
        &mut self,
        var: VarId,
        init: Expr,
        cond: Expr,
        step: Expr,
        body_f: impl FnOnce(&mut Self),
    ) {
        self.blocks.push(Vec::new());
        body_f(self);
        let body = Block(self.blocks.pop().expect("pushed above"));
        self.stmt(Stmt::For {
            id: 0,
            var,
            init,
            cond,
            step,
            body,
        });
    }

    /// Append the canonical counting loop `for (var = 0; var < bound; var++)`.
    pub fn for_range(&mut self, var: VarId, bound: Expr, body_f: impl FnOnce(&mut Self)) {
        self.for_(
            var,
            Expr::i32(0),
            Expr::lt(Expr::var(var), bound),
            Expr::add(Expr::var(var), Expr::i32(1)),
            body_f,
        );
    }

    /// Append `while (cond) { body }`.
    pub fn while_(&mut self, cond: Expr, body_f: impl FnOnce(&mut Self)) {
        self.blocks.push(Vec::new());
        body_f(self);
        let body = Block(self.blocks.pop().expect("pushed above"));
        self.stmt(Stmt::While { id: 0, cond, body });
    }

    /// Append `__syncthreads();`.
    pub fn sync(&mut self) {
        self.stmt(Stmt::SyncThreads);
    }

    /// The expression `blockIdx.x * blockDim.x + threadIdx.x`.
    pub fn global_thread_id_x(&self) -> Expr {
        Expr::add(
            Expr::mul(
                Expr::Builtin(BuiltinVar::BlockIdxX),
                Expr::Builtin(BuiltinVar::BlockDimX),
            ),
            Expr::Builtin(BuiltinVar::ThreadIdxX),
        )
    }

    /// The expression `blockIdx.y * blockDim.y + threadIdx.y`.
    pub fn global_thread_id_y(&self) -> Expr {
        Expr::add(
            Expr::mul(
                Expr::Builtin(BuiltinVar::BlockIdxY),
                Expr::Builtin(BuiltinVar::BlockDimY),
            ),
            Expr::Builtin(BuiltinVar::ThreadIdxY),
        )
    }

    /// Finish the kernel, assigning loop ids.
    pub fn finish(mut self) -> KernelDef {
        assert_eq!(self.blocks.len(), 1, "unbalanced block nesting");
        let mut k = KernelDef {
            name: self.name,
            vars: self.vars,
            n_params: self.n_params,
            shared_mem_bytes: self.shared_mem_bytes,
            body: Block(self.blocks.pop().expect("checked above")),
        };
        k.renumber();
        k
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::PrimTy;

    #[test]
    fn builds_nested_structure() {
        let mut b = KernelBuilder::new("t");
        let n = b.param("n", Ty::I32);
        let i = b.local("i", Ty::I32);
        let acc = b.local("acc", Ty::F32);
        b.assign(acc, Expr::f32(0.0));
        b.for_range(i, Expr::var(n), |b| {
            b.if_(Expr::lt(Expr::var(i), Expr::i32(10)), |b| {
                b.assign(acc, Expr::add(Expr::var(acc), Expr::f32(1.0)))
            });
        });
        let k = b.finish();
        assert_eq!(k.loop_count(), 1);
        assert_eq!(k.n_params, 1);
        assert_eq!(k.body.len(), 2);
    }

    #[test]
    #[should_panic(expected = "declare all params before locals")]
    fn params_after_locals_panic() {
        let mut b = KernelBuilder::new("t");
        b.local("x", Ty::I32);
        b.param("p", Ty::global_ptr(PrimTy::F32));
    }

    #[test]
    fn global_tid_expression_shape() {
        let b = KernelBuilder::new("t");
        let e = b.global_thread_id_x();
        assert_eq!(e.op_count(), 2); // mul + add
    }
}
