//! Runtime values with bit-precise semantics.
//!
//! Fault injection and the XOR-checksum detector both operate on the **bit
//! pattern** of a value, so every value exposes a lossless 32-bit encoding
//! ([`Value::to_bits`] / [`Value::from_bits`]) and an XOR-mask mutation
//! ([`Value::xor_bits`]) that is exactly the paper's single/multi-bit error
//! model (§VII: "the fault injection uses, for example, a logical XOR
//! operation").

use crate::types::{DataClass, MemSpace, PrimTy, Ty};
use std::fmt;

/// A device pointer value: a byte address into one memory space.
///
/// Addresses are 32-bit, like the GT200-generation devices the paper
/// evaluates; a bit-flip in a pointer therefore perturbs a 32-bit address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PtrVal {
    /// Memory space this pointer refers to.
    pub space: MemSpace,
    /// Byte address within the space.
    pub addr: u32,
    /// Element type pointed to (drives load/store reinterpretation).
    pub elem: PrimTy,
}

impl PtrVal {
    /// A null global pointer to `elem` data.
    pub const fn null(elem: PrimTy) -> Self {
        PtrVal {
            space: MemSpace::Global,
            addr: 0,
            elem,
        }
    }

    /// The address `self.addr + index * elem_size` (wrapping, like device
    /// address arithmetic).
    pub fn offset_elems(self, index: i64) -> Self {
        let delta = index.wrapping_mul(self.elem.size_bytes() as i64);
        PtrVal {
            addr: (self.addr as i64).wrapping_add(delta) as u32,
            ..self
        }
    }
}

/// A runtime scalar value.
///
/// `f32` payloads are compared **bitwise** (via [`Value::to_bits`]) in
/// `PartialEq`, so `NaN == NaN` holds for identical bit patterns and
/// `-0.0 != +0.0`. This is deliberate: golden-run comparison and duplication
/// checks in a fault-injection study must be deterministic and bit-exact.
#[derive(Debug, Clone, Copy)]
pub enum Value {
    /// Single-precision float.
    F32(f32),
    /// Signed 32-bit integer.
    I32(i32),
    /// Unsigned 32-bit integer.
    U32(u32),
    /// Boolean.
    Bool(bool),
    /// Typed device pointer.
    Ptr(PtrVal),
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Ptr(a), Value::Ptr(b)) => a == b,
            (a, b) => {
                std::mem::discriminant(a) == std::mem::discriminant(b) && a.to_bits() == b.to_bits()
            }
        }
    }
}

impl Eq for Value {}

impl Value {
    /// The static type of this value. Pointer element/space information is
    /// preserved.
    pub fn ty(&self) -> Ty {
        match self {
            Value::F32(_) => Ty::F32,
            Value::I32(_) => Ty::I32,
            Value::U32(_) => Ty::U32,
            Value::Bool(_) => Ty::BOOL,
            Value::Ptr(p) => Ty::Ptr {
                space: p.space,
                elem: p.elem,
            },
        }
    }

    /// The paper's pointer/integer/FP classification of this value.
    pub fn data_class(&self) -> DataClass {
        self.ty().data_class()
    }

    /// The zero value of a type (device registers start zeroed in the
    /// simulator, like freshly allocated CUDA local state in practice).
    pub fn zero_of(ty: Ty) -> Value {
        match ty {
            Ty::Prim(PrimTy::F32) => Value::F32(0.0),
            Ty::Prim(PrimTy::I32) => Value::I32(0),
            Ty::Prim(PrimTy::U32) => Value::U32(0),
            Ty::Prim(PrimTy::Bool) => Value::Bool(false),
            Ty::Ptr { space, elem } => Value::Ptr(PtrVal {
                space,
                addr: 0,
                elem,
            }),
        }
    }

    /// Lossless 32-bit encoding of the value (IEEE bits for `f32`, two's
    /// complement for `i32`, `0`/`1` for `bool`, the address for pointers).
    pub fn to_bits(&self) -> u32 {
        match self {
            Value::F32(v) => v.to_bits(),
            Value::I32(v) => *v as u32,
            Value::U32(v) => *v,
            Value::Bool(v) => *v as u32,
            Value::Ptr(p) => p.addr,
        }
    }

    /// Rebuild a value of primitive type `ty` from its 32-bit encoding.
    pub fn from_bits(ty: PrimTy, bits: u32) -> Value {
        match ty {
            PrimTy::F32 => Value::F32(f32::from_bits(bits)),
            PrimTy::I32 => Value::I32(bits as i32),
            PrimTy::U32 => Value::U32(bits),
            PrimTy::Bool => Value::Bool(bits & 1 != 0),
        }
    }

    /// Apply an XOR error mask to the value's bit pattern, preserving its
    /// type. This is the architecture-state corruption primitive of the
    /// SWIFI toolset (§VII).
    #[must_use]
    pub fn xor_bits(&self, mask: u32) -> Value {
        match self {
            Value::F32(v) => Value::F32(f32::from_bits(v.to_bits() ^ mask)),
            Value::I32(v) => Value::I32(((*v as u32) ^ mask) as i32),
            Value::U32(v) => Value::U32(v ^ mask),
            // A corrupted boolean flips if any masked bit covers bit 0;
            // higher bits of a register holding a bool are ignored by uses.
            Value::Bool(v) => Value::Bool(((*v as u32) ^ mask) & 1 != 0),
            Value::Ptr(p) => Value::Ptr(PtrVal {
                addr: p.addr ^ mask,
                ..*p
            }),
        }
    }

    /// Interpret as `f32`, if the value is one.
    pub fn as_f32(&self) -> Option<f32> {
        match self {
            Value::F32(v) => Some(*v),
            _ => None,
        }
    }

    /// Interpret as `i32`, if the value is one.
    pub fn as_i32(&self) -> Option<i32> {
        match self {
            Value::I32(v) => Some(*v),
            _ => None,
        }
    }

    /// Interpret as `u32`, if the value is one.
    pub fn as_u32(&self) -> Option<u32> {
        match self {
            Value::U32(v) => Some(*v),
            _ => None,
        }
    }

    /// Interpret as `bool`, if the value is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(v) => Some(*v),
            _ => None,
        }
    }

    /// Interpret as a pointer, if the value is one.
    pub fn as_ptr(&self) -> Option<PtrVal> {
        match self {
            Value::Ptr(p) => Some(*p),
            _ => None,
        }
    }

    /// Numeric value as `f64` for statistics/accumulation purposes
    /// (pointers yield their address).
    pub fn as_numeric_f64(&self) -> f64 {
        match self {
            Value::F32(v) => *v as f64,
            Value::I32(v) => *v as f64,
            Value::U32(v) => *v as f64,
            Value::Bool(v) => *v as u32 as f64,
            Value::Ptr(p) => p.addr as f64,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::F32(v) => {
                // Always keep a decimal point so the printer/parser round-trips.
                if v.fract() == 0.0 && v.is_finite() && v.abs() < 1e16 {
                    write!(f, "{v:.1}")
                } else {
                    write!(f, "{v:?}")
                }
            }
            Value::I32(v) => write!(f, "{v}"),
            Value::U32(v) => write!(f, "{v}u"),
            Value::Bool(v) => write!(f, "{v}"),
            Value::Ptr(p) => write!(f, "ptr({}, {:#x})", p.space, p.addr),
        }
    }
}

impl From<f32> for Value {
    fn from(v: f32) -> Self {
        Value::F32(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::I32(v)
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::U32(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_round_trip_all_prims() {
        for (ty, v) in [
            (PrimTy::F32, Value::F32(-3.25)),
            (PrimTy::I32, Value::I32(-7)),
            (PrimTy::U32, Value::U32(0xDEAD_BEEF)),
            (PrimTy::Bool, Value::Bool(true)),
        ] {
            assert_eq!(Value::from_bits(ty, v.to_bits()), v);
        }
    }

    #[test]
    fn xor_is_involutive() {
        let masks = [1u32, 0x8000_0000, 0x0F0F_0F0F, u32::MAX];
        let vals = [
            Value::F32(1.5),
            Value::I32(-42),
            Value::U32(7),
            Value::Ptr(PtrVal {
                space: MemSpace::Global,
                addr: 0x100,
                elem: PrimTy::F32,
            }),
        ];
        for v in vals {
            for m in masks {
                assert_eq!(v.xor_bits(m).xor_bits(m), v, "v={v:?} m={m:#x}");
            }
        }
    }

    #[test]
    fn nan_bit_patterns_compare_equal() {
        let nan = f32::from_bits(0x7FC0_0001);
        assert_eq!(Value::F32(nan), Value::F32(nan));
        assert_ne!(Value::F32(0.0), Value::F32(-0.0));
    }

    #[test]
    fn xor_high_bit_of_f32_flips_sign() {
        let v = Value::F32(2.0).xor_bits(0x8000_0000);
        assert_eq!(v, Value::F32(-2.0));
    }

    #[test]
    fn bool_xor_only_observes_bit0() {
        assert_eq!(Value::Bool(false).xor_bits(0b10), Value::Bool(false));
        assert_eq!(Value::Bool(false).xor_bits(0b11), Value::Bool(true));
    }

    #[test]
    fn ptr_offset_elems() {
        let p = PtrVal {
            space: MemSpace::Global,
            addr: 16,
            elem: PrimTy::F32,
        };
        assert_eq!(p.offset_elems(3).addr, 28);
        assert_eq!(p.offset_elems(-2).addr, 8);
    }

    #[test]
    fn zero_values_match_types() {
        assert_eq!(Value::zero_of(Ty::F32), Value::F32(0.0));
        let z = Value::zero_of(Ty::global_ptr(PrimTy::I32));
        assert_eq!(z.as_ptr().unwrap().addr, 0);
        assert_eq!(z.ty(), Ty::global_ptr(PrimTy::I32));
    }

    #[test]
    fn type_mismatched_values_never_equal() {
        // i32 0 and u32 0 share bit patterns but differ in type.
        assert_ne!(Value::I32(0), Value::U32(0));
    }
}
