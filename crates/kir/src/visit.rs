//! Traversal and rewriting helpers over the structured AST.
//!
//! Instrumentation passes are expressed with [`rewrite_stmts`]: each original
//! statement may be replaced by a sequence of statements (e.g. an assignment
//! followed by a fault-injection hook, or a definition followed by the
//! checksum update / duplicate / compare triplet of the non-loop detector).

use crate::expr::Expr;
use crate::stmt::{Block, Stmt};

/// Visit every statement recursively, pre-order.
pub fn for_each_stmt<'a>(block: &'a Block, f: &mut impl FnMut(&'a Stmt)) {
    for s in &block.0 {
        f(s);
        match s {
            Stmt::If {
                then_blk, else_blk, ..
            } => {
                for_each_stmt(then_blk, f);
                for_each_stmt(else_blk, f);
            }
            Stmt::For { body, .. } | Stmt::While { body, .. } => for_each_stmt(body, f),
            _ => {}
        }
    }
}

/// Visit every expression evaluated anywhere in the block (directly by
/// statements, including loop headers), pre-order within each statement.
pub fn for_each_expr<'a>(block: &'a Block, f: &mut impl FnMut(&'a Expr)) {
    for_each_stmt(block, &mut |s| {
        for e in s.direct_exprs() {
            e.walk(f);
        }
    });
}

/// Rewrite a block bottom-up: nested blocks are rewritten first, then `f`
/// maps each statement to its replacement sequence.
///
/// `f` receives the statement (with already-rewritten children) and must
/// return the statements that replace it — commonly `vec![stmt]` (keep),
/// `vec![stmt, hook]` (instrument after), or a longer expansion.
pub fn rewrite_stmts(block: Block, f: &mut impl FnMut(Stmt) -> Vec<Stmt>) -> Block {
    let mut out = Vec::with_capacity(block.0.len());
    for s in block.0 {
        let s = match s {
            Stmt::If {
                cond,
                then_blk,
                else_blk,
            } => Stmt::If {
                cond,
                then_blk: rewrite_stmts(then_blk, f),
                else_blk: rewrite_stmts(else_blk, f),
            },
            Stmt::For {
                id,
                var,
                init,
                cond,
                step,
                body,
            } => Stmt::For {
                id,
                var,
                init,
                cond,
                step,
                body: rewrite_stmts(body, f),
            },
            Stmt::While { id, cond, body } => Stmt::While {
                id,
                cond,
                body: rewrite_stmts(body, f),
            },
            other => other,
        };
        out.extend(f(s));
    }
    Block(out)
}

/// Rewrite only the **top level** of a block (no recursion); useful when a
/// pass must treat statements inside loops differently from statements
/// outside loops (the non-loop vs. loop detector split).
pub fn rewrite_top_level(block: Block, f: &mut impl FnMut(Stmt) -> Vec<Stmt>) -> Block {
    let mut out = Vec::with_capacity(block.0.len());
    for s in block.0 {
        out.extend(f(s));
    }
    Block(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;

    fn sample() -> Block {
        Block(vec![
            Stmt::assign(0, Expr::i32(1)),
            Stmt::For {
                id: 0,
                var: 1,
                init: Expr::i32(0),
                cond: Expr::lt(Expr::var(1), Expr::i32(3)),
                step: Expr::add(Expr::var(1), Expr::i32(1)),
                body: Block(vec![Stmt::assign(2, Expr::var(0))]),
            },
        ])
    }

    #[test]
    fn for_each_stmt_sees_nested() {
        let b = sample();
        let mut n = 0;
        for_each_stmt(&b, &mut |_| n += 1);
        assert_eq!(n, 3);
    }

    #[test]
    fn for_each_expr_includes_headers() {
        let b = sample();
        let mut lits = 0;
        for_each_expr(&b, &mut |e| {
            if matches!(e, Expr::Lit(_)) {
                lits += 1;
            }
        });
        // 1 (assign) + 0-init + 3-bound + 1-step
        assert_eq!(lits, 4);
    }

    #[test]
    fn rewrite_duplicates_assignments_everywhere() {
        let b = sample();
        let out = rewrite_stmts(b, &mut |s| {
            if matches!(s, Stmt::Assign { .. }) {
                vec![s.clone(), s]
            } else {
                vec![s]
            }
        });
        assert_eq!(out.0.len(), 3); // assign, assign, for
        match &out.0[2] {
            Stmt::For { body, .. } => assert_eq!(body.0.len(), 2),
            _ => panic!(),
        }
    }

    #[test]
    fn rewrite_top_level_does_not_recurse() {
        let b = sample();
        let out = rewrite_top_level(b, &mut |s| {
            if matches!(s, Stmt::Assign { .. }) {
                vec![s.clone(), s]
            } else {
                vec![s]
            }
        });
        assert_eq!(out.0.len(), 3);
        match &out.0[2] {
            Stmt::For { body, .. } => assert_eq!(body.0.len(), 1),
            _ => panic!(),
        }
    }
}
