//! Structural and type validation of kernels.
//!
//! Run before execution or instrumentation: catches ill-typed expressions,
//! out-of-range variable ids, `break`/`continue` outside loops, and stores
//! through non-pointers. The simulator assumes validated kernels.

use crate::expr::{BinOp, Expr, MathFn, UnOp, VarId};
use crate::kernel::KernelDef;
use crate::stmt::{Block, Stmt};
use crate::types::{PrimTy, Ty};
use std::fmt;

/// A validation error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidateError {
    /// Human-readable description, including the kernel name.
    pub msg: String,
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "validation error: {}", self.msg)
    }
}

impl std::error::Error for ValidateError {}

/// Validate a kernel; returns the first problem found.
pub fn validate_kernel(k: &KernelDef) -> Result<(), ValidateError> {
    let v = Validator { k };
    v.block(&k.body, 0)
}

struct Validator<'a> {
    k: &'a KernelDef,
}

impl Validator<'_> {
    fn err<T>(&self, msg: impl fmt::Display) -> Result<T, ValidateError> {
        Err(ValidateError {
            msg: format!("kernel `{}`: {msg}", self.k.name),
        })
    }

    fn var_ty(&self, v: VarId) -> Result<Ty, ValidateError> {
        self.k
            .vars
            .get(v as usize)
            .map(|d| d.ty)
            .ok_or(ValidateError {
                msg: format!("kernel `{}`: variable id {v} out of range", self.k.name),
            })
    }

    fn block(&self, b: &Block, loop_depth: usize) -> Result<(), ValidateError> {
        for s in &b.0 {
            self.stmt(s, loop_depth)?;
        }
        Ok(())
    }

    fn stmt(&self, s: &Stmt, loop_depth: usize) -> Result<(), ValidateError> {
        match s {
            Stmt::Assign { var, value } => {
                let vt = self.var_ty(*var)?;
                let et = self.expr(value)?;
                if vt != et {
                    return self.err(format!(
                        "assignment type mismatch: `{}`: {vt} = {et}",
                        self.k.vars[*var as usize].name
                    ));
                }
                Ok(())
            }
            Stmt::Store { ptr, index, value } | Stmt::AtomicAdd { ptr, index, value } => {
                let pt = self.expr(ptr)?;
                let Ty::Ptr { elem, .. } = pt else {
                    return self.err(format!("store through non-pointer type {pt}"));
                };
                let it = self.expr(index)?;
                if !matches!(it, Ty::Prim(p) if p.is_integer()) {
                    return self.err(format!("store index must be integer, got {it}"));
                }
                let vt = self.expr(value)?;
                if vt != Ty::Prim(elem) {
                    return self.err(format!("store value type {vt} != element type {elem}"));
                }
                if matches!(s, Stmt::AtomicAdd { .. }) && elem == PrimTy::Bool {
                    return self.err("atomic_add on bool elements");
                }
                Ok(())
            }
            Stmt::If {
                cond,
                then_blk,
                else_blk,
            } => {
                let ct = self.expr(cond)?;
                if ct != Ty::BOOL {
                    return self.err(format!("if condition must be bool, got {ct}"));
                }
                self.block(then_blk, loop_depth)?;
                self.block(else_blk, loop_depth)
            }
            Stmt::For {
                var,
                init,
                cond,
                step,
                body,
                ..
            } => {
                let vt = self.var_ty(*var)?;
                if !matches!(vt, Ty::Prim(p) if p.is_integer()) {
                    return self.err(format!("for iterator must be integer, got {vt}"));
                }
                if self.expr(init)? != vt {
                    return self.err("for init type mismatch");
                }
                if self.expr(cond)? != Ty::BOOL {
                    return self.err("for condition must be bool");
                }
                if self.expr(step)? != vt {
                    return self.err("for step type mismatch");
                }
                self.block(body, loop_depth + 1)
            }
            Stmt::While { cond, body, .. } => {
                if self.expr(cond)? != Ty::BOOL {
                    return self.err("while condition must be bool");
                }
                self.block(body, loop_depth + 1)
            }
            Stmt::Break | Stmt::Continue => {
                if loop_depth == 0 {
                    return self.err("break/continue outside a loop");
                }
                Ok(())
            }
            Stmt::SyncThreads => Ok(()),
            Stmt::Hook(h) => {
                for a in &h.args {
                    self.expr(a)?;
                }
                if let Some(t) = h.target {
                    self.var_ty(t)?;
                }
                Ok(())
            }
        }
    }

    fn expr(&self, e: &Expr) -> Result<Ty, ValidateError> {
        match e {
            Expr::Lit(v) => Ok(v.ty()),
            Expr::Var(v) => self.var_ty(*v),
            Expr::Builtin(b) => Ok(b.ty()),
            Expr::Un(op, inner) => {
                let t = self.expr(inner)?;
                match op {
                    UnOp::Neg => match t {
                        Ty::Prim(PrimTy::F32) | Ty::Prim(PrimTy::I32) => Ok(t),
                        _ => self.err(format!("cannot negate {t}")),
                    },
                    UnOp::Not => {
                        if t == Ty::BOOL {
                            Ok(t)
                        } else {
                            self.err(format!("logical not on {t}"))
                        }
                    }
                    UnOp::BitNot => match t {
                        Ty::Prim(PrimTy::I32) | Ty::Prim(PrimTy::U32) => Ok(t),
                        _ => self.err(format!("bitwise not on {t}")),
                    },
                    // BitsOf accepts any 32-bit value (that is its purpose).
                    UnOp::BitsOf => Ok(Ty::U32),
                }
            }
            Expr::Bin(op, a, b) => {
                let ta = self.expr(a)?;
                let tb = self.expr(b)?;
                self.bin_ty(*op, ta, tb)
            }
            Expr::Call(m, args) => {
                if args.len() != m.arity() {
                    return self.err(format!("`{}` arity mismatch", m.spelling()));
                }
                let t0 = self.expr(&args[0])?;
                match m {
                    MathFn::Min | MathFn::Max => {
                        let t1 = self.expr(&args[1])?;
                        if t0 != t1 {
                            return self.err(format!("min/max operand mismatch {t0} vs {t1}"));
                        }
                        match t0 {
                            Ty::Prim(p) if p != PrimTy::Bool => Ok(t0),
                            _ => self.err(format!("min/max on {t0}")),
                        }
                    }
                    MathFn::Abs => match t0 {
                        Ty::Prim(PrimTy::F32) | Ty::Prim(PrimTy::I32) => Ok(t0),
                        _ => self.err(format!("abs on {t0}")),
                    },
                    _ => {
                        if t0 != Ty::F32 {
                            return self.err(format!("`{}` requires f32, got {t0}", m.spelling()));
                        }
                        Ok(Ty::F32)
                    }
                }
            }
            Expr::Load { ptr, index } => {
                let pt = self.expr(ptr)?;
                let Ty::Ptr { elem, .. } = pt else {
                    return self.err(format!("load through non-pointer type {pt}"));
                };
                let it = self.expr(index)?;
                if !matches!(it, Ty::Prim(p) if p.is_integer()) {
                    return self.err(format!("load index must be integer, got {it}"));
                }
                Ok(Ty::Prim(elem))
            }
            Expr::Cast(to, inner) => {
                let t = self.expr(inner)?;
                match t {
                    Ty::Prim(_) => Ok(Ty::Prim(*to)),
                    Ty::Ptr { .. } => self.err("cannot cast a pointer"),
                }
            }
        }
    }

    fn bin_ty(&self, op: BinOp, ta: Ty, tb: Ty) -> Result<Ty, ValidateError> {
        use BinOp::*;
        // Pointer arithmetic: ptr ± int -> ptr; ptr - ptr not supported.
        if let (Ty::Ptr { .. }, Ty::Prim(p)) = (ta, tb) {
            if matches!(op, Add | Sub) && p.is_integer() && p != PrimTy::Bool {
                return Ok(ta);
            }
        }
        if op.is_logical() {
            if ta == Ty::BOOL && tb == Ty::BOOL {
                return Ok(Ty::BOOL);
            }
            return self.err(format!("logical op on {ta}, {tb}"));
        }
        if op.is_comparison() {
            if ta == tb && !matches!(ta, Ty::Ptr { .. }) {
                return Ok(Ty::BOOL);
            }
            if ta == tb {
                // Pointer equality only.
                if matches!(op, Eq | Ne) {
                    return Ok(Ty::BOOL);
                }
                return self.err("ordered comparison of pointers");
            }
            return self.err(format!("comparison of {ta} and {tb}"));
        }
        match op {
            Add | Sub | Mul | Div => match (ta, tb) {
                (Ty::Prim(a), Ty::Prim(b)) if a == b && a != PrimTy::Bool => Ok(ta),
                _ => self.err(format!("arithmetic on {ta}, {tb}")),
            },
            Rem | And | Or | Xor | Shl | Shr => match (ta, tb) {
                (Ty::Prim(a), Ty::Prim(b)) if a == b && a.is_integer() && a != PrimTy::Bool => {
                    Ok(ta)
                }
                _ => self.err(format!("integer op on {ta}, {tb}")),
            },
            _ => unreachable!("comparison/logical handled above"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_kernel;

    fn check(src: &str) -> Result<(), ValidateError> {
        validate_kernel(&parse_kernel(src).unwrap())
    }

    #[test]
    fn accepts_well_typed_kernel() {
        check(
            r#"kernel k(p: *global f32, n: i32) {
                let acc: f32 = 0.0;
                for (i = 0; i < n; i = i + 1) {
                    acc = acc + load(p, i);
                }
                store(p, 0, acc);
            }"#,
        )
        .unwrap();
    }

    #[test]
    fn rejects_type_mismatched_assignment() {
        let e = check("kernel k() { let x: f32 = 1; }").unwrap_err();
        assert!(e.msg.contains("mismatch"), "{e}");
    }

    #[test]
    fn rejects_break_outside_loop() {
        let e = check("kernel k() { break; }").unwrap_err();
        assert!(e.msg.contains("outside"));
    }

    #[test]
    fn rejects_store_through_scalar() {
        let e = check("kernel k(x: f32) { store(x, 0, 1.0); }").unwrap_err();
        assert!(e.msg.contains("non-pointer"));
    }

    #[test]
    fn rejects_non_bool_condition() {
        let e = check("kernel k(n: i32) { if (n) { } }").unwrap_err();
        assert!(e.msg.contains("bool"));
    }

    #[test]
    fn pointer_arithmetic_is_typed() {
        check("kernel k(p: *global f32) { let q: *global f32 = p + 4; }").unwrap();
        let e = check("kernel k(p: *global f32) { let q: *global f32 = p * 2; }").unwrap_err();
        assert!(e.msg.contains("arithmetic"));
    }

    #[test]
    fn float_store_into_int_buffer_rejected() {
        let e = check("kernel k(p: *global i32) { store(p, 0, 1.5); }").unwrap_err();
        assert!(e.msg.contains("element type"));
    }

    #[test]
    fn math_fn_type_rules() {
        check("kernel k(x: f32) { let y: f32 = sqrt(x); }").unwrap();
        let e = check("kernel k(x: i32) { let y: i32 = sqrt(x); }");
        assert!(e.is_err());
        check("kernel k(x: i32) { let y: i32 = max(x, 3); }").unwrap();
    }

    #[test]
    fn bitsof_accepts_everything() {
        check("kernel k(p: *global f32, x: f32) { let c: u32 = bits(p) ^ bits(x); }").unwrap();
    }
}
