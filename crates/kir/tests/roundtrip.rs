//! Property tests of the mini-CUDA surface syntax: arbitrary type-correct
//! expressions and statements must survive print → parse unchanged, and the
//! validator must accept everything the generator produces.

use hauberk_kir::builder::KernelBuilder;
use hauberk_kir::parser::parse_kernel;
use hauberk_kir::printer::print_kernel;
use hauberk_kir::validate::validate_kernel;
use hauberk_kir::{BinOp, Expr, MathFn, PrimTy, Ty, UnOp};
use proptest::prelude::*;

/// Negation that folds literals (matching the parser's canonical form).
fn neg(e: Expr) -> Expr {
    match e {
        Expr::Lit(hauberk_kir::Value::F32(v)) => Expr::f32(-v),
        Expr::Lit(hauberk_kir::Value::I32(v)) => Expr::i32(v.wrapping_neg()),
        other => Expr::Un(UnOp::Neg, Box::new(other)),
    }
}

/// Strategy for type-correct `f32` expressions over variables `f0..f3`
/// (ids 3..7 in the generated kernel below) and loads from `x` (id 0).
fn f32_expr(depth: u32) -> BoxedStrategy<Expr> {
    let leaf = prop_oneof![
        (0u8..4).prop_map(|i| Expr::var(3 + i as u32)),
        // Finite, printable literals.
        (-1000i32..1000).prop_map(|v| Expr::f32(v as f32 / 8.0)),
        (0u8..8).prop_map(|i| Expr::load(Expr::var(0), Expr::i32(i as i32))),
        Just(Expr::Cast(PrimTy::F32, Box::new(Expr::var(7)))),
    ];
    leaf.prop_recursive(depth, 24, 3, |inner| {
        prop_oneof![
            (
                inner.clone(),
                inner.clone(),
                prop_oneof![
                    Just(BinOp::Add),
                    Just(BinOp::Sub),
                    Just(BinOp::Mul),
                    Just(BinOp::Div),
                ]
            )
                .prop_map(|(a, b, op)| Expr::bin(op, a, b)),
            inner.clone().prop_map(neg),
            inner
                .clone()
                .prop_map(|e| Expr::call(MathFn::Sqrt, vec![e])),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::call(MathFn::Max, vec![a, b])),
        ]
    })
    .boxed()
}

/// Strategy for type-correct `i32` expressions over `i0` (id 7) and the
/// iterator-free constants.
fn i32_expr(depth: u32) -> BoxedStrategy<Expr> {
    let leaf = prop_oneof![Just(Expr::var(7)), (-100i32..100).prop_map(Expr::i32),];
    leaf.prop_recursive(depth, 16, 2, |inner| {
        prop_oneof![
            (
                inner.clone(),
                inner.clone(),
                prop_oneof![
                    Just(BinOp::Add),
                    Just(BinOp::Sub),
                    Just(BinOp::Mul),
                    Just(BinOp::And),
                    Just(BinOp::Or),
                    Just(BinOp::Xor),
                ]
            )
                .prop_map(|(a, b, op)| Expr::bin(op, a, b)),
            inner
                .clone()
                .prop_map(|e| Expr::Un(UnOp::BitNot, Box::new(e))),
        ]
    })
    .boxed()
}

/// Wrap generated expressions in a kernel with a known variable layout:
/// params x(0), out(1), n(2); locals f0..f3 (3..6), i0 (7).
fn kernel_with(fs: Vec<Expr>, is: Vec<Expr>) -> hauberk_kir::KernelDef {
    let mut b = KernelBuilder::new("gen");
    let _x = b.param("x", Ty::global_ptr(PrimTy::F32));
    let out = b.param("out", Ty::global_ptr(PrimTy::F32));
    let _n = b.param("n", Ty::I32);
    // Declaration order must match first-assignment order so the printed
    // `let` order reproduces the same variable numbering on re-parse.
    let f: Vec<_> = (0..4).map(|i| b.local(format!("f{i}"), Ty::F32)).collect();
    let i0 = b.local("i0", Ty::I32);
    for (i, fv) in f.iter().enumerate() {
        b.assign(*fv, Expr::f32(i as f32));
    }
    b.assign(i0, Expr::i32(1));
    for (i, e) in fs.into_iter().enumerate() {
        b.assign(f[i % 4], e);
    }
    for e in is {
        b.assign(i0, e);
    }
    b.store(Expr::var(out), Expr::i32(0), Expr::var(f[0]));
    b.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn expressions_round_trip_and_validate(
        fs in prop::collection::vec(f32_expr(4), 1..4),
        is in prop::collection::vec(i32_expr(3), 0..3),
    ) {
        let k = kernel_with(fs, is);
        validate_kernel(&k).unwrap();
        let printed = print_kernel(&k);
        let back = parse_kernel(&printed)
            .unwrap_or_else(|e| panic!("{e}\n---\n{printed}"));
        prop_assert_eq!(k, back);
    }

    #[test]
    fn substitution_is_identity_with_empty_map(e in f32_expr(4)) {
        let s = e.substitute_vars(&|_| None);
        prop_assert_eq!(e, s);
    }

    #[test]
    fn substitution_renames_every_occurrence(e in f32_expr(4)) {
        // Map f0 (id 3) -> id 42; afterwards id 3 must be gone and every
        // former occurrence must be 42.
        let before = e.vars_used().iter().filter(|v| **v == 3).count();
        let s = e.substitute_vars(&|v| (v == 3).then_some(42));
        let after_old = s.vars_used().iter().filter(|v| **v == 3).count();
        let after_new = s.vars_used().iter().filter(|v| **v == 42).count();
        prop_assert_eq!(after_old, 0);
        prop_assert_eq!(after_new, before);
    }
}
