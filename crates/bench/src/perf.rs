//! Fig. 4 (loop-time fraction) and Fig. 13 (performance overhead of
//! R-Naïve, R-Scatter, Hauberk-NL, Hauberk-L, and full Hauberk).

use hauberk::builds::{build, r_naive_cycles, BuildVariant, FtOptions};
use hauberk::program::{run_program, HostProgram};
use hauberk::ranges::RangeSet;
use hauberk::runtime::{FtRuntime, ProfilerRuntime};
use hauberk::ControlBlock;
use hauberk_sim::{LaunchOutcome, NullRuntime};

/// Overheads of every technique on one program, as percentages over the
/// baseline kernel cycles.
#[derive(Debug, Clone)]
pub struct OverheadRow {
    /// Program name.
    pub program: &'static str,
    /// Baseline kernel cycles.
    pub baseline_cycles: u64,
    /// Fraction of execution time in loops (Fig. 4).
    pub loop_fraction: f64,
    /// R-Naïve overhead (%).
    pub r_naive: f64,
    /// R-Scatter overhead (%), `None` when the build does not fit the
    /// device (TPACF's shared memory).
    pub r_scatter: Option<f64>,
    /// Hauberk-NL overhead (%).
    pub hauberk_nl: f64,
    /// Hauberk-L overhead (%).
    pub hauberk_l: f64,
    /// Full Hauberk overhead (%).
    pub hauberk: f64,
}

fn pct(cycles: u64, base: u64) -> f64 {
    (cycles as f64 / base as f64 - 1.0) * 100.0
}

/// Train loop-detector ranges on `dataset` so the FT run checks real ranges
/// (the paper measures FT overhead with configured detectors).
fn trained_ranges(prog: &dyn HostProgram, dataset: u64, opts: FtOptions) -> Vec<RangeSet> {
    let base = prog.build_kernel();
    let profiler = build(&base, BuildVariant::Profiler(opts)).expect("profiler build");
    let mut pr = ProfilerRuntime::default();
    let run = run_program(prog, &profiler.kernel, dataset, &mut pr, u64::MAX);
    assert!(
        run.outcome.is_completed(),
        "{}: {:?}",
        prog.name(),
        run.outcome
    );
    (0..profiler.detectors.len())
        .map(|d| hauberk::ranges::profile_ranges(pr.samples(d as u32)))
        .collect()
}

fn ft_cycles(prog: &dyn HostProgram, variant: BuildVariant, ranges: &[RangeSet]) -> u64 {
    let base = prog.build_kernel();
    let b = build(&base, variant).expect("FT build");
    let cb = ControlBlock::with_ranges(ranges[..b.detectors.len().min(ranges.len())].to_vec());
    let mut rt = FtRuntime::new(cb);
    let run = run_program(prog, &b.kernel, 0, &mut rt, u64::MAX);
    match run.outcome {
        LaunchOutcome::Completed(s) => {
            assert!(
                !rt.cb.sdc_flag,
                "{}: fault-free FT run must not alarm (variant {variant:?})",
                prog.name()
            );
            s.kernel_cycles
        }
        other => panic!("{}: FT run failed: {other:?}", prog.name()),
    }
}

/// Measure one program's Fig. 13 row (and its Fig. 4 loop fraction).
pub fn measure_overheads(prog: &dyn HostProgram) -> OverheadRow {
    let base_kernel = prog.build_kernel();
    let base_run = run_program(prog, &base_kernel, 0, &mut NullRuntime, u64::MAX);
    let stats = base_run
        .outcome
        .completed_stats()
        .unwrap_or_else(|| panic!("{} baseline must complete", prog.name()));
    let baseline = stats.kernel_cycles;
    let loop_fraction = stats.loop_fraction();

    // R-Scatter: build + run unless it does not fit the device.
    let r_scatter = {
        let b = build(&base_kernel, BuildVariant::RScatter).expect("rscatter build");
        let mut rt = FtRuntime::default();
        let run = run_program(prog, &b.kernel, 0, &mut rt, u64::MAX);
        match run.outcome {
            LaunchOutcome::Completed(s) => Some(pct(s.kernel_cycles, baseline)),
            LaunchOutcome::Crash {
                reason: hauberk_sim::TrapReason::SharedMemOverflow { .. },
                ..
            } => None,
            other => panic!("{}: R-Scatter run failed: {other:?}", prog.name()),
        }
    };

    let ranges = trained_ranges(prog, 0, FtOptions::default());
    let ranges_1 = trained_ranges(prog, 0, FtOptions::l_only());
    let nl = ft_cycles(prog, BuildVariant::Ft(FtOptions::nl_only()), &ranges);
    let l = ft_cycles(prog, BuildVariant::Ft(FtOptions::l_only()), &ranges_1);
    let full = ft_cycles(prog, BuildVariant::Ft(FtOptions::default()), &ranges);

    OverheadRow {
        program: prog.name(),
        baseline_cycles: baseline,
        loop_fraction,
        r_naive: pct(r_naive_cycles(baseline), baseline),
        r_scatter,
        hauberk_nl: pct(nl, baseline),
        hauberk_l: pct(l, baseline),
        hauberk: pct(full, baseline),
    }
}

/// Measure the whole suite.
pub fn measure_suite(progs: &[Box<dyn HostProgram>]) -> Vec<OverheadRow> {
    progs
        .iter()
        .map(|p| measure_overheads(p.as_ref()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hauberk_benchmarks::{hpc_suite, ProblemScale};

    #[test]
    fn fig13_shape_holds() {
        let rows = measure_suite(&hpc_suite(ProblemScale::Quick));
        let avg =
            |f: &dyn Fn(&OverheadRow) -> f64| rows.iter().map(f).sum::<f64>() / rows.len() as f64;
        let avg_hauberk = avg(&|r| r.hauberk);
        let avg_rnaive = avg(&|r| r.r_naive);
        // R-Naïve doubles; Hauberk stays far below it.
        assert!((avg_rnaive - 100.0).abs() < 1e-9);
        assert!(
            avg_hauberk < 40.0,
            "Hauberk average overhead small: {avg_hauberk:.1}%"
        );
        // R-Scatter is expensive where it builds, and TPACF cannot build it.
        let tpacf = rows.iter().find(|r| r.program == "TPACF").unwrap();
        assert!(tpacf.r_scatter.is_none());
        for r in &rows {
            if let Some(rs) = r.r_scatter {
                // PNS (integer) leaves FP issue slots idle, so duplication
                // is cheaper there; everywhere else it stays near 2x.
                assert!(rs > 40.0, "{}: R-Scatter {rs:.1}%", r.program);
                // Hauberk wins decisively on loop-dominant programs; on the
                // pathological non-loop RPES its NL protection degenerates
                // into (checksummed) duplication, tying with R-Scatter.
                if r.program != "RPES" {
                    assert!(
                        r.hauberk < rs,
                        "{}: Hauberk ({:.1}%) beats R-Scatter ({rs:.1}%)",
                        r.program,
                        r.hauberk
                    );
                }
            }
        }
        // RPES is the non-loop outlier: highest Hauberk-NL overhead.
        let rpes = rows.iter().find(|r| r.program == "RPES").unwrap();
        for r in &rows {
            if r.program != "RPES" {
                assert!(
                    rpes.hauberk_nl > r.hauberk_nl,
                    "RPES NL ({:.1}%) > {} NL ({:.1}%)",
                    rpes.hauberk_nl,
                    r.program,
                    r.hauberk_nl
                );
            }
        }
        // Hauberk-L alone is cheap everywhere (two adds per iteration).
        for r in &rows {
            assert!(
                r.hauberk_l < 30.0,
                "{}: Hauberk-L {:.1}%",
                r.program,
                r.hauberk_l
            );
        }
    }

    #[test]
    fn fig4_loop_fractions() {
        let rows = measure_suite(&hpc_suite(ProblemScale::Quick));
        let mut high = 0;
        for r in &rows {
            if r.loop_fraction > 0.9 {
                high += 1;
            }
        }
        assert!(high >= 5, "most programs are loop-dominant: {high}/7");
        let rpes = rows.iter().find(|r| r.program == "RPES").unwrap();
        assert!(rpes.loop_fraction < 0.5, "RPES: {}", rpes.loop_fraction);
    }
}
