#![warn(missing_docs)]

//! # hauberk-bench — regeneration of every table and figure
//!
//! Each module reproduces one experiment of the paper's evaluation; the
//! `figures` binary drives them and prints the same rows/series the paper
//! reports. See `EXPERIMENTS.md` at the repository root for the
//! paper-vs-measured record.

pub mod ablation;
pub mod alpha_cov;
pub mod fig1;
pub mod fig10;
pub mod fig14;
pub mod fig16;
pub mod fig2;
pub mod fig3;
pub mod fig9;
pub mod guardian_cases;
pub mod perf;
pub mod report;
