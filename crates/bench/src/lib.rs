#![warn(missing_docs)]

//! # hauberk-bench — regeneration of every table and figure
//!
//! Each module reproduces one experiment of the paper's evaluation; the
//! `figures` binary drives them and prints the same rows/series the paper
//! reports. See `EXPERIMENTS.md` at the repository root for the
//! paper-vs-measured record and the figure-by-figure reproduction guide.
//!
//! Binaries (`cargo run --release -p hauberk-bench --bin <name>`):
//!
//! * `figures` — regenerate the paper's figures/tables (positional figure
//!   names, `--paper`, `--json`, `--engine`, `--threads`).
//! * `campaign` — one program's fault-injection campaign with CSV/trace
//!   export and the orchestration layer: `--journal`/`--resume` checkpoints,
//!   `--shard I/M` + the `merge-journals` subcommand, `--adaptive`
//!   Wilson-interval early stopping (README "Campaign operations").
//! * `campaign_bench` — adaptive-vs-uniform sampling cost, writes
//!   `BENCH_campaign.json` (asserts the ≥2x reduction claim).
//! * `interp_bench` — bytecode-vs-tree-walk speedup, writes
//!   `BENCH_interp.json`.
//! * `telemetry_overhead` — telemetry hot-path cost, writes
//!   `BENCH_telemetry.json`.
//!
//! Criterion benches live under `benches/`; `tests/golden/` pins the CLI
//! JSON output shapes (refresh with `UPDATE_GOLDEN=1`).

pub mod ablation;
pub mod alpha_cov;
pub mod fig1;
pub mod fig10;
pub mod fig14;
pub mod fig16;
pub mod fig2;
pub mod fig3;
pub mod fig9;
pub mod guardian_cases;
pub mod perf;
pub mod report;
