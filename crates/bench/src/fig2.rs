//! Fig. 2 — data type vs. memory size per program group (log scale in the
//! paper; we report bytes and the FP:other ratio).

use crate::report;
use hauberk::program::MemBreakdown;
use hauberk_benchmarks::{graphics_suite, hpc_suite, ProblemScale};

/// One group's aggregated footprint.
#[derive(Debug, Clone)]
pub struct Fig2Row {
    /// Group label.
    pub group: &'static str,
    /// Aggregate breakdown.
    pub mem: MemBreakdown,
}

impl Fig2Row {
    /// Orders of magnitude by which FP data exceeds pointer+integer data.
    pub fn fp_dominance_orders(&self) -> f64 {
        let other = (self.mem.int_bytes + self.mem.ptr_bytes).max(1) as f64;
        (self.mem.fp_bytes as f64 / other).log10()
    }
}

/// Compute the figure. Memory accounting involves no simulation, so the
/// paper-scale datasets are always used (the quick-scale inputs compress
/// the FP dominance the paper reports at 3-6 orders of magnitude).
pub fn run(_scale: ProblemScale) -> Vec<Fig2Row> {
    let scale = ProblemScale::Paper;
    let mut rows = Vec::new();
    let mut fp_total = MemBreakdown::default();
    let mut int_prog = MemBreakdown::default();
    for p in hpc_suite(scale) {
        let m = p.memory_breakdown();
        if m.fp_bytes == 0 {
            int_prog.fp_bytes += m.fp_bytes;
            int_prog.int_bytes += m.int_bytes;
            int_prog.ptr_bytes += m.ptr_bytes;
        } else {
            fp_total.fp_bytes += m.fp_bytes;
            fp_total.int_bytes += m.int_bytes;
            fp_total.ptr_bytes += m.ptr_bytes;
        }
    }
    let mut gfx = MemBreakdown::default();
    for p in graphics_suite(scale) {
        let m = p.memory_breakdown();
        gfx.fp_bytes += m.fp_bytes;
        gfx.int_bytes += m.int_bytes;
        gfx.ptr_bytes += m.ptr_bytes;
    }
    rows.push(Fig2Row {
        group: "HPC FP programs",
        mem: fp_total,
    });
    rows.push(Fig2Row {
        group: "HPC integer program",
        mem: int_prog,
    });
    rows.push(Fig2Row {
        group: "3D graphics programs",
        mem: gfx,
    });
    rows
}

/// Render as text.
pub fn render(rows: &[Fig2Row]) -> String {
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.group.to_string(),
                r.mem.fp_bytes.to_string(),
                r.mem.int_bytes.to_string(),
                r.mem.ptr_bytes.to_string(),
                format!("{:+.1}", r.fp_dominance_orders()),
            ]
        })
        .collect();
    let mut out = String::from("Fig. 2 — data type vs. memory size\n");
    out.push_str(&report::table(
        &[
            "program type",
            "FP bytes",
            "int bytes",
            "ptr bytes",
            "log10(FP/other)",
        ],
        &body,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fp_programs_are_fp_dominated_by_orders_of_magnitude() {
        let rows = run(ProblemScale::Quick);
        let fp = rows.iter().find(|r| r.group == "HPC FP programs").unwrap();
        assert!(
            fp.fp_dominance_orders() > 1.5,
            "FP dominance: {:+.1} orders",
            fp.fp_dominance_orders()
        );
        let int = rows
            .iter()
            .find(|r| r.group == "HPC integer program")
            .unwrap();
        assert_eq!(int.mem.fp_bytes, 0);
        assert!(int.mem.int_bytes > 0);
    }
}
