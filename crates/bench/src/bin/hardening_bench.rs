//! `hardening_bench` — the standing coverage-vs-overhead Pareto benchmark
//! of closed-loop selective hardening, on two paper benchmarks (CP and
//! PNS).
//!
//! For each program the bench runs the full optimizer loop
//! ([`hauberk_swifi::harden()`]): baseline sensitivity campaign →
//! vulnerability ranking → greedy-prefix overhead sweep → coverage re-runs
//! over the default budget ladder. Two claims are asserted on every run,
//! not just recorded:
//!
//! * **selective is cheap**: the budget-0.5 placement reaches at least 80%
//!   of the full-protection coverage at at most 50% of its detector
//!   overhead (the overhead half holds by construction; the coverage half
//!   is measured);
//! * **the front is monotone**: walking the budget ladder upward, measured
//!   coverage never decreases (detectors only observe, and budgets map to
//!   nested prefixes of one ranking).
//!
//! The per-program ledgers land in `BENCH_hardening.json`; `--front-dir`
//! additionally writes one `hardening_front_<program>.csv` per program
//! (the artifact CI uploads).
//!
//! ```text
//! hardening_bench [--vars N] [--masks N] [--out PATH] [--front-dir DIR]
//! ```

use hauberk_swifi::campaign::CampaignConfig;
use hauberk_swifi::harden::{harden, HardenConfig};
use hauberk_swifi::plan::PlanConfig;
use hauberk_telemetry::json::Json;

fn arg_value(args: &[String], key: &str) -> Option<String> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let vars: usize = arg_value(&args, "--vars")
        .and_then(|v| v.parse().ok())
        .unwrap_or(12);
    let masks: usize = arg_value(&args, "--masks")
        .and_then(|v| v.parse().ok())
        .unwrap_or(12);
    let out_path = arg_value(&args, "--out");
    let front_dir = arg_value(&args, "--front-dir");

    let mut docs = Vec::new();
    for name in ["CP", "PNS"] {
        let prog =
            hauberk_benchmarks::program_by_name(name, hauberk_benchmarks::ProblemScale::Quick)
                .expect("paper benchmark");
        let cfg = HardenConfig {
            budget: 0.5,
            campaign: CampaignConfig {
                plan: PlanConfig {
                    vars_per_program: vars,
                    masks_per_var: masks,
                    bit_counts: hauberk_swifi::mask::PAPER_BIT_COUNTS.to_vec(),
                    scheduler_per_mille: 60,
                    register_per_mille: 60,
                },
                ..Default::default()
            },
            ..Default::default()
        };
        let report = harden(prog.as_ref(), &cfg).expect("harden");
        eprintln!(
            "{name}: {} candidate(s), full overhead {} cycles, full coverage {:.4}",
            report.candidates.len(),
            report.full_overhead_cycles,
            report.full_coverage
        );
        for p in &report.front {
            eprintln!(
                "  budget {:>5}: {:>2} detector(s), {:>8} cycles, coverage {:.4}",
                p.budget, p.selected, p.overhead_cycles, p.coverage
            );
        }

        // Standing claim 1: the front is monotone — more budget never
        // costs coverage (nested prefixes, observation-only detectors).
        for w in report.front.windows(2) {
            assert!(
                w[1].coverage >= w[0].coverage - 1e-12,
                "{name}: coverage dropped along the front: {} @ budget {} vs {} @ budget {}",
                w[1].coverage,
                w[1].budget,
                w[0].coverage,
                w[0].budget
            );
            assert!(w[1].overhead_cycles >= w[0].overhead_cycles);
        }

        // Standing claim 2: the budget-0.5 placement keeps ≥80% of the
        // full-protection coverage at ≤50% of its detector overhead.
        let half = report
            .front
            .iter()
            .find(|p| p.budget == 0.5)
            .expect("budget 0.5 is on the default ladder");
        assert!(
            half.overhead_cycles * 2 <= report.full_overhead_cycles,
            "{name}: budget-0.5 overhead {} exceeds half of full {}",
            half.overhead_cycles,
            report.full_overhead_cycles
        );
        assert!(
            half.coverage >= 0.8 * report.full_coverage,
            "{name}: selective coverage {} < 80% of full {}",
            half.coverage,
            report.full_coverage
        );

        if let Some(dir) = &front_dir {
            std::fs::create_dir_all(dir).expect("create front dir");
            let path = format!("{dir}/hardening_front_{name}.csv");
            std::fs::write(&path, report.front_csv()).expect("write front CSV");
            eprintln!("wrote {path}");
        }

        docs.push(Json::obj([
            ("program", Json::str(format!("{name} quick"))),
            ("golden_cycles", Json::uint(report.golden_cycles)),
            ("baseline_sdc", Json::Num(report.baseline_sdc)),
            (
                "baseline_injections",
                Json::uint(report.baseline_injections),
            ),
            (
                "full_overhead_cycles",
                Json::uint(report.full_overhead_cycles),
            ),
            ("full_coverage", Json::Num(report.full_coverage)),
            ("candidates", Json::uint(report.candidates.len() as u64)),
            (
                "selective_coverage_at_half_budget",
                Json::Num(half.coverage),
            ),
            (
                "selective_overhead_at_half_budget",
                Json::uint(half.overhead_cycles),
            ),
            (
                "coverage_retention",
                Json::Num(if report.full_coverage > 0.0 {
                    half.coverage / report.full_coverage
                } else {
                    1.0
                }),
            ),
            (
                "front",
                Json::Arr(
                    report
                        .front
                        .iter()
                        .map(|p| {
                            Json::obj([
                                ("budget", Json::Num(p.budget)),
                                ("selected", Json::uint(p.selected as u64)),
                                ("overhead_cycles", Json::uint(p.overhead_cycles)),
                                ("overhead_frac", Json::Num(p.overhead_frac)),
                                ("coverage", Json::Num(p.coverage)),
                                ("sdc_ratio", Json::Num(p.sdc_ratio)),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("monotone_front", Json::Bool(true)),
        ]));
    }

    let doc = Json::obj([
        ("bench", Json::str("hardening_bench")),
        ("vars", Json::uint(vars as u64)),
        ("masks", Json::uint(masks as u64)),
        ("budget_ladder_points", Json::uint(7)),
        ("programs", Json::Arr(docs)),
    ]);
    let rendered = format!("{doc}\n");
    match out_path {
        Some(path) => {
            std::fs::write(&path, &rendered).expect("write bench output");
            eprintln!("wrote {path}");
        }
        None => print!("{rendered}"),
    }
}
