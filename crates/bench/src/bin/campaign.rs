//! `campaign` — run a fault-injection campaign on one benchmark and write
//! per-experiment CSV records plus a summary (the file-based analogue of the
//! paper's GUI controller, §IV.B).
//!
//! ```text
//! campaign <program> [--sensitivity|--coverage] [--vars N] [--masks N]
//!          [--alpha F] [--csv PATH] [--trace-out PATH] [--progress N]
//!          [--json] [--engine tree-walk|bytecode|batch] [--threads N]
//!          [--shard-size N] [--journal PATH | --resume PATH]
//!          [--adaptive] [--ci-width F] [--min-samples N]
//!          [--max-retries N] [--shard I/M] [--profile] [--checkpoint]
//! campaign merge-journals --out PATH <journal> [<journal> ...]
//! campaign harden <program> [--budget F] [--budgets F,F,...] [--iterations N]
//!          [--plan-out PATH] [--plan-in PATH] [--front-out PATH]
//!          [--baseline-journal PATH] [--vars N] [--masks N] [--alpha F]
//!          [--engine E] [--threads N] [--json]
//! ```
//!
//! Orchestration flags:
//!
//! * `--journal PATH` starts a fresh checkpoint journal (truncating any
//!   existing file); `--resume PATH` replays a journal, skips finished work
//!   units, and appends new ones to the same file. The resumed summary is
//!   byte-identical to an uninterrupted run.
//! * `--adaptive` enables per-stratum early stopping once the Wilson
//!   interval on the SDC rate is narrower than `--ci-width` (default 0.1);
//!   `--min-samples` (default 32) guards the decision.
//! * `--shard I/M` executes only strata with ordinal ≡ I (mod M) — run M
//!   processes with distinct I and the same `--journal`, then
//!   `merge-journals` + `--resume` to finalize.
//! * `--max-retries N` retries a panicking work unit N times before
//!   quarantining it (default 2).
//! * `--profile` prints the per-phase wall-time breakdown (plan / execute /
//!   journal / classify / sample-decision) and any straggler work units
//!   after the summary. The profile is also appended to the journal as a
//!   trailing `"rec":"profile"` record when `--journal`/`--resume` is set.
//! * `--checkpoint` shares one fault-free prefix across the campaign: a
//!   single reference run captures a device snapshot at every block boundary
//!   a planned fault targets, and each injection restores the snapshot
//!   instead of re-executing from launch. The summary (and CSV) stays
//!   byte-identical to full re-execution; the cycles-saved note goes to
//!   stderr. Ineligible campaigns fall back to full re-execution with a
//!   warning.
//!
//! The `harden` subcommand closes the campaign → translator loop: it runs
//! (or ingests, with `--baseline-journal`) a baseline sensitivity campaign,
//! ranks placeable detectors by measured vulnerability, sweeps the
//! `--budgets` ladder into a coverage-vs-overhead Pareto front, and emits
//! the plan fitted under `--budget` (default 0.5) to `--plan-out`.
//! `--plan-in` instead evaluates a previously emitted plan: it measures the
//! plan's fault-free overhead and re-runs the coverage campaign under it.
//! Output is deterministic: same inputs, byte-identical plan and front.

use hauberk::builds::FtOptions;
use hauberk::translator::select::HardeningPlan;
use hauberk_benchmarks::{program_by_name, ProblemScale};
use hauberk_swifi::campaign::{CampaignConfig, CampaignKind};
use hauberk_swifi::harden::{evaluate_placement, harden, HardenConfig};
use hauberk_swifi::journal::merge_journals;
use hauberk_swifi::mask::PAPER_BIT_COUNTS;
use hauberk_swifi::orchestrator::{run_orchestrated_campaign, OrchestratorConfig};
use hauberk_swifi::plan::PlanConfig;
use hauberk_swifi::report::to_csv;
use hauberk_swifi::sampler::AdaptiveConfig;
use hauberk_telemetry::json::Json;
use hauberk_telemetry::report::Emitter;

fn arg_value(args: &[String], key: &str) -> Option<String> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// `campaign merge-journals --out PATH a.jsonl b.jsonl ...`
fn merge_main(args: &[String]) {
    let out = arg_value(args, "--out").unwrap_or_else(|| {
        eprintln!("merge-journals: --out PATH is required");
        std::process::exit(2);
    });
    let inputs: Vec<&String> = args
        .iter()
        .skip(1) // the subcommand itself
        .filter(|a| !a.starts_with("--") && **a != out)
        .collect();
    match merge_journals(&out, &inputs) {
        Ok(n) => println!(
            "merged {n} unit record(s) from {} journal(s) into {out}",
            inputs.len()
        ),
        Err(e) => {
            eprintln!("merge-journals: {e}");
            std::process::exit(1);
        }
    }
}

/// `campaign harden <program> [--budget F] ...` — see the module docs.
fn harden_main(args: &[String]) {
    let json = args.iter().any(|a| a == "--json");
    let name = args
        .iter()
        .skip(1) // the subcommand itself
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "CP".to_string());
    let engine = arg_value(args, "--engine").map(|v| {
        hauberk_sim::ExecEngine::parse(&v)
            .unwrap_or_else(|| panic!("unknown engine `{v}` (try tree-walk, bytecode, or batch)"))
    });
    if let Some(e) = engine {
        hauberk_sim::set_default_engine(e);
    }
    if let Some(n) = arg_value(args, "--threads").and_then(|v| v.parse().ok()) {
        rayon::set_thread_count(n);
    }
    let vars: usize = arg_value(args, "--vars")
        .and_then(|v| v.parse().ok())
        .unwrap_or(20);
    let masks: usize = arg_value(args, "--masks")
        .and_then(|v| v.parse().ok())
        .unwrap_or(25);
    let alpha: f64 = arg_value(args, "--alpha")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.0);
    let budget: f64 = arg_value(args, "--budget")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.5);
    let budgets: Vec<f64> = arg_value(args, "--budgets")
        .map(|v| {
            v.split(',')
                .map(|b| {
                    b.trim()
                        .parse()
                        .unwrap_or_else(|_| panic!("--budgets: bad fraction `{b}`"))
                })
                .collect()
        })
        .unwrap_or_default();
    let iterations: usize = arg_value(args, "--iterations")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    let prog = program_by_name(&name, ProblemScale::Quick)
        .unwrap_or_else(|| panic!("unknown program `{name}` (try CP, MRI-Q, SAD, ...)"));
    let cfg = HardenConfig {
        budget,
        budgets,
        iterations,
        campaign: CampaignConfig {
            plan: PlanConfig {
                vars_per_program: vars,
                masks_per_var: masks,
                bit_counts: PAPER_BIT_COUNTS.to_vec(),
                scheduler_per_mille: 60,
                register_per_mille: 60,
            },
            alpha,
            engine,
            ..Default::default()
        },
        baseline_journal: arg_value(args, "--baseline-journal").map(Into::into),
        ..Default::default()
    };
    let mut em = Emitter::new(json);

    if let Some(path) = arg_value(args, "--plan-in") {
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read plan {path}: {e}"));
        let plan = HardeningPlan::parse(&text).unwrap_or_else(|e| panic!("bad plan {path}: {e}"));
        em.text(format!(
            "evaluating plan {path} ({} detector(s)) on {name}...",
            plan.selection.len()
        ));
        let point = match evaluate_placement(prog.as_ref(), &plan, &cfg) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("harden: {e}");
                std::process::exit(1);
            }
        };
        em.text(format!(
            "plan @ budget {}: {} detector(s), overhead {} cycles ({:.2}%), \
             coverage {:.4}, sdc {:.4}",
            point.budget,
            point.selected,
            point.overhead_cycles,
            100.0 * point.overhead_frac,
            point.coverage,
            point.sdc_ratio
        ));
        em.json_section(
            "placement",
            Json::obj([
                ("budget", Json::Num(point.budget)),
                ("selected", Json::uint(point.selected as u64)),
                ("overhead_cycles", Json::uint(point.overhead_cycles)),
                ("overhead_frac", Json::Num(point.overhead_frac)),
                ("coverage", Json::Num(point.coverage)),
                ("sdc_ratio", Json::Num(point.sdc_ratio)),
            ]),
        );
        em.finish();
        return;
    }

    em.text(format!(
        "hardening {name} (budget {budget}, {iterations} iteration(s))..."
    ));
    let report = match harden(prog.as_ref(), &cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("harden: {e}");
            std::process::exit(1);
        }
    };
    em.text(format!(
        "{}: {} candidate(s), full overhead {} cycles, full coverage {:.4}, \
         baseline sdc {:.4} over {} injection(s); {} round(s), {}",
        report.program,
        report.candidates.len(),
        report.full_overhead_cycles,
        report.full_coverage,
        report.baseline_sdc,
        report.baseline_injections,
        report.iterations_run,
        if report.converged {
            "ranking converged"
        } else {
            "round budget exhausted"
        }
    ));
    for p in &report.front {
        em.text(format!(
            "  budget {:>5}: {:>2} detector(s), overhead {:>8} cycles ({:>6.2}%), \
             coverage {:.4}, sdc {:.4}",
            p.budget,
            p.selected,
            p.overhead_cycles,
            100.0 * p.overhead_frac,
            p.coverage,
            p.sdc_ratio
        ));
    }
    em.json_section("harden", report.to_json());
    if let Some(path) = arg_value(args, "--plan-out") {
        std::fs::write(&path, report.plan.to_json_string()).expect("write plan");
        em.text(format!(
            "wrote plan ({} detector(s) @ budget {}) to {path}",
            report.plan.selection.len(),
            report.plan.budget
        ));
        em.json_section("plan_path", Json::str(path));
    }
    if let Some(path) = arg_value(args, "--front-out") {
        std::fs::write(&path, report.front_csv()).expect("write front CSV");
        em.text(format!(
            "wrote {}-point Pareto front to {path}",
            report.front.len()
        ));
        em.json_section("front_path", Json::str(path));
    }
    em.finish();
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("merge-journals") {
        merge_main(&args);
        return;
    }
    if args.first().map(String::as_str) == Some("harden") {
        harden_main(&args);
        return;
    }
    let name = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "CP".to_string());
    let sensitivity = args.iter().any(|a| a == "--sensitivity");
    let json = args.iter().any(|a| a == "--json");
    let vars: usize = arg_value(&args, "--vars")
        .and_then(|v| v.parse().ok())
        .unwrap_or(20);
    let masks: usize = arg_value(&args, "--masks")
        .and_then(|v| v.parse().ok())
        .unwrap_or(25);
    let alpha: f64 = arg_value(&args, "--alpha")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.0);
    let csv_path = arg_value(&args, "--csv");
    let trace_path = arg_value(&args, "--trace-out");
    let progress_every: u64 = arg_value(&args, "--progress")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    let engine = arg_value(&args, "--engine").map(|v| {
        hauberk_sim::ExecEngine::parse(&v)
            .unwrap_or_else(|| panic!("unknown engine `{v}` (try tree-walk, bytecode, or batch)"))
    });
    if let Some(e) = engine {
        // Pin golden/profiling runs too, not just the injection loop.
        hauberk_sim::set_default_engine(e);
    }
    if let Some(n) = arg_value(&args, "--threads").and_then(|v| v.parse().ok()) {
        rayon::set_thread_count(n);
    }

    let shard_size: usize = arg_value(&args, "--shard-size")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    let adaptive =
        if args.iter().any(|a| a == "--adaptive") || arg_value(&args, "--ci-width").is_some() {
            let mut a = AdaptiveConfig::default();
            if let Some(w) = arg_value(&args, "--ci-width").and_then(|v| v.parse().ok()) {
                a.ci_width = w;
            }
            if let Some(n) = arg_value(&args, "--min-samples").and_then(|v| v.parse().ok()) {
                a.min_samples = n;
            }
            Some(a)
        } else {
            None
        };
    let max_retries: u32 = arg_value(&args, "--max-retries")
        .and_then(|v| v.parse().ok())
        .unwrap_or(OrchestratorConfig::DEFAULT_MAX_RETRIES);
    let shard = arg_value(&args, "--shard").map(|v| {
        let parse = |s: &str| -> Option<(u32, u32)> {
            let (i, m) = s.split_once('/')?;
            Some((i.parse().ok()?, m.parse().ok()?))
        };
        match parse(&v) {
            Some((i, m)) if m > 0 && i < m => (i, m),
            _ => panic!("--shard expects I/M with 0 <= I < M, got `{v}`"),
        }
    });
    let journal_path = arg_value(&args, "--journal");
    let resume_from = arg_value(&args, "--resume");
    if journal_path.is_some() && resume_from.is_some() {
        eprintln!("campaign: --journal (fresh) and --resume are mutually exclusive");
        std::process::exit(2);
    }

    let prog = program_by_name(&name, ProblemScale::Quick)
        .unwrap_or_else(|| panic!("unknown program `{name}` (try CP, MRI-Q, SAD, ...)"));
    let cfg = CampaignConfig {
        plan: PlanConfig {
            vars_per_program: vars,
            masks_per_var: masks,
            bit_counts: PAPER_BIT_COUNTS.to_vec(),
            scheduler_per_mille: 60,
            register_per_mille: 60,
        },
        alpha,
        progress_every,
        trace_path: trace_path.clone().map(Into::into),
        engine,
        ..Default::default()
    };
    let orch = OrchestratorConfig {
        shard_size,
        adaptive,
        max_retries,
        journal_path: journal_path.map(Into::into),
        resume_from: resume_from.map(Into::into),
        shard,
        trace: None,
        checkpoint: args.iter().any(|a| a == "--checkpoint"),
        chaos: None,
        stop: None,
    };

    let kind = if sensitivity {
        CampaignKind::Sensitivity
    } else {
        CampaignKind::Coverage(FtOptions::default())
    };
    let mut em = Emitter::new(json);
    em.text(format!(
        "running {} campaign on {name} (alpha={alpha})...",
        kind.label()
    ));
    let sharded = match run_orchestrated_campaign(prog.as_ref(), kind, &cfg, &orch) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("campaign: {e}");
            std::process::exit(1);
        }
    };
    if let Some(ck) = &sharded.checkpoint {
        // Savings note on stderr, like the resume statistics: stdout is the
        // summary, whose bytes must not depend on the execution mode.
        let full = ck.reference_cycles.saturating_mul(ck.injections);
        let actual = ck.reference_cycles + ck.executed_cycles;
        eprintln!(
            "checkpoint: {} boundaries over {} section(s); {}/{} injection(s) spliced; \
             {} cycles simulated vs {} full re-execution ({:.1}x)",
            ck.boundaries,
            ck.sections,
            ck.spliced,
            ck.injections,
            actual,
            full,
            full as f64 / actual.max(1) as f64
        );
    }
    if sharded.resumed_units > 0 || sharded.dropped_lines > 0 {
        // Resume statistics go to stderr, not the summary: the summary must
        // stay byte-identical to an uninterrupted run.
        eprintln!(
            "resume: replayed {} unit(s) / {} injection(s) from the journal ({} torn line(s) dropped)",
            sharded.resumed_units, sharded.resumed_injections, sharded.dropped_lines
        );
    }

    em.text(sharded.summarize());
    em.json_section("summary", sharded.summary_json());
    if args.iter().any(|a| a == "--profile") {
        em.table(&sharded.profile.table());
        em.json_section("profile", sharded.profile.to_json());
        for s in &sharded.profile.stragglers {
            em.text(format!(
                "straggler: {} took {:.2} ms (threshold {:.2} ms)",
                s.unit,
                s.dur_ns as f64 / 1e6,
                s.threshold_ns as f64 / 1e6
            ));
        }
    }
    if let Some(path) = csv_path {
        std::fs::write(&path, to_csv(&sharded.campaign)).expect("write CSV");
        em.text(format!(
            "wrote {} records to {path}",
            sharded.campaign.results.len()
        ));
        em.json_section("csv_path", Json::str(path));
    }
    if let Some(path) = trace_path {
        // The sink warns and disables itself if the file can't be opened.
        if std::path::Path::new(&path).exists() {
            em.text(format!("wrote telemetry trace to {path}"));
            em.json_section("trace_path", Json::str(path));
        }
    }
    em.finish();
}
