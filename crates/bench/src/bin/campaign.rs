//! `campaign` — run a fault-injection campaign on one benchmark and write
//! per-experiment CSV records plus a summary (the file-based analogue of the
//! paper's GUI controller, §IV.B).
//!
//! ```text
//! campaign <program> [--sensitivity|--coverage] [--vars N] [--masks N]
//!          [--alpha F] [--csv PATH]
//! ```

use hauberk::builds::FtOptions;
use hauberk_benchmarks::{program_by_name, ProblemScale};
use hauberk_swifi::campaign::{run_coverage_campaign, run_sensitivity_campaign, CampaignConfig};
use hauberk_swifi::mask::PAPER_BIT_COUNTS;
use hauberk_swifi::plan::PlanConfig;
use hauberk_swifi::report::{summarize, to_csv};

fn arg_value(args: &[String], key: &str) -> Option<String> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let name = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "CP".to_string());
    let sensitivity = args.iter().any(|a| a == "--sensitivity");
    let vars: usize = arg_value(&args, "--vars")
        .and_then(|v| v.parse().ok())
        .unwrap_or(20);
    let masks: usize = arg_value(&args, "--masks")
        .and_then(|v| v.parse().ok())
        .unwrap_or(25);
    let alpha: f64 = arg_value(&args, "--alpha")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.0);
    let csv_path = arg_value(&args, "--csv");

    let prog = program_by_name(&name, ProblemScale::Quick)
        .unwrap_or_else(|| panic!("unknown program `{name}` (try CP, MRI-Q, SAD, ...)"));
    let cfg = CampaignConfig {
        plan: PlanConfig {
            vars_per_program: vars,
            masks_per_var: masks,
            bit_counts: PAPER_BIT_COUNTS.to_vec(),
            scheduler_per_mille: 60,
            register_per_mille: 60,
        },
        alpha,
        ..Default::default()
    };

    let result = if sensitivity {
        println!("running baseline-sensitivity campaign on {name}...");
        run_sensitivity_campaign(prog.as_ref(), &cfg)
    } else {
        println!("running coverage campaign (FI&FT) on {name} (alpha={alpha})...");
        run_coverage_campaign(prog.as_ref(), FtOptions::default(), &cfg)
    };

    print!("{}", summarize(&result));
    if let Some(path) = csv_path {
        std::fs::write(&path, to_csv(&result)).expect("write CSV");
        println!("wrote {} records to {path}", result.results.len());
    }
}
