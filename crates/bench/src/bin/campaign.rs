//! `campaign` — run a fault-injection campaign on one benchmark and write
//! per-experiment CSV records plus a summary (the file-based analogue of the
//! paper's GUI controller, §IV.B).
//!
//! ```text
//! campaign <program> [--sensitivity|--coverage] [--vars N] [--masks N]
//!          [--alpha F] [--csv PATH] [--trace-out PATH] [--progress N]
//!          [--json] [--engine tree-walk|bytecode] [--threads N]
//! ```
//!
//! `--trace-out` writes a JSONL telemetry trace of every injection run;
//! `--progress` prints a progress line to stderr every N completed
//! injections; `--json` replaces the text summary with one JSON document;
//! `--engine` selects the execution engine (default: bytecode); `--threads`
//! pins the worker-thread count (0 = one per core).

use hauberk::builds::FtOptions;
use hauberk_benchmarks::{program_by_name, ProblemScale};
use hauberk_swifi::campaign::{run_coverage_campaign, run_sensitivity_campaign, CampaignConfig};
use hauberk_swifi::mask::PAPER_BIT_COUNTS;
use hauberk_swifi::plan::PlanConfig;
use hauberk_swifi::report::{summarize, summary_json, to_csv};
use hauberk_telemetry::json::Json;
use hauberk_telemetry::report::Emitter;

fn arg_value(args: &[String], key: &str) -> Option<String> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let name = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "CP".to_string());
    let sensitivity = args.iter().any(|a| a == "--sensitivity");
    let json = args.iter().any(|a| a == "--json");
    let vars: usize = arg_value(&args, "--vars")
        .and_then(|v| v.parse().ok())
        .unwrap_or(20);
    let masks: usize = arg_value(&args, "--masks")
        .and_then(|v| v.parse().ok())
        .unwrap_or(25);
    let alpha: f64 = arg_value(&args, "--alpha")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.0);
    let csv_path = arg_value(&args, "--csv");
    let trace_path = arg_value(&args, "--trace-out");
    let progress_every: u64 = arg_value(&args, "--progress")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    let engine = arg_value(&args, "--engine").map(|v| {
        hauberk_sim::ExecEngine::parse(&v)
            .unwrap_or_else(|| panic!("unknown engine `{v}` (try tree-walk or bytecode)"))
    });
    if let Some(e) = engine {
        // Pin golden/profiling runs too, not just the injection loop.
        hauberk_sim::set_default_engine(e);
    }
    if let Some(n) = arg_value(&args, "--threads").and_then(|v| v.parse().ok()) {
        rayon::set_thread_count(n);
    }

    let prog = program_by_name(&name, ProblemScale::Quick)
        .unwrap_or_else(|| panic!("unknown program `{name}` (try CP, MRI-Q, SAD, ...)"));
    let cfg = CampaignConfig {
        plan: PlanConfig {
            vars_per_program: vars,
            masks_per_var: masks,
            bit_counts: PAPER_BIT_COUNTS.to_vec(),
            scheduler_per_mille: 60,
            register_per_mille: 60,
        },
        alpha,
        progress_every,
        trace_path: trace_path.clone().map(Into::into),
        engine,
        ..Default::default()
    };

    let mut em = Emitter::new(json);
    let result = if sensitivity {
        em.text(format!(
            "running baseline-sensitivity campaign on {name}..."
        ));
        run_sensitivity_campaign(prog.as_ref(), &cfg)
    } else {
        em.text(format!(
            "running coverage campaign (FI&FT) on {name} (alpha={alpha})..."
        ));
        run_coverage_campaign(prog.as_ref(), FtOptions::default(), &cfg)
    };

    em.text(summarize(&result));
    em.json_section("summary", summary_json(&result));
    if let Some(path) = csv_path {
        std::fs::write(&path, to_csv(&result)).expect("write CSV");
        em.text(format!("wrote {} records to {path}", result.results.len()));
        em.json_section("csv_path", Json::str(path));
    }
    if let Some(path) = trace_path {
        // The sink warns and disables itself if the file can't be opened.
        if std::path::Path::new(&path).exists() {
            em.text(format!("wrote telemetry trace to {path}"));
            em.json_section("trace_path", Json::str(path));
        }
    }
    em.finish();
}
