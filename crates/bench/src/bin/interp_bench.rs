//! `interp_bench` — measure all three execution engines (tree walker,
//! bytecode VM, batched lane-vector VM) on the simulator's standard hot-path
//! kernel (the same FP loop `telemetry_overhead` and `sim_throughput` use),
//! and record the pairwise speedups the compiled tiers deliver per launch.
//!
//! Also verifies, on every run, that all engines produce identical
//! `ExecStats` and identical output memory — a cheap standing differential
//! check in addition to the property suite.
//!
//! ```text
//! interp_bench [--iters N] [--out PATH]
//! ```

use hauberk_kir::kernel::KernelDef;
use hauberk_kir::parser::parse_kernel;
use hauberk_kir::{PrimTy, Value};
use hauberk_sim::{Device, DeviceConfig, ExecEngine, Launch, NullRuntime};
use hauberk_telemetry::json::Json;
use std::hint::black_box;
use std::time::Instant;

fn one_launch(kernel: &KernelDef, engine: ExecEngine) -> (hauberk_sim::ExecStats, Vec<f32>) {
    let mut config = DeviceConfig::small_gpu();
    config.engine = engine;
    let mut dev = Device::new(config);
    let out = dev.alloc(PrimTy::F32, 512);
    let x = dev.alloc(PrimTy::F32, 256);
    let r = black_box(dev.launch(
        kernel,
        &[Value::Ptr(out), Value::Ptr(x), Value::I32(256)],
        &Launch::grid1d(16, 32),
        &mut NullRuntime,
    ));
    let stats = r.completed_stats().expect("bench launch completes").clone();
    (stats, dev.mem.copy_out_f32(out, 512))
}

/// Time one batch of launches and return mean ns/launch.
fn batch(kernel: &KernelDef, engine: ExecEngine, iters: u32) -> f64 {
    let t = Instant::now();
    for _ in 0..iters {
        black_box(one_launch(kernel, engine));
    }
    t.elapsed().as_nanos() as f64 / iters as f64
}

fn arg_value(args: &[String], key: &str) -> Option<String> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let iters: u32 = arg_value(&args, "--iters")
        .and_then(|v| v.parse().ok())
        .unwrap_or(200);
    let out_path = arg_value(&args, "--out");

    let kernel = parse_kernel(
        r#"kernel spin(out: *global f32, x: *global f32, n: i32) {
            let tid: i32 = block_idx_x() * block_dim_x() + thread_idx_x();
            let acc: f32 = 0.0;
            for (i = 0; i < n; i = i + 1) {
                acc = acc + load(x, i) * 1.0001 + 0.5;
            }
            store(out, tid, acc);
        }"#,
    )
    .unwrap();

    const ENGINES: [ExecEngine; 3] = ExecEngine::ALL;

    // Standing equivalence check: same stats, same memory, every run, across
    // all three engines.
    let (ref_stats, ref_out) = one_launch(&kernel, ENGINES[0]);
    for &e in &ENGINES[1..] {
        let (stats, out) = one_launch(&kernel, e);
        assert_eq!(
            ref_stats,
            stats,
            "{} stats diverge from reference",
            e.name()
        );
        assert_eq!(ref_out, out, "{} output diverges from reference", e.name());
    }

    // Interleave rounds and keep the fastest per engine, so machine drift
    // cancels instead of biasing whichever engine ran last.
    const ROUNDS: u32 = 5;
    let per_round = (iters / ROUNDS).max(1);
    let mut best = [f64::INFINITY; ENGINES.len()];
    for _ in 0..ROUNDS {
        for (i, &e) in ENGINES.iter().enumerate() {
            best[i] = best[i].min(batch(&kernel, e, per_round));
        }
    }
    for (i, &e) in ENGINES.iter().enumerate() {
        eprintln!("{:>10}: {:>12.0} ns/launch", e.name(), best[i]);
    }
    // Pairwise speedup matrix: speedups[slow][fast] = ns(slow)/ns(fast).
    let mut pair_rows = Vec::new();
    for (i, &slow) in ENGINES.iter().enumerate() {
        for (j, &fast) in ENGINES.iter().enumerate() {
            if i >= j {
                continue;
            }
            let s = best[i] / best[j];
            eprintln!("{:>10} vs {:<10}: {s:>7.2}x", fast.name(), slow.name());
            pair_rows.push((
                format!(
                    "{}_over_{}",
                    fast.name().replace('-', "_"),
                    slow.name().replace('-', "_")
                ),
                Json::Num(s),
            ));
        }
    }

    let results = Json::Obj(
        ENGINES
            .iter()
            .enumerate()
            .map(|(i, e)| {
                (
                    e.name().replace('-', "_"),
                    Json::obj([("ns_per_launch", Json::Num(best[i]))]),
                )
            })
            .collect(),
    );
    let doc = Json::obj([
        ("bench", Json::str("interp_bench")),
        ("kernel", Json::str("spin fp_loop_16x32")),
        ("iters", Json::uint(iters as u64)),
        ("results", results),
        // Kept for dashboards that read the historical two-engine field:
        // the headline bytecode-over-tree-walk ratio.
        ("speedup", Json::Num(best[0] / best[1])),
        ("speedups", Json::Obj(pair_rows.into_iter().collect())),
        ("stats_identical", Json::Bool(true)),
    ]);
    let rendered = format!("{doc}\n");
    match out_path {
        Some(path) => {
            std::fs::write(&path, &rendered).expect("write bench output");
            eprintln!("wrote {path}");
        }
        None => print!("{rendered}"),
    }
}
