//! `interp_bench` — measure the bytecode VM against the tree-walking
//! interpreter on the simulator's standard hot-path kernel (the same FP loop
//! `telemetry_overhead` and `sim_throughput` use), and record the speedup
//! the compiled engine delivers per launch.
//!
//! Also verifies, on every run, that both engines produce identical
//! `ExecStats` and identical output memory — a cheap standing differential
//! check in addition to the property suite.
//!
//! ```text
//! interp_bench [--iters N] [--out PATH]
//! ```

use hauberk_kir::kernel::KernelDef;
use hauberk_kir::parser::parse_kernel;
use hauberk_kir::{PrimTy, Value};
use hauberk_sim::{Device, DeviceConfig, ExecEngine, Launch, NullRuntime};
use hauberk_telemetry::json::Json;
use std::hint::black_box;
use std::time::Instant;

fn one_launch(kernel: &KernelDef, engine: ExecEngine) -> (hauberk_sim::ExecStats, Vec<f32>) {
    let mut config = DeviceConfig::small_gpu();
    config.engine = engine;
    let mut dev = Device::new(config);
    let out = dev.alloc(PrimTy::F32, 512);
    let x = dev.alloc(PrimTy::F32, 256);
    let r = black_box(dev.launch(
        kernel,
        &[Value::Ptr(out), Value::Ptr(x), Value::I32(256)],
        &Launch::grid1d(16, 32),
        &mut NullRuntime,
    ));
    let stats = r.completed_stats().expect("bench launch completes").clone();
    (stats, dev.mem.copy_out_f32(out, 512))
}

/// Time one batch of launches and return mean ns/launch.
fn batch(kernel: &KernelDef, engine: ExecEngine, iters: u32) -> f64 {
    let t = Instant::now();
    for _ in 0..iters {
        black_box(one_launch(kernel, engine));
    }
    t.elapsed().as_nanos() as f64 / iters as f64
}

fn arg_value(args: &[String], key: &str) -> Option<String> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let iters: u32 = arg_value(&args, "--iters")
        .and_then(|v| v.parse().ok())
        .unwrap_or(200);
    let out_path = arg_value(&args, "--out");

    let kernel = parse_kernel(
        r#"kernel spin(out: *global f32, x: *global f32, n: i32) {
            let tid: i32 = block_idx_x() * block_dim_x() + thread_idx_x();
            let acc: f32 = 0.0;
            for (i = 0; i < n; i = i + 1) {
                acc = acc + load(x, i) * 1.0001 + 0.5;
            }
            store(out, tid, acc);
        }"#,
    )
    .unwrap();

    // Standing equivalence check: same stats, same memory, every run.
    let (tw_stats, tw_out) = one_launch(&kernel, ExecEngine::TreeWalk);
    let (bc_stats, bc_out) = one_launch(&kernel, ExecEngine::Bytecode);
    assert_eq!(tw_stats, bc_stats, "engines must produce identical stats");
    assert_eq!(tw_out, bc_out, "engines must produce identical output");

    let engines = [ExecEngine::TreeWalk, ExecEngine::Bytecode];
    // Interleave rounds and keep the fastest per engine, so machine drift
    // cancels instead of biasing whichever engine ran last.
    const ROUNDS: u32 = 5;
    let per_round = (iters / ROUNDS).max(1);
    let mut best = [f64::INFINITY; 2];
    for _ in 0..ROUNDS {
        for (i, &e) in engines.iter().enumerate() {
            best[i] = best[i].min(batch(&kernel, e, per_round));
        }
    }
    let speedup = best[0] / best[1];
    for (i, &e) in engines.iter().enumerate() {
        eprintln!("{:>10}: {:>12.0} ns/launch", e.name(), best[i]);
    }
    eprintln!("   speedup: {speedup:>11.2}x");

    let doc = Json::obj([
        ("bench", Json::str("interp_bench")),
        ("kernel", Json::str("spin fp_loop_16x32")),
        ("iters", Json::uint(iters as u64)),
        (
            "results",
            Json::obj([
                (
                    "tree_walk",
                    Json::obj([("ns_per_launch", Json::Num(best[0]))]),
                ),
                (
                    "bytecode",
                    Json::obj([("ns_per_launch", Json::Num(best[1]))]),
                ),
            ]),
        ),
        ("speedup", Json::Num(speedup)),
        ("stats_identical", Json::Bool(true)),
    ]);
    let rendered = format!("{doc}\n");
    match out_path {
        Some(path) => {
            std::fs::write(&path, &rendered).expect("write bench output");
            eprintln!("wrote {path}");
        }
        None => print!("{rendered}"),
    }
}
