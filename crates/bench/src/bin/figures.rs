//! `figures` — regenerate the paper's tables and figures.
//!
//! ```text
//! figures [fig1|fig2|fig3|fig4|fig9|fig10|fig13|fig14|fig15|fig16|alpha|guardian|all]
//!         [--paper]     use larger problem sizes / experiment counts
//!         [--json]      one JSON document instead of text sections
//!         [--engine E]  execution engine: tree-walk, bytecode (default), or batch
//!         [--threads N] pin the campaign worker-thread count (0 = one per core)
//! ```

use hauberk_bench::report::{Emitter, Table};
use hauberk_bench::*;
use hauberk_benchmarks::{hpc_suite, ProblemScale};
use std::env;

struct Cfg {
    scale: ProblemScale,
    big: bool,
}

fn main() {
    let args: Vec<String> = env::args().skip(1).collect();
    let big = args.iter().any(|a| a == "--paper");
    let json = args.iter().any(|a| a == "--json");
    if let Some(v) = args
        .iter()
        .position(|a| a == "--engine")
        .and_then(|i| args.get(i + 1))
    {
        let e = hauberk_sim::ExecEngine::parse(v)
            .unwrap_or_else(|| panic!("unknown engine `{v}` (try tree-walk, bytecode, or batch)"));
        hauberk_sim::set_default_engine(e);
    }
    if let Some(n) = args
        .iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
    {
        rayon::set_thread_count(n);
    }
    let cfg = Cfg {
        scale: if big {
            ProblemScale::Paper
        } else {
            ProblemScale::Quick
        },
        big,
    };
    // `--engine` and `--threads` take values; don't mistake them for
    // figure names.
    let flag_vals: Vec<usize> = ["--engine", "--threads"]
        .iter()
        .filter_map(|f| args.iter().position(|a| a == f).map(|i| i + 1))
        .collect();
    let which: Vec<&str> = args
        .iter()
        .enumerate()
        .filter(|(i, a)| !a.starts_with("--") && !flag_vals.contains(i))
        .map(|(_, s)| s.as_str())
        .collect();
    let which = if which.is_empty() { vec!["all"] } else { which };
    let all = which.contains(&"all");
    let want = |name: &str| all || which.contains(&name);
    let mut em = Emitter::new(json);

    if want("fig1") {
        let masks = if cfg.big { 50 } else { 10 };
        let rows = fig1::run(cfg.scale, masks);
        em.section("fig1", &fig1::render(&rows));
    }
    if want("fig2") {
        em.section("fig2", &fig2::render(&fig2::run(cfg.scale)));
    }
    if want("fig3") {
        let (t, i) = fig3::run(cfg.scale);
        em.section("fig3", &fig3::render(&t, &i));
    }
    if want("fig4") || want("fig13") {
        run_perf(&cfg, &mut em);
    }
    if want("fig9") {
        em.section("fig9", &fig9::run());
    }
    if want("fig10") {
        em.section("fig10", &fig10::render(&fig10::run(cfg.scale)));
    }
    if want("fig14") {
        let (vars, masks) = if cfg.big { (20, 50) } else { (8, 15) };
        let cells = fig14::run(cfg.scale, vars, masks);
        em.section("fig14", &fig14::render(&cells));
    }
    if want("fig15") {
        run_fig15(&cfg, &mut em);
    }
    if want("fig16") {
        let (datasets, reps) = if cfg.big { (52, 10) } else { (24, 5) };
        let (left, right) = fig16::run(cfg.scale, datasets, reps);
        em.section("fig16", &fig16::render(&left, &right));
    }
    if want("alpha") {
        let pts = alpha_cov::run(
            cfg.scale,
            if cfg.big { 12 } else { 8 },
            if cfg.big { 25 } else { 12 },
        );
        em.section("alpha", &alpha_cov::render(&pts));
    }
    if want("guardian") {
        em.section(
            "guardian",
            &guardian_cases::render(&guardian_cases::run(cfg.scale)),
        );
    }
    if want("ablation") {
        em.section("ablation", &ablation::render("MRI-Q"));
    }
    em.finish();
}

fn run_perf(cfg: &Cfg, em: &mut Emitter) {
    let rows = perf::measure_suite(&hpc_suite(cfg.scale));

    let mut t4 = Table::new(
        "Fig. 4 — % of GPU execution time spent in loops",
        &["program", "loop time"],
    );
    for r in &rows {
        t4.row(vec![
            r.program.to_string(),
            report::bar(r.loop_fraction * 100.0, 30),
        ]);
    }
    em.table(&t4);
    let avg_loop = rows.iter().map(|r| r.loop_fraction).sum::<f64>() / rows.len() as f64 * 100.0;
    em.text(format!("average: {avg_loop:.1}% (paper: ~87%)\n"));

    let mut t13 = Table::new(
        "Fig. 13 — normalized performance overhead (%)",
        &[
            "program",
            "R-Naive",
            "R-Scatter",
            "Hauberk-NL",
            "Hauberk-L",
            "Hauberk",
        ],
    );
    for r in &rows {
        t13.row(vec![
            r.program.to_string(),
            format!("{:.1}", r.r_naive),
            r.r_scatter
                .map(|v| format!("{v:.1}"))
                .unwrap_or_else(|| "N/A (shared mem)".into()),
            format!("{:.1}", r.hauberk_nl),
            format!("{:.1}", r.hauberk_l),
            format!("{:.1}", r.hauberk),
        ]);
    }
    em.table(&t13);
    let n = rows.len() as f64;
    let avg = rows.iter().map(|r| r.hauberk).sum::<f64>() / n;
    let ex: Vec<_> = rows.iter().filter(|r| r.program != "RPES").collect();
    let avg_ex = ex.iter().map(|r| r.hauberk).sum::<f64>() / ex.len() as f64;
    em.text(format!(
        "Hauberk average: {avg:.1}% (paper: 15.3%); excluding RPES: {avg_ex:.1}% (paper: 8.9%)\n"
    ));
}

fn run_fig15(cfg: &Cfg, em: &mut Emitter) {
    let samples = if cfg.big { 1_320_000 } else { 40_000 };
    let rows = hauberk_swifi::value_impact::impact_table(
        7,
        &hauberk_swifi::mask::PAPER_BIT_COUNTS,
        samples,
    );
    let mut header = vec!["origin".to_string(), "bits".to_string()];
    header.extend(
        hauberk_swifi::value_impact::IMPACT_BUCKETS
            .iter()
            .map(|(_, _, l)| l.to_string()),
    );
    let hdr: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut t = Table::new(
        format!(
            "Fig. 15 — FP value magnitude change vs. original range and error bits \
             ({samples} samples per cell; columns are change-factor buckets, %)"
        ),
        &hdr,
    );
    for r in &rows {
        let mut row = vec![r.origin.to_string(), r.bits.to_string()];
        row.extend(r.shares.iter().map(|s| format!("{:.1}", s * 100.0)));
        t.row(row);
    }
    em.table(&t);
}
