//! `figures` — regenerate the paper's tables and figures.
//!
//! ```text
//! figures [fig1|fig2|fig3|fig4|fig9|fig10|fig13|fig14|fig15|fig16|alpha|guardian|all]
//!         [--paper]   use larger problem sizes / experiment counts
//! ```

use hauberk_bench::*;
use hauberk_benchmarks::{hpc_suite, ProblemScale};
use std::env;

struct Cfg {
    scale: ProblemScale,
    big: bool,
}

fn main() {
    let args: Vec<String> = env::args().skip(1).collect();
    let big = args.iter().any(|a| a == "--paper");
    let cfg = Cfg {
        scale: if big {
            ProblemScale::Paper
        } else {
            ProblemScale::Quick
        },
        big,
    };
    let which: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(|s| s.as_str())
        .collect();
    let which = if which.is_empty() { vec!["all"] } else { which };
    let all = which.contains(&"all");
    let want = |name: &str| all || which.contains(&name);

    if want("fig1") {
        let masks = if cfg.big { 50 } else { 10 };
        let rows = fig1::run(cfg.scale, masks);
        println!("{}\n", fig1::render(&rows));
    }
    if want("fig2") {
        println!("{}\n", fig2::render(&fig2::run(cfg.scale)));
    }
    if want("fig3") {
        let (t, i) = fig3::run(cfg.scale);
        println!("{}\n", fig3::render(&t, &i));
    }
    if want("fig4") || want("fig13") {
        run_perf(&cfg);
    }
    if want("fig9") {
        println!("{}\n", fig9::run());
    }
    if want("fig10") {
        println!("{}\n", fig10::render(&fig10::run(cfg.scale)));
    }
    if want("fig14") {
        let (vars, masks) = if cfg.big { (20, 50) } else { (8, 15) };
        let cells = fig14::run(cfg.scale, vars, masks);
        println!("{}\n", fig14::render(&cells));
    }
    if want("fig15") {
        run_fig15(&cfg);
    }
    if want("fig16") {
        let (datasets, reps) = if cfg.big { (52, 10) } else { (24, 5) };
        let (left, right) = fig16::run(cfg.scale, datasets, reps);
        println!("{}\n", fig16::render(&left, &right));
    }
    if want("alpha") {
        let pts = alpha_cov::run(
            cfg.scale,
            if cfg.big { 12 } else { 8 },
            if cfg.big { 25 } else { 12 },
        );
        println!("{}\n", alpha_cov::render(&pts));
    }
    if want("guardian") {
        println!(
            "{}\n",
            guardian_cases::render(&guardian_cases::run(cfg.scale))
        );
    }
    if want("ablation") {
        println!("{}\n", ablation::render("MRI-Q"));
    }
}

fn run_perf(cfg: &Cfg) {
    let rows = perf::measure_suite(&hpc_suite(cfg.scale));
    println!("Fig. 4 — % of GPU execution time spent in loops");
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.program.to_string(),
                report::bar(r.loop_fraction * 100.0, 30),
            ]
        })
        .collect();
    println!("{}", report::table(&["program", "loop time"], &body));
    let avg_loop = rows.iter().map(|r| r.loop_fraction).sum::<f64>() / rows.len() as f64 * 100.0;
    println!("average: {avg_loop:.1}% (paper: ~87%)\n");

    println!("Fig. 13 — normalized performance overhead (%)");
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.program.to_string(),
                format!("{:.1}", r.r_naive),
                r.r_scatter
                    .map(|v| format!("{v:.1}"))
                    .unwrap_or_else(|| "N/A (shared mem)".into()),
                format!("{:.1}", r.hauberk_nl),
                format!("{:.1}", r.hauberk_l),
                format!("{:.1}", r.hauberk),
            ]
        })
        .collect();
    println!(
        "{}",
        report::table(
            &[
                "program",
                "R-Naive",
                "R-Scatter",
                "Hauberk-NL",
                "Hauberk-L",
                "Hauberk"
            ],
            &body
        )
    );
    let n = rows.len() as f64;
    let avg = rows.iter().map(|r| r.hauberk).sum::<f64>() / n;
    let ex: Vec<_> = rows.iter().filter(|r| r.program != "RPES").collect();
    let avg_ex = ex.iter().map(|r| r.hauberk).sum::<f64>() / ex.len() as f64;
    println!(
        "Hauberk average: {avg:.1}% (paper: 15.3%); excluding RPES: {avg_ex:.1}% (paper: 8.9%)\n"
    );
}

fn run_fig15(cfg: &Cfg) {
    let samples = if cfg.big { 1_320_000 } else { 40_000 };
    let rows = hauberk_swifi::value_impact::impact_table(
        7,
        &hauberk_swifi::mask::PAPER_BIT_COUNTS,
        samples,
    );
    println!("Fig. 15 — FP value magnitude change vs. original range and error bits");
    println!("({samples} samples per cell; columns are change-factor buckets, %)");
    let mut header = vec!["origin".to_string(), "bits".to_string()];
    header.extend(
        hauberk_swifi::value_impact::IMPACT_BUCKETS
            .iter()
            .map(|(_, _, l)| l.to_string()),
    );
    let hdr: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let mut row = vec![r.origin.to_string(), r.bits.to_string()];
            row.extend(r.shares.iter().map(|s| format!("{:.1}", s * 100.0)));
            row
        })
        .collect();
    println!("{}\n", report::table(&hdr, &body));
}
