//! `telemetry_overhead` — measure what the telemetry layer costs the
//! simulator hot path.
//!
//! Runs the same FP-loop launch (the `sim_throughput` bench kernel) with
//! telemetry disabled, with a [`NullSink`] (span events only), with a
//! `NullSink` plus hot per-hook events, and with an unbounded
//! [`MemorySink`], and reports ns/launch plus overhead relative to the
//! disabled baseline.
//!
//! Two additional modes isolate the tracing-span layer against an *enabled*
//! sink that discards everything: `spans_on` builds and emits a launch span
//! per run, `spans_off` takes the `with_spans(false)` early-out. Their ratio
//! is reported as `span_overhead_pct` (target: < 1%).
//!
//! ```text
//! telemetry_overhead [--iters N] [--out PATH]
//! ```

use hauberk_kir::kernel::KernelDef;
use hauberk_kir::parser::parse_kernel;
use hauberk_kir::{PrimTy, Value};
use hauberk_sim::{Device, Launch, NullRuntime};
use hauberk_telemetry::json::Json;
use hauberk_telemetry::{Event, MemorySink, NullSink, Telemetry, TelemetrySink};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

/// A sink that reports itself enabled but discards every event: the span
/// path runs for real (guard bookkeeping, attribute strings, emit call)
/// without measuring any sink's own storage cost.
#[derive(Debug)]
struct EnabledNullSink;

impl TelemetrySink for EnabledNullSink {
    fn emit(&self, event: &Event) {
        black_box(event);
    }
}

fn one_launch(kernel: &KernelDef, tele: &Telemetry) {
    let mut dev = Device::small_gpu().with_telemetry(tele.clone());
    let out = dev.alloc(PrimTy::F32, 512);
    let x = dev.alloc(PrimTy::F32, 256);
    black_box(dev.launch(
        kernel,
        &[Value::Ptr(out), Value::Ptr(x), Value::I32(256)],
        &Launch::grid1d(16, 32),
        &mut NullRuntime,
    ));
}

/// Time one batch of launches and return mean ns/launch.
fn batch(kernel: &KernelDef, tele: &Telemetry, iters: u32) -> f64 {
    let t = Instant::now();
    for _ in 0..iters {
        one_launch(kernel, tele);
    }
    t.elapsed().as_nanos() as f64 / iters as f64
}

fn arg_value(args: &[String], key: &str) -> Option<String> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let iters: u32 = arg_value(&args, "--iters")
        .and_then(|v| v.parse().ok())
        .unwrap_or(300);
    let out_path = arg_value(&args, "--out");

    let kernel = parse_kernel(
        r#"kernel spin(out: *global f32, x: *global f32, n: i32) {
            let tid: i32 = block_idx_x() * block_dim_x() + thread_idx_x();
            let acc: f32 = 0.0;
            for (i = 0; i < n; i = i + 1) {
                acc = acc + load(x, i) * 1.0001 + 0.5;
            }
            store(out, tid, acc);
        }"#,
    )
    .unwrap();

    let memory = MemorySink::unbounded();
    let modes: Vec<(&str, Telemetry)> = vec![
        ("disabled", Telemetry::disabled()),
        ("null_sink", Telemetry::new(Arc::new(NullSink))),
        (
            "null_sink_hot",
            Telemetry::new(Arc::new(NullSink)).with_hot_events(true),
        ),
        (
            "spans_off",
            Telemetry::new(Arc::new(EnabledNullSink)).with_spans(false),
        ),
        ("spans_on", Telemetry::new(Arc::new(EnabledNullSink))),
        ("memory_sink", Telemetry::new(Arc::new(memory))),
    ];

    // Interleave the modes round-robin and keep each mode's fastest round:
    // back-to-back batches see the same machine state, so slow drift
    // (thermal, scheduler) cancels instead of biasing whichever mode ran
    // last.
    const ROUNDS: u32 = 11;
    let per_round = (iters / ROUNDS).max(1);
    for (_, tele) in &modes {
        one_launch(&kernel, tele); // warm up allocator + caches once per mode
    }
    let mut best = vec![f64::INFINITY; modes.len()];
    for _ in 0..ROUNDS {
        for (i, (_, tele)) in modes.iter().enumerate() {
            best[i] = best[i].min(batch(&kernel, tele, per_round));
        }
    }
    let results: Vec<(&str, f64)> = modes
        .iter()
        .zip(&best)
        .map(|(&(name, _), &ns)| (name, ns))
        .collect();
    for &(name, ns) in &results {
        eprintln!("{name:>14}: {ns:>12.0} ns/launch");
    }

    let baseline = results[0].1;
    let entries: Vec<(String, Json)> = results
        .iter()
        .map(|&(name, ns)| {
            (
                name.to_string(),
                Json::obj([
                    ("ns_per_launch", Json::Num(ns)),
                    ("overhead_pct", Json::Num((ns / baseline - 1.0) * 100.0)),
                ]),
            )
        })
        .collect();
    let ns_of = |name: &str| {
        results
            .iter()
            .find(|(n, _)| *n == name)
            .map(|&(_, ns)| ns)
            .unwrap_or(f64::NAN)
    };
    let span_overhead_pct = (ns_of("spans_on") / ns_of("spans_off") - 1.0) * 100.0;
    eprintln!("span overhead (spans_on vs spans_off): {span_overhead_pct:.2}%");
    let doc = Json::obj([
        ("bench", Json::str("telemetry_overhead")),
        ("kernel", Json::str("spin fp_loop_16x32")),
        ("iters", Json::uint(iters as u64)),
        ("results", Json::Obj(entries.into_iter().collect())),
        ("span_overhead_pct", Json::Num(span_overhead_pct)),
    ]);
    let rendered = format!("{doc}\n");
    match out_path {
        Some(path) => {
            std::fs::write(&path, &rendered).expect("write bench output");
            eprintln!("wrote {path}");
        }
        None => print!("{rendered}"),
    }
}
