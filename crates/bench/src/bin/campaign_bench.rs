//! `campaign_bench` — measure what adaptive sampling saves: run the same
//! pinned-seed sensitivity campaign twice, once as an exhaustive uniform
//! sweep and once with Wilson-interval early stopping at a target CI width,
//! and record the injection-count reduction.
//!
//! The run asserts, as a standing check, that the adaptive campaign needs at
//! most half the injections of the uniform sweep while every stratum it
//! stopped early still meets the target interval width — the claim recorded
//! in `BENCH_campaign.json`.
//!
//! It then prices fault-free prefix checkpointing the same way: the pinned
//! campaign runs once with full re-execution and once from the shared
//! checkpoint, on two paper benchmarks (CP and PNS). The standing checks are
//! that the summaries are byte-identical and that checkpointing cuts the
//! simulated work cycles by at least 2x; the per-benchmark ledgers land in
//! the same `BENCH_campaign.json` under `"checkpoint"`.
//!
//! ```text
//! campaign_bench [--ci-width F] [--min-samples N] [--out PATH]
//! ```

use hauberk_swifi::campaign::{CampaignConfig, CampaignKind};
use hauberk_swifi::orchestrator::{run_orchestrated_campaign, OrchestratorConfig};
use hauberk_swifi::plan::PlanConfig;
use hauberk_swifi::sampler::{ci_width, AdaptiveConfig};
use hauberk_telemetry::json::Json;

fn arg_value(args: &[String], key: &str) -> Option<String> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let target: f64 = arg_value(&args, "--ci-width")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.2);
    let min_samples: u64 = arg_value(&args, "--min-samples")
        .and_then(|v| v.parse().ok())
        .unwrap_or(24);
    let out_path = arg_value(&args, "--out");

    let prog = hauberk_benchmarks::program_by_name("CP", hauberk_benchmarks::ProblemScale::Quick)
        .expect("CP benchmark");
    let cfg = CampaignConfig {
        // Large enough that every stratum holds several times the samples
        // its interval needs — that headroom is what adaptive sampling
        // skips.
        plan: PlanConfig {
            vars_per_program: 20,
            masks_per_var: 80,
            bit_counts: hauberk_swifi::mask::PAPER_BIT_COUNTS.to_vec(),
            scheduler_per_mille: 60,
            register_per_mille: 60,
        },
        ..Default::default()
    };
    let adaptive = AdaptiveConfig {
        ci_width: target,
        z: 1.96,
        min_samples,
    };
    let shard_size = 8; // fine-grained units so stopping tracks the interval

    let uniform = run_orchestrated_campaign(
        prog.as_ref(),
        CampaignKind::Sensitivity,
        &cfg,
        &OrchestratorConfig {
            shard_size,
            ..Default::default()
        },
    )
    .expect("uniform sweep");
    let adapt = run_orchestrated_campaign(
        prog.as_ref(),
        CampaignKind::Sensitivity,
        &cfg,
        &OrchestratorConfig {
            shard_size,
            adaptive: Some(adaptive.clone()),
            ..Default::default()
        },
    )
    .expect("adaptive campaign");

    assert_eq!(
        uniform.executed, uniform.planned,
        "uniform sweep is exhaustive"
    );
    let reduction = uniform.executed as f64 / adapt.executed as f64;
    eprintln!(
        "uniform {} injections, adaptive {} at CI width {target}: {reduction:.2}x reduction",
        uniform.executed, adapt.executed
    );

    // Standing claims: ≥2x fewer injections, and every early-stopped stratum
    // actually met the target width.
    assert!(
        reduction >= 2.0,
        "adaptive sampling must at least halve the injection count \
         ({} vs {})",
        adapt.executed,
        uniform.executed
    );
    let mut strata = Vec::new();
    for (u, a) in uniform.strata.iter().zip(&adapt.strata) {
        assert_eq!(u.stratum, a.stratum);
        let aw = ci_width(&a.counts, adaptive.z);
        let uw = ci_width(&u.counts, adaptive.z);
        if a.stopped_early {
            assert!(
                aw <= target + 1e-9,
                "{}: stopped early at width {aw} > target {target}",
                a.stratum.key()
            );
        }
        strata.push(Json::obj([
            ("stratum", Json::str(a.stratum.key())),
            ("planned", Json::uint(u.planned)),
            ("uniform_executed", Json::uint(u.executed())),
            ("adaptive_executed", Json::uint(a.executed())),
            ("uniform_ci_width", Json::Num(uw)),
            ("adaptive_ci_width", Json::Num(aw)),
            ("stopped_early", Json::Bool(a.stopped_early)),
        ]));
    }

    // Checkpointing: full re-execution vs shared fault-free prefix, on two
    // paper benchmarks. Byte-identity and the ≥2x cycle reduction are
    // standing assertions, not just recorded numbers.
    let mut checkpoint_docs = Vec::new();
    for name in ["CP", "PNS"] {
        let prog =
            hauberk_benchmarks::program_by_name(name, hauberk_benchmarks::ProblemScale::Quick)
                .expect("paper benchmark");
        let ck_cfg = CampaignConfig {
            plan: PlanConfig {
                vars_per_program: 12,
                masks_per_var: 20,
                bit_counts: hauberk_swifi::mask::PAPER_BIT_COUNTS.to_vec(),
                scheduler_per_mille: 60,
                register_per_mille: 60,
            },
            ..Default::default()
        };
        let full = run_orchestrated_campaign(
            prog.as_ref(),
            CampaignKind::Sensitivity,
            &ck_cfg,
            &OrchestratorConfig::default(),
        )
        .expect("full re-execution campaign");
        let ck = run_orchestrated_campaign(
            prog.as_ref(),
            CampaignKind::Sensitivity,
            &ck_cfg,
            &OrchestratorConfig {
                checkpoint: true,
                ..Default::default()
            },
        )
        .expect("checkpointed campaign");
        assert_eq!(
            full.summary_json(),
            ck.summary_json(),
            "{name}: checkpointed summary must be byte-identical"
        );
        assert_eq!(full.summarize(), ck.summarize());
        let stats = ck.checkpoint.as_ref().unwrap_or_else(|| {
            panic!("{name}: checkpoint store must build for the paper benchmarks")
        });
        let cycle_reduction = full.sim_cycles as f64 / ck.sim_cycles.max(1) as f64;
        eprintln!(
            "{name}: full {} cycles, checkpointed {} ({} boundaries, {}/{} spliced): \
             {cycle_reduction:.2}x reduction",
            full.sim_cycles, ck.sim_cycles, stats.boundaries, stats.spliced, stats.injections
        );
        assert!(
            cycle_reduction >= 2.0,
            "{name}: checkpointing must at least halve the simulated cycles \
             ({} vs {})",
            ck.sim_cycles,
            full.sim_cycles
        );
        checkpoint_docs.push(Json::obj([
            ("program", Json::str(format!("{name} quick"))),
            ("planned", Json::uint(full.planned)),
            ("full_cycles", Json::uint(full.sim_cycles)),
            ("checkpoint_cycles", Json::uint(ck.sim_cycles)),
            ("cycle_reduction", Json::Num(cycle_reduction)),
            ("sections", Json::uint(stats.sections)),
            ("boundaries", Json::uint(stats.boundaries)),
            ("injections", Json::uint(stats.injections)),
            ("spliced", Json::uint(stats.spliced)),
            ("reference_cycles", Json::uint(stats.reference_cycles)),
            ("executed_cycles", Json::uint(stats.executed_cycles)),
            ("byte_identical", Json::Bool(true)),
        ]));
    }

    let doc = Json::obj([
        ("bench", Json::str("campaign_bench")),
        ("program", Json::str("CP quick")),
        ("kind", Json::str("sensitivity")),
        ("planned", Json::uint(uniform.planned)),
        ("shard_size", Json::uint(shard_size as u64)),
        ("ci_width_target", Json::Num(target)),
        ("min_samples", Json::uint(min_samples)),
        ("uniform_injections", Json::uint(uniform.executed)),
        ("adaptive_injections", Json::uint(adapt.executed)),
        ("reduction", Json::Num(reduction)),
        ("strata", Json::Arr(strata)),
        ("checkpoint", Json::Arr(checkpoint_docs)),
    ]);
    let rendered = format!("{doc}\n");
    match out_path {
        Some(path) => {
            std::fs::write(&path, &rendered).expect("write bench output");
            eprintln!("wrote {path}");
        }
        None => print!("{rendered}"),
    }
}
