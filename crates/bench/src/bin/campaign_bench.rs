//! `campaign_bench` — measure what adaptive sampling saves: run the same
//! pinned-seed sensitivity campaign twice, once as an exhaustive uniform
//! sweep and once with Wilson-interval early stopping at a target CI width,
//! and record the injection-count reduction.
//!
//! The run asserts, as a standing check, that the adaptive campaign needs at
//! most half the injections of the uniform sweep while every stratum it
//! stopped early still meets the target interval width — the claim recorded
//! in `BENCH_campaign.json`.
//!
//! ```text
//! campaign_bench [--ci-width F] [--min-samples N] [--out PATH]
//! ```

use hauberk_swifi::campaign::{CampaignConfig, CampaignKind};
use hauberk_swifi::orchestrator::{run_orchestrated_campaign, OrchestratorConfig};
use hauberk_swifi::plan::PlanConfig;
use hauberk_swifi::sampler::{ci_width, AdaptiveConfig};
use hauberk_telemetry::json::Json;

fn arg_value(args: &[String], key: &str) -> Option<String> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let target: f64 = arg_value(&args, "--ci-width")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.2);
    let min_samples: u64 = arg_value(&args, "--min-samples")
        .and_then(|v| v.parse().ok())
        .unwrap_or(24);
    let out_path = arg_value(&args, "--out");

    let prog = hauberk_benchmarks::program_by_name("CP", hauberk_benchmarks::ProblemScale::Quick)
        .expect("CP benchmark");
    let cfg = CampaignConfig {
        // Large enough that every stratum holds several times the samples
        // its interval needs — that headroom is what adaptive sampling
        // skips.
        plan: PlanConfig {
            vars_per_program: 20,
            masks_per_var: 80,
            bit_counts: hauberk_swifi::mask::PAPER_BIT_COUNTS.to_vec(),
            scheduler_per_mille: 60,
            register_per_mille: 60,
        },
        ..Default::default()
    };
    let adaptive = AdaptiveConfig {
        ci_width: target,
        z: 1.96,
        min_samples,
    };
    let shard_size = 8; // fine-grained units so stopping tracks the interval

    let uniform = run_orchestrated_campaign(
        prog.as_ref(),
        CampaignKind::Sensitivity,
        &cfg,
        &OrchestratorConfig {
            shard_size,
            ..Default::default()
        },
    )
    .expect("uniform sweep");
    let adapt = run_orchestrated_campaign(
        prog.as_ref(),
        CampaignKind::Sensitivity,
        &cfg,
        &OrchestratorConfig {
            shard_size,
            adaptive: Some(adaptive.clone()),
            ..Default::default()
        },
    )
    .expect("adaptive campaign");

    assert_eq!(
        uniform.executed, uniform.planned,
        "uniform sweep is exhaustive"
    );
    let reduction = uniform.executed as f64 / adapt.executed as f64;
    eprintln!(
        "uniform {} injections, adaptive {} at CI width {target}: {reduction:.2}x reduction",
        uniform.executed, adapt.executed
    );

    // Standing claims: ≥2x fewer injections, and every early-stopped stratum
    // actually met the target width.
    assert!(
        reduction >= 2.0,
        "adaptive sampling must at least halve the injection count \
         ({} vs {})",
        adapt.executed,
        uniform.executed
    );
    let mut strata = Vec::new();
    for (u, a) in uniform.strata.iter().zip(&adapt.strata) {
        assert_eq!(u.stratum, a.stratum);
        let aw = ci_width(&a.counts, adaptive.z);
        let uw = ci_width(&u.counts, adaptive.z);
        if a.stopped_early {
            assert!(
                aw <= target + 1e-9,
                "{}: stopped early at width {aw} > target {target}",
                a.stratum.key()
            );
        }
        strata.push(Json::obj([
            ("stratum", Json::str(a.stratum.key())),
            ("planned", Json::uint(u.planned)),
            ("uniform_executed", Json::uint(u.executed())),
            ("adaptive_executed", Json::uint(a.executed())),
            ("uniform_ci_width", Json::Num(uw)),
            ("adaptive_ci_width", Json::Num(aw)),
            ("stopped_early", Json::Bool(a.stopped_early)),
        ]));
    }

    let doc = Json::obj([
        ("bench", Json::str("campaign_bench")),
        ("program", Json::str("CP quick")),
        ("kind", Json::str("sensitivity")),
        ("planned", Json::uint(uniform.planned)),
        ("shard_size", Json::uint(shard_size as u64)),
        ("ci_width_target", Json::Num(target)),
        ("min_samples", Json::uint(min_samples)),
        ("uniform_injections", Json::uint(uniform.executed)),
        ("adaptive_injections", Json::uint(adapt.executed)),
        ("reduction", Json::Num(reduction)),
        ("strata", Json::Arr(strata)),
    ]);
    let rendered = format!("{doc}\n");
    match out_path {
        Some(path) => {
            std::fs::write(&path, &rendered).expect("write bench output");
            eprintln!("wrote {path}");
        }
        None => print!("{rendered}"),
    }
}
