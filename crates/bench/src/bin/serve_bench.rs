//! `serve_bench` — load-generate against an in-process campaign daemon and
//! record throughput plus p50/p95/p99 latency at several concurrency levels.
//!
//! The daemon is spawned on an ephemeral loopback port with the same code
//! path the `serve` binary uses; each client thread then loops a full
//! submit → poll → result cycle over raw HTTP. Three latencies are measured
//! per job: the `POST /v1/campaigns` round-trip (admission latency), one
//! `GET /v1/campaigns/:id` round-trip (status-read latency, the cheap
//! hot-path request), and the whole submit-to-result turnaround.
//!
//! Two observability measurements ride along: `/metrics` scrape latency in
//! both content types (JSON and Prometheus text exposition, selected via
//! `Accept: text/plain`), and the job turnaround delta between span-on
//! (default) and span-off (`"spans": false`) submissions.
//!
//! A `fleet` ledger closes the run: the same campaign through a coordinator
//! backed by 1, 2, and 3 daemons total (0–2 loopback peers), plus the
//! content-addressed cache — one miss that executes, then repeated
//! identical submissions answered from storage (`cache_hit` quantiles).
//!
//! ```text
//! serve_bench [--jobs N] [--levels 1,4,8] [--workers N] [--out PATH]
//! ```

use hauberk_serve::{Server, ServerConfig};
use hauberk_telemetry::json::Json;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// Small but non-trivial campaign: every job plans, executes, and
/// classifies a few hundred injections.
const JOB_BODY: &str = r#"{"program":"CP","vars":4,"masks":6,"bit_counts":[1]}"#;

fn arg_value(args: &[String], key: &str) -> Option<String> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// One request/response over a fresh connection (the daemon is
/// `Connection: close`). Returns `(status, body)`.
fn request(addr: SocketAddr, raw: String) -> (u16, String) {
    let mut s = TcpStream::connect(addr).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(60))).unwrap();
    s.write_all(raw.as_bytes()).expect("send request");
    let mut buf = Vec::new();
    s.read_to_end(&mut buf).expect("read response");
    let head_end = buf
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("response head");
    let head = std::str::from_utf8(&buf[..head_end]).expect("utf-8 head");
    let status: u16 = head
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status code");
    (
        status,
        String::from_utf8_lossy(&buf[head_end + 4..]).into_owned(),
    )
}

fn get(addr: SocketAddr, path: &str) -> (u16, String) {
    request(addr, format!("GET {path} HTTP/1.1\r\nHost: b\r\n\r\n"))
}

fn get_accept(addr: SocketAddr, path: &str, accept: &str) -> (u16, String) {
    request(
        addr,
        format!("GET {path} HTTP/1.1\r\nHost: b\r\nAccept: {accept}\r\n\r\n"),
    )
}

fn post(addr: SocketAddr, path: &str, body: &str) -> (u16, String) {
    request(
        addr,
        format!(
            "POST {path} HTTP/1.1\r\nHost: b\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        ),
    )
}

fn json_str_field(body: &str, key: &str) -> String {
    hauberk_telemetry::json::parse(body)
        .ok()
        .and_then(|d| d.get(key).and_then(|v| v.as_str().map(String::from)))
        .unwrap_or_else(|| panic!("no `{key}` in {body}"))
}

/// Latencies for one completed job, in nanoseconds.
struct JobSample {
    submit_ns: u64,
    status_ns: u64,
    turnaround_ns: u64,
}

/// Run one full submit → poll → result cycle.
fn run_job(addr: SocketAddr) -> JobSample {
    run_job_body(addr, JOB_BODY)
}

fn run_job_body(addr: SocketAddr, job_body: &str) -> JobSample {
    let t0 = Instant::now();
    let (code, body) = post(addr, "/v1/campaigns", job_body);
    let submit_ns = t0.elapsed().as_nanos() as u64;
    assert_eq!(code, 201, "submit failed: {body}");
    let id = json_str_field(&body, "id");

    let mut status_ns = 0u64;
    loop {
        let ts = Instant::now();
        let (code, body) = get(addr, &format!("/v1/campaigns/{id}"));
        status_ns = status_ns.max(ts.elapsed().as_nanos() as u64);
        assert_eq!(code, 200, "status failed: {body}");
        match json_str_field(&body, "state").as_str() {
            "done" => break,
            "failed" | "canceled" => panic!("job {id} ended badly: {body}"),
            _ => std::thread::sleep(Duration::from_millis(2)),
        }
    }
    let (code, body) = get(addr, &format!("/v1/campaigns/{id}/result"));
    assert_eq!(code, 200, "result failed: {body}");
    let turnaround_ns = t0.elapsed().as_nanos() as u64;
    JobSample {
        submit_ns,
        status_ns,
        turnaround_ns,
    }
}

/// Percentile over a sorted slice (nearest-rank on the closed interval).
fn percentile(sorted: &[u64], p: f64) -> u64 {
    let idx = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx]
}

fn quantiles_ms(mut ns: Vec<u64>) -> Json {
    ns.sort_unstable();
    let ms = |v: u64| v as f64 / 1e6;
    Json::obj([
        ("p50_ms", Json::Num(ms(percentile(&ns, 50.0)))),
        ("p95_ms", Json::Num(ms(percentile(&ns, 95.0)))),
        ("p99_ms", Json::Num(ms(percentile(&ns, 99.0)))),
    ])
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let jobs_per_level: usize = arg_value(&args, "--jobs")
        .and_then(|v| v.parse().ok())
        .unwrap_or(16);
    let workers: usize = arg_value(&args, "--workers")
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    let levels: Vec<usize> = arg_value(&args, "--levels")
        .unwrap_or_else(|| "1,4,8".to_string())
        .split(',')
        .map(|s| s.trim().parse().expect("--levels takes a comma list"))
        .collect();
    let out_path = arg_value(&args, "--out");

    let handle = Server::bind(ServerConfig {
        workers,
        queue_capacity: jobs_per_level * levels.iter().max().copied().unwrap_or(1),
        ..ServerConfig::default()
    })
    .expect("bind daemon")
    .spawn()
    .expect("spawn daemon");
    let addr = handle.addr();
    let (code, _) = get(addr, "/healthz");
    assert_eq!(code, 200, "daemon must be healthy before load");

    let mut level_docs = Vec::new();
    for &concurrency in &levels {
        let t0 = Instant::now();
        let samples: Vec<JobSample> = std::thread::scope(|scope| {
            let threads: Vec<_> = (0..concurrency)
                .map(|worker| {
                    scope.spawn(move || {
                        // Split the level's job count across its clients.
                        let n = jobs_per_level / concurrency
                            + usize::from(worker < jobs_per_level % concurrency);
                        (0..n).map(|_| run_job(addr)).collect::<Vec<_>>()
                    })
                })
                .collect();
            threads
                .into_iter()
                .flat_map(|t| t.join().expect("client thread"))
                .collect()
        });
        let wall = t0.elapsed();
        assert_eq!(samples.len(), jobs_per_level);
        let throughput = samples.len() as f64 / wall.as_secs_f64();
        eprintln!(
            "concurrency {concurrency:3}: {} jobs in {:.2}s = {throughput:.2} jobs/s",
            samples.len(),
            wall.as_secs_f64()
        );
        level_docs.push(Json::obj([
            ("concurrency", Json::uint(concurrency as u64)),
            ("jobs", Json::uint(samples.len() as u64)),
            ("wall_s", Json::Num(wall.as_secs_f64())),
            ("throughput_jobs_per_s", Json::Num(throughput)),
            (
                "submit",
                quantiles_ms(samples.iter().map(|s| s.submit_ns).collect()),
            ),
            (
                "status",
                quantiles_ms(samples.iter().map(|s| s.status_ns).collect()),
            ),
            (
                "turnaround",
                quantiles_ms(samples.iter().map(|s| s.turnaround_ns).collect()),
            ),
        ]));
    }

    // The daemon must come out of the load healthy, with every job done.
    let (code, metrics) = get(addr, "/metrics");
    assert_eq!(code, 200);
    let total = (jobs_per_level * levels.len()) as u64;
    assert!(
        metrics.contains(&format!("\"jobs_done\":{total}")),
        "all {total} jobs must finish: {metrics}"
    );

    // /metrics scrape latency, JSON document vs Prometheus text exposition.
    const SCRAPES: usize = 60;
    let scrape = |accept: &str, must_contain: &str| -> Json {
        let samples: Vec<u64> = (0..SCRAPES)
            .map(|_| {
                let t = Instant::now();
                let (code, body) = get_accept(addr, "/metrics", accept);
                let ns = t.elapsed().as_nanos() as u64;
                assert_eq!(code, 200);
                assert!(body.contains(must_contain), "{accept} scrape: {body}");
                ns
            })
            .collect();
        quantiles_ms(samples)
    };
    let scrape_json = scrape("application/json", "\"jobs_done\"");
    let scrape_prom = scrape("text/plain", "# TYPE queue_depth gauge");
    eprintln!("metrics scrape: json {scrape_json} prometheus {scrape_prom}");

    // Span-on vs span-off turnaround, interleaved single-client so slow
    // machine drift cancels instead of biasing one mode.
    let span_jobs = jobs_per_level.clamp(4, 16);
    let span_off_body = r#"{"program":"CP","vars":4,"masks":6,"bit_counts":[1],"spans":false}"#;
    let (mut on_ns, mut off_ns) = (Vec::new(), Vec::new());
    for _ in 0..span_jobs {
        on_ns.push(run_job_body(addr, JOB_BODY).turnaround_ns);
        off_ns.push(run_job_body(addr, span_off_body).turnaround_ns);
    }
    on_ns.sort_unstable();
    off_ns.sort_unstable();
    let span_delta_pct =
        (percentile(&on_ns, 50.0) as f64 / percentile(&off_ns, 50.0) as f64 - 1.0) * 100.0;
    eprintln!("span-on vs span-off turnaround (p50): {span_delta_pct:+.2}%");
    handle.shutdown();

    // Fleet ledger: the same campaign submitted to a coordinator over 0, 1,
    // and 2 loopback peer daemons (1/2/3 daemons total). Sequential single
    // client — the fleet parallelism under test is *inside* each campaign.
    let fleet_jobs = jobs_per_level.clamp(4, 8);
    let mut fleet_docs = Vec::new();
    for extra_peers in 0..3usize {
        let peers: Vec<_> = (0..extra_peers)
            .map(|_| {
                Server::bind(ServerConfig {
                    workers,
                    ..ServerConfig::default()
                })
                .expect("bind peer")
                .spawn()
                .expect("spawn peer")
            })
            .collect();
        let coord = Server::bind(ServerConfig {
            workers,
            queue_capacity: fleet_jobs.max(4),
            peers: peers.iter().map(|p| p.addr().to_string()).collect(),
            ..ServerConfig::default()
        })
        .expect("bind coordinator")
        .spawn()
        .expect("spawn coordinator");
        let caddr = coord.addr();
        let t0 = Instant::now();
        let turnarounds: Vec<u64> = (0..fleet_jobs)
            .map(|_| run_job(caddr).turnaround_ns)
            .collect();
        let wall = t0.elapsed();
        let throughput = fleet_jobs as f64 / wall.as_secs_f64();
        eprintln!(
            "fleet {} daemon(s): {fleet_jobs} jobs in {:.2}s = {throughput:.2} jobs/s",
            extra_peers + 1,
            wall.as_secs_f64()
        );
        fleet_docs.push(Json::obj([
            ("daemons", Json::uint(extra_peers as u64 + 1)),
            ("jobs", Json::uint(fleet_jobs as u64)),
            ("wall_s", Json::Num(wall.as_secs_f64())),
            ("throughput_jobs_per_s", Json::Num(throughput)),
            ("turnaround", quantiles_ms(turnarounds)),
        ]));
        coord.shutdown();
        for p in peers {
            p.shutdown();
        }
    }

    // Cache-hit latency: one executed miss warms the store, then identical
    // submissions are answered without re-execution.
    let cache_daemon = Server::bind(ServerConfig {
        workers,
        ..ServerConfig::default()
    })
    .expect("bind cache daemon")
    .spawn()
    .expect("spawn cache daemon");
    let caddr = cache_daemon.addr();
    let cache_body = r#"{"program":"CP","vars":4,"masks":6,"bit_counts":[1],"cache":true}"#;
    run_job_body(caddr, cache_body); // the miss: executes and stores
    let hit_ns: Vec<u64> = (0..30)
        .map(|_| {
            let t = Instant::now();
            let (code, body) = post(caddr, "/v1/campaigns", cache_body);
            let ns = t.elapsed().as_nanos() as u64;
            assert_eq!(code, 201, "cache-hit submit failed: {body}");
            assert!(body.contains("\"cached\":true"), "expected a hit: {body}");
            ns
        })
        .collect();
    let cache_hit = quantiles_ms(hit_ns);
    eprintln!("cache hit submit latency: {cache_hit}");
    cache_daemon.shutdown();

    let doc = Json::obj([
        ("bench", Json::str("serve_bench")),
        ("job_body", Json::str(JOB_BODY)),
        ("daemon_workers", Json::uint(workers as u64)),
        ("jobs_per_level", Json::uint(jobs_per_level as u64)),
        ("levels", Json::Arr(level_docs)),
        (
            "metrics_scrape",
            Json::obj([("json", scrape_json), ("prometheus", scrape_prom)]),
        ),
        (
            "span_toggle",
            Json::obj([
                ("jobs_per_mode", Json::uint(span_jobs as u64)),
                ("span_on_turnaround", quantiles_ms(on_ns)),
                ("span_off_turnaround", quantiles_ms(off_ns)),
                ("p50_delta_pct", Json::Num(span_delta_pct)),
            ]),
        ),
        (
            "fleet",
            Json::obj([
                ("jobs_per_size", Json::uint(fleet_jobs as u64)),
                ("sizes", Json::Arr(fleet_docs)),
                (
                    "cache_hit",
                    Json::obj([("hits", Json::uint(30)), ("submit", cache_hit)]),
                ),
            ]),
        ),
    ]);
    let rendered = format!("{doc}\n");
    match out_path {
        Some(path) => {
            std::fs::write(&path, &rendered).expect("write bench output");
            eprintln!("wrote {path}");
        }
        None => print!("{rendered}"),
    }
}
