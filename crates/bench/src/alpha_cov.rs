//! §IX.C — the impact of the `alpha` range widening on detection coverage:
//! widening by up to ~10³ costs almost nothing (faults change FP values by
//! orders of magnitude, Fig. 15), while very large factors (10⁴, 10⁵) start
//! letting smaller corruptions escape.

use crate::report;
use hauberk::builds::FtOptions;
use hauberk_benchmarks::{program_by_name, ProblemScale};
use hauberk_swifi::campaign::{run_coverage_campaign, CampaignConfig};
use hauberk_swifi::plan::PlanConfig;

/// The alpha values of the paper's sweep.
pub const ALPHAS: [f64; 4] = [1.0, 1e3, 1e4, 1e5];

/// One sweep point.
#[derive(Debug, Clone)]
pub struct AlphaPoint {
    /// Widening factor.
    pub alpha: f64,
    /// Measured coverage.
    pub coverage: f64,
}

/// Run the sweep on MRI-FHD.
pub fn run(scale: ProblemScale, vars: usize, masks: usize) -> Vec<AlphaPoint> {
    let prog = program_by_name("MRI-FHD", scale).expect("MRI-FHD exists");
    ALPHAS
        .iter()
        .map(|&alpha| {
            let cfg = CampaignConfig {
                plan: PlanConfig {
                    vars_per_program: vars,
                    masks_per_var: masks,
                    bit_counts: vec![1, 3, 6],
                    scheduler_per_mille: 0,
                    register_per_mille: 0,
                },
                alpha,
                ..Default::default()
            };
            let r = run_coverage_campaign(prog.as_ref(), FtOptions::default(), &cfg);
            AlphaPoint {
                alpha,
                coverage: r.coverage(),
            }
        })
        .collect()
}

/// Render the sweep.
pub fn render(points: &[AlphaPoint]) -> String {
    let mut out = String::from(
        "§IX.C — MRI-FHD detection coverage vs. alpha (paper: 95 / 95 / 82.8 / 81.6%)\n",
    );
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| vec![format!("{:.0}", p.alpha), report::pct(p.coverage)])
        .collect();
    out.push_str(&report::table(&["alpha", "coverage %"], &rows));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn moderate_alpha_is_cheap_huge_alpha_costs_coverage() {
        let pts = run(ProblemScale::Quick, 6, 9);
        let cov = |a: f64| pts.iter().find(|p| p.alpha == a).unwrap().coverage;
        // alpha = 1000 loses little coverage relative to alpha = 1. The
        // margin must absorb sampling noise: at this Quick scale each point
        // is only 162 injections, so the coverage difference has a standard
        // error of ~0.045 and a tight bound flakes across RNG streams.
        assert!(
            cov(1e3) >= cov(1.0) - 0.12,
            "alpha=1e3: {:.3} vs alpha=1: {:.3}",
            cov(1e3),
            cov(1.0)
        );
        // ... and coverage is non-increasing in alpha overall.
        assert!(cov(1e5) <= cov(1.0) + 1e-9);
        assert!(
            cov(1e5) <= cov(1e3),
            "very large alpha lets more SDCs escape: {:.3} vs {:.3}",
            cov(1e5),
            cov(1e3)
        );
    }
}
