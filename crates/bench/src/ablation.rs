//! Ablation studies of the design choices DESIGN.md calls out:
//!
//! * **`Maxvar`** — how many loop variables to protect: coverage vs.
//!   overhead (the paper's tunable, §V.B step i).
//! * **Dual-issue pairing** — the cost-model mechanism behind Hauberk's
//!   cheap in-loop instructions; disabling it shows how much of the
//!   overhead story depends on it.
//! * **`PROFILE_MARGIN`** — the finite-sample range inflation: its effect
//!   on fault-free false positives across fresh datasets.

use crate::report;
use hauberk::builds::{build, r_naive_cycles, BuildVariant, FtOptions};
use hauberk::program::{run_program, HostProgram};
use hauberk::ranges::{profile_ranges, profile_ranges_unpadded, RangeSet};
use hauberk::runtime::{FtRuntime, ProfilerRuntime};
use hauberk::ControlBlock;
use hauberk_benchmarks::{program_by_name, ProblemScale};
use hauberk_sim::{Device, LaunchOutcome, NullRuntime};
use hauberk_swifi::campaign::{run_coverage_campaign, CampaignConfig};
use hauberk_swifi::plan::PlanConfig;

/// One Maxvar sweep point.
#[derive(Debug, Clone)]
pub struct MaxvarPoint {
    /// Protected variables per loop.
    pub max_var: usize,
    /// Detection coverage.
    pub coverage: f64,
    /// Hauberk overhead (%).
    pub overhead: f64,
    /// Detectors actually placed.
    pub detectors: usize,
}

fn trained(prog: &dyn HostProgram, opts: FtOptions) -> Vec<RangeSet> {
    let profiler = build(&prog.build_kernel(), BuildVariant::Profiler(opts)).unwrap();
    let mut pr = ProfilerRuntime::default();
    let run = run_program(prog, &profiler.kernel, 0, &mut pr, u64::MAX);
    assert!(run.outcome.is_completed());
    (0..profiler.detectors.len())
        .map(|d| profile_ranges(pr.samples(d as u32)))
        .collect()
}

fn overhead_pct(prog: &dyn HostProgram, opts: FtOptions, ranges: &[RangeSet]) -> f64 {
    let base_run = run_program(prog, &prog.build_kernel(), 0, &mut NullRuntime, u64::MAX);
    let base = base_run.outcome.completed_stats().unwrap().kernel_cycles;
    let ft = build(&prog.build_kernel(), BuildVariant::Ft(opts)).unwrap();
    let mut rt = FtRuntime::new(ControlBlock::with_ranges(ranges.to_vec()));
    match run_program(prog, &ft.kernel, 0, &mut rt, u64::MAX).outcome {
        LaunchOutcome::Completed(s) => {
            assert!(!rt.cb.sdc_flag);
            (s.kernel_cycles as f64 / base as f64 - 1.0) * 100.0
        }
        other => panic!("{other:?}"),
    }
}

/// Sweep `Maxvar` on one program.
pub fn maxvar_sweep(name: &str, masks: usize) -> Vec<MaxvarPoint> {
    let prog = program_by_name(name, ProblemScale::Quick).expect("known program");
    (1..=4usize)
        .map(|max_var| {
            let opts = FtOptions {
                nonloop: true,
                loops: true,
                max_var,
            };
            let ranges = trained(prog.as_ref(), opts);
            let overhead = overhead_pct(prog.as_ref(), opts, &ranges);
            let cfg = CampaignConfig {
                plan: PlanConfig {
                    vars_per_program: 10,
                    masks_per_var: masks,
                    bit_counts: vec![1, 3, 6],
                    scheduler_per_mille: 0,
                    register_per_mille: 0,
                },
                ..Default::default()
            };
            let r = run_coverage_campaign(prog.as_ref(), opts, &cfg);
            MaxvarPoint {
                max_var,
                coverage: r.coverage(),
                overhead,
                detectors: r.detectors,
            }
        })
        .collect()
}

/// Measured effect of disabling dual-issue pairing on the Fig. 13 story:
/// returns (hauberk overhead %, r-scatter overhead %) with and without
/// pairing, for one program.
pub fn dual_issue_ablation(name: &str) -> [(bool, f64, f64); 2] {
    let prog = program_by_name(name, ProblemScale::Quick).expect("known program");
    let prog = prog.as_ref();
    let mut out = [(true, 0.0, 0.0), (false, 0.0, 0.0)];
    for (i, dual) in [true, false].into_iter().enumerate() {
        let mut cfg = prog.device_config();
        cfg.cost.dual_issue = dual;
        let run_cycles =
            |kernel: &hauberk_kir::KernelDef, rt: &mut dyn hauberk_sim::HookRuntime| -> u64 {
                let mut dev = Device::new(cfg.clone());
                let args = prog.setup(&mut dev, 0);
                let launch = prog.launch();
                match dev.launch(kernel, &args, &launch, rt) {
                    LaunchOutcome::Completed(s) => s.kernel_cycles,
                    other => panic!("{other:?}"),
                }
            };
        let base = run_cycles(&prog.build_kernel(), &mut NullRuntime);
        let ranges = trained(prog, FtOptions::default());
        let ft = build(&prog.build_kernel(), BuildVariant::Ft(FtOptions::default())).unwrap();
        let mut rt = FtRuntime::new(ControlBlock::with_ranges(ranges));
        let hauberk = run_cycles(&ft.kernel, &mut rt) as f64 / base as f64 * 100.0 - 100.0;
        let rs = build(&prog.build_kernel(), BuildVariant::RScatter).unwrap();
        let rscatter =
            run_cycles(&rs.kernel, &mut NullRuntime) as f64 / base as f64 * 100.0 - 100.0;
        out[i] = (dual, hauberk, rscatter);
    }
    let _ = r_naive_cycles(1); // keep the baseline helper linked/documented
    out
}

/// Fault-free false-positive count across fresh datasets, with and without
/// the finite-sample profile margin.
pub fn margin_ablation(name: &str, train_sets: usize, test_sets: usize) -> [(bool, usize); 2] {
    let prog = program_by_name(name, ProblemScale::Quick).expect("known program");
    let prog = prog.as_ref();
    let profiler = build(
        &prog.build_kernel(),
        BuildVariant::Profiler(FtOptions::default()),
    )
    .unwrap();
    let n_det = profiler.detectors.len();

    // Per-dataset samples.
    let sample_sets: Vec<Vec<Vec<f64>>> = (0..(train_sets + test_sets) as u64)
        .map(|ds| {
            let mut pr = ProfilerRuntime::default();
            let run = run_program(prog, &profiler.kernel, ds, &mut pr, u64::MAX);
            assert!(run.outcome.is_completed());
            (0..n_det).map(|d| pr.samples(d as u32).to_vec()).collect()
        })
        .collect();

    let mut out = [(true, 0usize), (false, 0usize)];
    for (i, padded) in [true, false].into_iter().enumerate() {
        let mut merged = vec![RangeSet::default(); n_det];
        for set in sample_sets.iter().take(train_sets) {
            for d in 0..n_det {
                let rs = if padded {
                    profile_ranges(&set[d])
                } else {
                    profile_ranges_unpadded(&set[d])
                };
                merged[d].merge(&rs);
            }
        }
        let mut fp = 0;
        for set in sample_sets.iter().skip(train_sets).take(test_sets) {
            let alarm = (0..n_det).any(|d| set[d].iter().any(|v| !merged[d].contains(*v)));
            if alarm {
                fp += 1;
            }
        }
        out[i] = (padded, fp);
    }
    out
}

/// Render all three ablations for the report.
pub fn render(program: &str) -> String {
    let mut out = format!("Ablations on {program}\n\n");

    out.push_str("Maxvar sweep (coverage vs overhead):\n");
    let rows: Vec<Vec<String>> = maxvar_sweep(program, 8)
        .into_iter()
        .map(|p| {
            vec![
                p.max_var.to_string(),
                p.detectors.to_string(),
                report::pct(p.coverage),
                format!("{:.1}", p.overhead),
            ]
        })
        .collect();
    out.push_str(&report::table(
        &["Maxvar", "detectors", "coverage %", "overhead %"],
        &rows,
    ));

    out.push_str("\nDual-issue pairing (the overhead mechanism):\n");
    let rows: Vec<Vec<String>> = dual_issue_ablation(program)
        .into_iter()
        .map(|(dual, h, rs)| vec![dual.to_string(), format!("{h:.1}"), format!("{rs:.1}")])
        .collect();
    out.push_str(&report::table(
        &["dual-issue", "Hauberk %", "R-Scatter %"],
        &rows,
    ));

    out.push_str("\nProfile margin on PNS (false positives over 6 fresh datasets):\n");
    let rows: Vec<Vec<String>> = margin_ablation("PNS", 6, 6)
        .into_iter()
        .map(|(padded, fp)| vec![padded.to_string(), fp.to_string()])
        .collect();
    out.push_str(&report::table(&["margin", "false positives"], &rows));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maxvar_trades_overhead_for_coverage() {
        let pts = maxvar_sweep("MRI-Q", 6);
        assert_eq!(pts.len(), 4);
        // More protected variables never place fewer detectors and never
        // get cheaper.
        for w in pts.windows(2) {
            assert!(w[1].detectors >= w[0].detectors);
            assert!(w[1].overhead >= w[0].overhead - 0.2);
        }
        // The second accumulator matters for MRI-Q.
        assert!(
            pts[1].coverage >= pts[0].coverage,
            "Maxvar=2 ({:.2}) >= Maxvar=1 ({:.2})",
            pts[1].coverage,
            pts[0].coverage
        );
    }

    #[test]
    fn disabling_dual_issue_raises_hauberk_overhead() {
        let r = dual_issue_ablation("CP");
        let (_, h_on, rs_on) = r[0];
        let (_, h_off, _) = r[1];
        assert!(
            h_off > h_on,
            "pairing is what makes the in-loop adds cheap: {h_off:.1} vs {h_on:.1}"
        );
        assert!(rs_on > 40.0, "R-Scatter stays expensive either way");
    }

    #[test]
    fn margin_reduces_false_positives_on_stable_programs() {
        let r = margin_ablation("PNS", 6, 6);
        let (_, fp_padded) = r[0];
        let (_, fp_raw) = r[1];
        assert!(
            fp_padded <= fp_raw,
            "padding can only reduce false positives: {fp_padded} vs {fp_raw}"
        );
    }
}
