//! Fig. 14 — error-detection coverage of Hauberk per benchmark and error-bit
//! count, in the paper's five-way outcome taxonomy.

use crate::report;
use hauberk::builds::FtOptions;
use hauberk_benchmarks::{hpc_suite, ProblemScale};
use hauberk_swifi::campaign::{run_coverage_campaign, CampaignConfig};
use hauberk_swifi::classify::FiOutcome;
use hauberk_swifi::mask::PAPER_BIT_COUNTS;
use hauberk_swifi::plan::PlanConfig;
use hauberk_swifi::stats::{by_bits, multi_fault_coverage, OutcomeCounts};

/// One (program, bit-count) cell.
#[derive(Debug, Clone)]
pub struct Fig14Cell {
    /// Program name.
    pub program: &'static str,
    /// Error-mask bit count.
    pub bits: u32,
    /// Outcome counts.
    pub counts: OutcomeCounts,
}

/// Run the coverage study. `masks_per_var` experiments per selected
/// variable, cycling through the paper's bit counts.
pub fn run(scale: ProblemScale, vars_per_program: usize, masks_per_var: usize) -> Vec<Fig14Cell> {
    let mut cells = Vec::new();
    for prog in hpc_suite(scale) {
        let cfg = CampaignConfig {
            plan: PlanConfig {
                vars_per_program,
                masks_per_var,
                bit_counts: PAPER_BIT_COUNTS.to_vec(),
                scheduler_per_mille: 60,
                register_per_mille: 60,
            },
            ..Default::default()
        };
        let r = run_coverage_campaign(prog.as_ref(), FtOptions::default(), &cfg);
        for (bits, counts) in by_bits(&r.results) {
            cells.push(Fig14Cell {
                program: r.program,
                bits,
                counts,
            });
        }
    }
    cells
}

/// Average outcome ratios for one bit count across programs.
pub fn average_for_bits(cells: &[Fig14Cell], bits: u32) -> OutcomeCounts {
    let mut agg = OutcomeCounts::default();
    for c in cells.iter().filter(|c| c.bits == bits) {
        agg.merge(&c.counts);
    }
    agg
}

/// Render the figure plus the headline coverage numbers.
pub fn render(cells: &[Fig14Cell]) -> String {
    let mut out = String::from("Fig. 14 — error detection coverage of Hauberk\n");
    let body: Vec<Vec<String>> = cells
        .iter()
        .map(|c| {
            vec![
                c.program.to_string(),
                c.bits.to_string(),
                report::pct(c.counts.ratio(FiOutcome::Failure)),
                report::pct(c.counts.ratio(FiOutcome::Masked)),
                report::pct(c.counts.ratio(FiOutcome::DetectedMasked)),
                report::pct(c.counts.ratio(FiOutcome::Detected)),
                report::pct(c.counts.ratio(FiOutcome::Undetected)),
                c.counts.total().to_string(),
            ]
        })
        .collect();
    out.push_str(&report::table(
        &[
            "program",
            "bits",
            "failure %",
            "masked %",
            "det&masked %",
            "detected %",
            "undetected %",
            "n",
        ],
        &body,
    ));

    let mut overall = OutcomeCounts::default();
    for c in cells {
        overall.merge(&c.counts);
    }
    let single = average_for_bits(cells, 1);
    out.push_str(&format!(
        "\naverage detection coverage: {:.1}% (SDC escape {:.1}%)\n",
        overall.coverage() * 100.0,
        overall.sdc_ratio() * 100.0
    ));
    out.push_str(&format!(
        "single-bit averages: failure {:.1}%, masked {:.1}%, det&masked {:.1}%, detected {:.1}%, undetected {:.1}%\n",
        single.ratio(FiOutcome::Failure) * 100.0,
        single.ratio(FiOutcome::Masked) * 100.0,
        single.ratio(FiOutcome::DetectedMasked) * 100.0,
        single.ratio(FiOutcome::Detected) * 100.0,
        single.ratio(FiOutcome::Undetected) * 100.0,
    ));
    out.push_str(&format!(
        "two-independent-fault coverage: {:.1}% (paper: 1-(1-0.868)^2 = 98.3%)\n",
        multi_fault_coverage(overall.coverage(), 2) * 100.0
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig14_coverage_and_multibit_trends() {
        // Small campaign: 7 programs x 6 vars x 10 masks (+scheduler).
        let cells = run(ProblemScale::Quick, 6, 10);
        let mut overall = OutcomeCounts::default();
        for c in &cells {
            overall.merge(&c.counts);
        }
        assert!(
            overall.coverage() > 0.75,
            "headline coverage (paper ~86.8%): {:.3}",
            overall.coverage()
        );

        // Multi-bit faults fail more and mask less than single-bit faults.
        let one = average_for_bits(&cells, 1);
        let fifteen = average_for_bits(&cells, 15);
        assert!(
            fifteen.ratio(FiOutcome::Masked) < one.ratio(FiOutcome::Masked),
            "masked: 15-bit {:.2} < 1-bit {:.2}",
            fifteen.ratio(FiOutcome::Masked),
            one.ratio(FiOutcome::Masked)
        );
        assert!(
            fifteen.ratio(FiOutcome::Failure) >= one.ratio(FiOutcome::Failure),
            "failures grow with bit count"
        );
    }
}
