//! Fig. 9 — the dataflow graph of the coulombic-potential loop, with the
//! cumulative backward dataflow dependencies that drive protection-target
//! selection, plus the generated detector code (the paper's §V.B listing).

use hauberk::builds::{build, BuildVariant, FtOptions};
use hauberk::program::HostProgram;
use hauberk_benchmarks::cp::Cp;
use hauberk_benchmarks::ProblemScale;
use hauberk_kir::analysis::{render_dataflow, select_protection_targets, LoopDataflow};
use hauberk_kir::printer::print_kernel;

/// Produce the Fig. 9 report: the dataflow graph, the selected protection
/// target, and the instrumented loop code.
pub fn run() -> String {
    let prog = Cp::new(ProblemScale::Quick);
    let kernel = prog.build_kernel();
    let loop_stmt = kernel
        .body
        .0
        .iter()
        .find(|s| s.is_loop())
        .expect("CP has a loop");
    let df = LoopDataflow::of(&kernel, loop_stmt);
    let mut out = String::from("Fig. 9 — CP loop dataflow and detector derivation\n\n");
    out.push_str(&render_dataflow(&kernel, &df));

    let iterator = kernel.var_by_name("atomid");
    let sel = select_protection_targets(&kernel, &df, iterator, 1);
    out.push_str(&format!(
        "\nselected protection target (Maxvar=1): {}\n",
        sel.iter()
            .map(|v| kernel.vars[*v as usize].name.clone())
            .collect::<Vec<_>>()
            .join(", ")
    ));

    let ft = build(&kernel, BuildVariant::Ft(FtOptions::l_only())).expect("FT build");
    out.push_str("\ninstrumented kernel (Hauberk-L):\n");
    out.push_str(&print_kernel(&ft.kernel));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig9_report_contains_selection_and_checks() {
        let r = run();
        assert!(r.contains("energyx1"));
        assert!(r.contains("energyx2"));
        assert!(r.contains("self-accumulating"));
        // One of the self-accumulating energies is selected.
        assert!(r.contains("selected protection target (Maxvar=1): energyx"));
        assert!(r.contains("@check_range"));
        assert!(r.contains("@check_equal"));
        // The counter increments inside the loop body: two added additions.
        assert!(r.contains("__cnt_0 = __cnt_0 + 1;"));
    }

    #[test]
    fn energyx2_has_strictly_larger_dependency_than_energyx1() {
        let prog = Cp::new(ProblemScale::Quick);
        let kernel = prog.build_kernel();
        let loop_stmt = kernel.body.0.iter().find(|s| s.is_loop()).unwrap();
        let df = LoopDataflow::of(&kernel, loop_stmt);
        let e1 = kernel.var_by_name("energyx1").unwrap();
        let e2 = kernel.var_by_name("energyx2").unwrap();
        // The paper counts 12 vs 13; the exact numbers depend on temporary
        // naming, but the strict ordering is the load-bearing property.
        assert!(df.cumulative_backward(e2) > df.cumulative_backward(e1));
    }
}
