//! §IX.B — the failure cases only the guardian catches: GPU kernel hangs
//! from corrupted control state, undetectable by R-Naïve or R-Scatter
//! (re-executing a hung kernel hangs again; duplicated computation inside a
//! hung kernel never reaches its comparison).
//!
//! * **Corrupted loop iterator** — a sign-flipped iterator makes a counting
//!   loop run ~2³¹ iterations.
//! * **TPACF's corrupted write address** — the write-and-verify retry loop
//!   spins forever when the corrupted histogram address lands in unallocated
//!   memory, where "the corrupted address never returns the write requested
//!   value".

use hauberk::builds::{build, BuildVariant};
use hauberk::program::{run_program, HostProgram};
use hauberk::runtime::FiRuntime;
use hauberk_benchmarks::{cp::Cp, tpacf::Tpacf, ProblemScale};
use hauberk_sim::fault::{ArmedFault, FaultSite};
use hauberk_sim::LaunchOutcome;

/// One demonstrated hang case.
#[derive(Debug, Clone)]
pub struct HangCase {
    /// Scenario label.
    pub label: &'static str,
    /// Whether the un-guarded kernel hung (budget exhausted).
    pub hangs: bool,
    /// Cycles burned before the watchdog cut it off.
    pub cycles_at_kill: u64,
    /// The fault-free kernel time for comparison.
    pub golden_cycles: u64,
}

/// The corrupted-loop-iterator case on CP: flip the iterator's sign bit so
/// `atomid < natoms` stays true for ~2³¹ iterations.
pub fn iterator_hang(scale: ProblemScale) -> HangCase {
    let prog = Cp::new(scale);
    let base = prog.build_kernel();
    let fi = build(&base, BuildVariant::Fi).expect("FI build");
    let (_, golden_cycles) = hauberk::program::golden_run(&prog, 0);
    let loop_site = fi.fi.loops.first().expect("CP has a loop");
    let fault = ArmedFault {
        site: FaultSite::LoopIterator {
            loop_id: loop_site.loop_id,
        },
        thread: 0,
        occurrence: 3,
        mask: 1 << 31, // sign flip: iterator becomes hugely negative
    };
    let budget = golden_cycles * 10;
    let mut rt = FiRuntime::new(Some(fault));
    let run = run_program(&prog, &fi.kernel, 0, &mut rt, budget);
    HangCase {
        label: "CP: corrupted loop iterator (sign flip)",
        hangs: matches!(run.outcome, LaunchOutcome::Hang { .. }),
        cycles_at_kill: run.outcome.stats().work_cycles,
        golden_cycles,
    }
}

/// The TPACF write-retry case: corrupt the histogram bin index into
/// unallocated memory; the verify read never observes the written value.
pub fn tpacf_retry_hang(scale: ProblemScale) -> HangCase {
    let prog = Tpacf::new(scale);
    let base = prog.build_kernel();
    let fi = build(&base, BuildVariant::Fi).expect("FI build");
    let (_, golden_cycles) = hauberk::program::golden_run(&prog, 0);
    // Corrupt the *final* definition of the bin index (after the clamp),
    // right before the write-and-verify loop uses it as an address.
    let bin_site = fi
        .fi
        .sites
        .iter()
        .rfind(|s| s.var_name == "bin" && s.in_loop)
        .expect("TPACF has the bin variable");
    let fault = ArmedFault {
        site: FaultSite::HookTarget {
            site: bin_site.site,
        },
        thread: 7,
        occurrence: 10,
        // Push the bin index deep into unallocated address space (still
        // inside the device's mapped range, so no crash — just lost writes).
        mask: 1 << 16,
    };
    let budget = golden_cycles * 10;
    let mut rt = FiRuntime::new(Some(fault));
    let run = run_program(&prog, &fi.kernel, 0, &mut rt, budget);
    HangCase {
        label: "TPACF: corrupted write address in the write-and-verify loop",
        hangs: matches!(run.outcome, LaunchOutcome::Hang { .. }),
        cycles_at_kill: run.outcome.stats().work_cycles,
        golden_cycles,
    }
}

/// Both cases, plus a demonstration that the guardian recovers the TPACF
/// case end-to-end on a transiently faulty device.
pub fn run(scale: ProblemScale) -> Vec<HangCase> {
    vec![iterator_hang(scale), tpacf_retry_hang(scale)]
}

/// Render the cases.
pub fn render(cases: &[HangCase]) -> String {
    let mut out = String::from(
        "§IX.B — hang/delay failures detected only by the guardian watchdog\n\
         (R-Naïve re-executes the hang; R-Scatter's in-kernel comparison is never reached)\n\n",
    );
    for c in cases {
        out.push_str(&format!(
            "{}\n  hangs: {} (killed after {} cycles; fault-free run: {} cycles)\n",
            c.label, c.hangs, c.cycles_at_kill, c.golden_cycles
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hauberk::builds::FtOptions;
    use hauberk_guardian::{
        Cluster, FaultRegime, Guardian, GuardianConfig, GuardianEvent, ManagedGpu, RecoveryOutcome,
    };

    #[test]
    fn corrupted_iterator_hangs_cp() {
        let c = iterator_hang(ProblemScale::Quick);
        assert!(c.hangs, "{c:?}");
        assert!(c.cycles_at_kill >= c.golden_cycles * 9);
    }

    #[test]
    fn corrupted_write_address_hangs_tpacf() {
        let c = tpacf_retry_hang(ProblemScale::Quick);
        assert!(c.hangs, "{c:?}");
    }

    #[test]
    fn guardian_recovers_the_tpacf_hang() {
        let prog = Tpacf::new(ProblemScale::Quick);
        let base = prog.build_kernel();
        let fift = build(&base, BuildVariant::FiFt(FtOptions::default())).unwrap();
        let bin_site = fift
            .fi
            .sites
            .iter()
            .rfind(|s| s.var_name == "bin" && s.in_loop)
            .unwrap();
        let fault = ArmedFault {
            site: FaultSite::HookTarget {
                site: bin_site.site,
            },
            thread: 7,
            occurrence: 10,
            mask: 1 << 16,
        };
        let (golden, golden_cycles) = hauberk::program::golden_run(&prog, 0);

        let mut cluster = Cluster::healthy(2);
        cluster.gpus[0] = ManagedGpu::faulty(0, FaultRegime::Transient { remaining: 1 }, fault);
        let mut g = Guardian::new(
            GuardianConfig {
                watchdog_floor: golden_cycles * 10,
                ..Default::default()
            },
            cluster,
        );
        // Train nothing: empty ranges would alarm, so train on the dataset.
        let mut ranges = {
            let profiler = build(&base, BuildVariant::Profiler(FtOptions::default())).unwrap();
            let mut pr = hauberk::runtime::ProfilerRuntime::default();
            let r = run_program(&prog, &profiler.kernel, 0, &mut pr, u64::MAX);
            assert!(r.outcome.is_completed());
            (0..profiler.detectors.len())
                .map(|d| hauberk::ranges::profile_ranges(pr.samples(d as u32)))
                .collect::<Vec<_>>()
        };
        match g.run_protected(&prog, &fift.kernel, &mut ranges, 0) {
            RecoveryOutcome::Success { output, .. } => assert_eq!(output, golden),
            other => panic!("{other:?}"),
        }
        assert!(
            g.events.contains(&GuardianEvent::HangKilled),
            "watchdog fired: {:?}",
            g.events
        );
        assert!(g.events.contains(&GuardianEvent::Restarted));
    }
}
