//! Fig. 3 — impact of transient vs. intermittent faults on a 3D graphics
//! program (ocean-flow): one corrupted input value is an invisible spike;
//! a 10,000-value burst is a user-noticeable stripe.
//!
//! The burst length is the paper's model of an intermittent fault lasting
//! 80 µs on a 250 MHz FPU at 1 IPC with 50% FP instructions:
//! `250e6 × 80e-6 × 0.5 = 10,000` corrupted values.

use hauberk::program::HostProgram;
use hauberk_benchmarks::ocean::Ocean;
use hauberk_benchmarks::ProblemScale;
use hauberk_sim::{Device, MemoryBurst, NullRuntime};

/// The paper's intermittent-fault value count.
pub fn paper_burst_words() -> u32 {
    let clock_hz = 250e6;
    let duration_s = 80e-6;
    let fpu_share = 0.5;
    (clock_hz * duration_s * fpu_share) as u32
}

/// One corrupted-frame experiment.
#[derive(Debug, Clone)]
pub struct Fig3Result {
    /// Corrupted input words.
    pub burst_words: u32,
    /// Frame pixels deviating beyond the per-pixel tolerance.
    pub bad_pixels: usize,
    /// Whether the frame counts as user-noticeably corrupted (SDC).
    pub noticeable: bool,
    /// ASCII rendering of the |frame - golden| map (one char per block).
    pub diff_map: String,
}

/// Corrupt `burst_words` of the ocean input stream and render the damage.
pub fn run_one(scale: ProblemScale, burst_words: u32) -> Fig3Result {
    let prog = Ocean::new(scale);
    let kernel = prog.build_kernel();
    let (golden, _) = hauberk::program::golden_run(&prog, 0);

    let mut dev = Device::new(prog.device_config());
    let args = prog.setup(&mut dev, 0);
    let base = prog.base_field_ptr(&args);
    dev.inject_memory_burst(&MemoryBurst {
        space: hauberk_kir::MemSpace::Global,
        addr: base.addr,
        words: burst_words,
        mask: 1 << 30,
    });
    let outcome = dev.launch(&kernel, &args, &prog.launch(), &mut NullRuntime);
    assert!(outcome.is_completed(), "{outcome:?}");
    let frame = prog.read_output(&dev, &args);

    let spec = prog.spec();
    let bad = spec.violations(&golden, &frame);
    let noticeable = spec.is_violation(&golden, &frame);

    // ASCII difference map, downsampled to at most 64 columns.
    let w = prog.width as usize;
    let h = prog.height as usize;
    let step = (w / 64).max(1);
    let mut map = String::new();
    for y in (0..h).step_by(step) {
        for x in (0..w).step_by(step) {
            let d = (frame[y * w + x] - golden[y * w + x]).abs();
            map.push(if d > 1.0 {
                '#'
            } else if d > 0.02 {
                '+'
            } else {
                '.'
            });
        }
        map.push('\n');
    }

    Fig3Result {
        burst_words,
        bad_pixels: bad,
        noticeable,
        diff_map: map,
    }
}

/// Both panels of Fig. 3 (the intermittent burst scaled to the frame size at
/// quick scale).
pub fn run(scale: ProblemScale) -> (Fig3Result, Fig3Result) {
    let burst = match scale {
        ProblemScale::Quick => 800,
        ProblemScale::Paper => paper_burst_words(),
    };
    (run_one(scale, 1), run_one(scale, burst))
}

/// Render both panels.
pub fn render(transient: &Fig3Result, intermittent: &Fig3Result) -> String {
    let mut out = String::from("Fig. 3 — fault impact on the ocean-flow frame\n\n");
    for (label, r) in [
        ("(a) transient fault (1 value error)", transient),
        (
            "(b) intermittent fault (burst of value errors)",
            intermittent,
        ),
    ] {
        out.push_str(&format!(
            "{label}: {} corrupted input words -> {} bad pixels, user-noticeable: {}\n{}\n",
            r.burst_words, r.bad_pixels, r.noticeable, r.diff_map
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_burst_arithmetic() {
        assert_eq!(paper_burst_words(), 10_000);
    }

    #[test]
    fn transient_invisible_intermittent_noticeable() {
        let (t, i) = run(ProblemScale::Quick);
        assert!(
            !t.noticeable,
            "single spike unnoticed ({} px)",
            t.bad_pixels
        );
        assert!(t.bad_pixels >= 1);
        assert!(i.noticeable, "stripe noticed ({} px)", i.bad_pixels);
        assert!(i.bad_pixels > 50 * t.bad_pixels);
        assert!(i.diff_map.contains('#'), "visible stripe:\n{}", i.diff_map);
    }
}
