//! Fig. 10 — value distributions of integer and FP variables in MRI-Q:
//! per-variable histograms over power-of-ten magnitude bins, showing the
//! sharp correlation points (±magnitude and near-zero) that motivate
//! three-cluster value-range checking.

use crate::report;
use hauberk::builds::{build, BuildVariant, FtOptions};
use hauberk::program::{run_program, HostProgram};
use hauberk::runtime::ProfilerRuntime;
use hauberk_benchmarks::mri_q::MriQ;
use hauberk_benchmarks::ProblemScale;
use hauberk_kir::types::DataClass;

/// Histogram of one variable's observed values over signed decade bins.
#[derive(Debug, Clone)]
pub struct VarDistribution {
    /// Variable name.
    pub var: String,
    /// Pointer/integer/FP class.
    pub class: DataClass,
    /// Samples observed.
    pub n: usize,
    /// (bin label, probability) in magnitude order, negative → zero →
    /// positive.
    pub bins: Vec<(String, f64)>,
    /// Probability mass of the most populated bin (the paper's "sharp
    /// peak (>0.5)" metric).
    pub peak: f64,
    /// Number of distinct correlation points (bins separated by empty
    /// space, grouped): the paper observes up to three.
    pub clusters: usize,
}

fn decade_bin(v: f64) -> i32 {
    // Signed decade: 0 = |v| < 1e-9 (the near-zero point); positive decades
    // for positive values, negative for negative values.
    if v.abs() < 1e-9 {
        return 0;
    }
    let d = v.abs().log10().floor() as i32 + 10; // shift so 1e-9 -> 1
    if v < 0.0 {
        -d.max(1)
    } else {
        d.max(1)
    }
}

fn bin_label(b: i32) -> String {
    if b == 0 {
        "~0".to_string()
    } else {
        let d = b.abs() - 10;
        format!("{}1e{:+}", if b < 0 { "-" } else { "+" }, d)
    }
}

/// Profile MRI-Q and build per-variable distributions.
pub fn run(scale: ProblemScale) -> Vec<VarDistribution> {
    let prog = MriQ::new(scale);
    let base = prog.build_kernel();
    let b = build(&base, BuildVariant::Profiler(FtOptions::default())).expect("profiler build");
    let mut pr = ProfilerRuntime::default();
    let run = run_program(&prog, &b.kernel, 0, &mut pr, u64::MAX);
    assert!(run.outcome.is_completed());

    let mut out = Vec::new();
    for site in &b.fi.sites {
        let Some(samples) = pr.site_samples.get(&site.site) else {
            continue;
        };
        if samples.is_empty() {
            continue;
        }
        let mut hist: std::collections::BTreeMap<i32, usize> = std::collections::BTreeMap::new();
        for v in samples {
            *hist.entry(decade_bin(*v)).or_default() += 1;
        }
        let n = samples.len();
        let bins: Vec<(String, f64)> = hist
            .iter()
            .map(|(b, c)| (bin_label(*b), *c as f64 / n as f64))
            .collect();
        let peak = bins.iter().map(|(_, p)| *p).fold(0.0, f64::max);
        // Count clusters: consecutive occupied decades group together.
        let occupied: Vec<i32> = hist.keys().copied().collect();
        let mut clusters = 0;
        let mut prev: Option<i32> = None;
        for b in occupied {
            if prev.map(|p| b - p > 1).unwrap_or(true) {
                clusters += 1;
            }
            prev = Some(b);
        }
        // Merge duplicate var entries (several defs of one variable).
        out.push(VarDistribution {
            var: site.var_name.clone(),
            class: site.class,
            n,
            bins,
            peak,
            clusters,
        });
    }
    out
}

/// Render the distributions.
pub fn render(dists: &[VarDistribution]) -> String {
    let mut out = String::from("Fig. 10 — value distributions of MRI-Q variables\n");
    let body: Vec<Vec<String>> = dists
        .iter()
        .map(|d| {
            let top: Vec<String> = d
                .bins
                .iter()
                .filter(|(_, p)| *p > 0.05)
                .map(|(l, p)| format!("{l}:{}", report::pct(*p)))
                .collect();
            vec![
                d.var.clone(),
                d.class.to_string(),
                d.n.to_string(),
                report::pct(d.peak),
                d.clusters.to_string(),
                top.join(" "),
            ]
        })
        .collect();
    out.push_str(&report::table(
        &["variable", "class", "n", "peak %", "clusters", "bins >5%"],
        &body,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mriq_values_show_sharp_correlation_points() {
        let dists = run(ProblemScale::Quick);
        assert!(dists.len() >= 4, "several profiled variables");
        // The paper's finding: values of one variable concentrate in a few
        // power-of-ten bins (sharp peaks; symmetric-sign variables split
        // their mass between the +/- twin bins).
        let sharp = dists.iter().filter(|d| d.peak > 0.5).count();
        assert!(
            sharp * 3 >= dists.len(),
            "sharp peaks in a good share of variables: {sharp}/{}",
            dists.len()
        );
        let concentrated = dists
            .iter()
            .filter(|d| {
                let mut ps: Vec<f64> = d.bins.iter().map(|(_, p)| *p).collect();
                ps.sort_by(|a, b| b.partial_cmp(a).unwrap());
                ps.iter().take(3).sum::<f64>() > 0.7
            })
            .count();
        assert!(
            concentrated * 10 >= dists.len() * 7,
            "top-3 bins hold >70% of mass for most variables: {concentrated}/{}",
            dists.len()
        );
        // FP accumulators show at most ~3 clusters (±magnitude, near-zero).
        for d in &dists {
            assert!(
                d.clusters <= 6,
                "{}: {} clusters is not range-checkable",
                d.var,
                d.clusters
            );
        }
        // The signed accumulator's *in-loop* values (the init-site samples
        // are the constant zero) have both negative and positive mass.
        let acc = dists
            .iter()
            .find(|d| d.var == "qiacc" && d.n > 1000)
            .expect("in-loop accumulator profiled");
        let has_neg = acc.bins.iter().any(|(l, _)| l.starts_with('-'));
        let has_pos = acc.bins.iter().any(|(l, _)| l.starts_with('+'));
        assert!(has_neg && has_pos, "{:?}", acc.bins);
    }

    #[test]
    fn decade_bins_are_ordered_and_labeled() {
        assert_eq!(decade_bin(0.0), 0);
        assert!(decade_bin(-5.0) < 0);
        assert!(decade_bin(5.0) > 0);
        assert!(decade_bin(500.0) > decade_bin(5.0));
        assert_eq!(bin_label(0), "~0");
        assert!(bin_label(decade_bin(100.0)).contains("1e+2"));
    }
}
