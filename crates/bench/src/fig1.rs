//! Fig. 1 — average error sensitivity of HPC GPU programs, graphics GPU
//! programs, and CPU programs, by the data type of the corrupted state.

use crate::report;
use hauberk_benchmarks::{cpu_suite, graphics_suite, hpc_suite, ProblemScale};
use hauberk_kir::types::DataClass;
use hauberk_swifi::campaign::{run_sensitivity_campaign, CampaignConfig};
use hauberk_swifi::classify::FiOutcome;
use hauberk_swifi::cpu_study::run_cpu_study;
use hauberk_swifi::plan::PlanConfig;
use hauberk_swifi::stats::{by_class, OutcomeCounts};
use std::collections::BTreeMap;

/// One stacked row of Fig. 1.
#[derive(Debug, Clone)]
pub struct Fig1Row {
    /// Program group.
    pub group: &'static str,
    /// Data-type label.
    pub class: String,
    /// Outcome counts.
    pub counts: OutcomeCounts,
}

impl Fig1Row {
    /// Crash/hang ratio.
    pub fn failure(&self) -> f64 {
        self.counts.ratio(FiOutcome::Failure)
    }

    /// SDC ratio (undetected violations; no detectors in this study).
    pub fn sdc(&self) -> f64 {
        self.counts.ratio(FiOutcome::Undetected)
    }

    /// Not-manifested ratio.
    pub fn not_manifested(&self) -> f64 {
        1.0 - self.failure() - self.sdc()
    }
}

fn campaign_cfg(masks_per_var: usize) -> CampaignConfig {
    CampaignConfig {
        plan: PlanConfig {
            vars_per_program: 20,
            masks_per_var,
            bit_counts: vec![1],
            scheduler_per_mille: 60,
            register_per_mille: 60,
        },
        ..Default::default()
    }
}

/// Run the full Fig. 1 study. `masks_per_var` scales the experiment count
/// (paper: 50).
pub fn run(scale: ProblemScale, masks_per_var: usize) -> Vec<Fig1Row> {
    let mut rows = Vec::new();

    for (group, suite) in [
        ("GPU HPC", hpc_suite(scale)),
        ("GPU graphics", graphics_suite(scale)),
    ] {
        let mut per_class: BTreeMap<DataClass, OutcomeCounts> = BTreeMap::new();
        for prog in &suite {
            let r = run_sensitivity_campaign(prog.as_ref(), &campaign_cfg(masks_per_var));
            for (class, counts) in by_class(&r.results) {
                per_class.entry(class).or_default().merge(&counts);
            }
        }
        for class in [DataClass::Float, DataClass::Integer, DataClass::Pointer] {
            if let Some(counts) = per_class.get(&class) {
                rows.push(Fig1Row {
                    group,
                    class: class.to_string(),
                    counts: *counts,
                });
            }
        }
    }

    // CPU rows: stack / data / code.
    let mut stack = OutcomeCounts::default();
    let mut data = OutcomeCounts::default();
    let mut code = OutcomeCounts::default();
    for (i, prog) in cpu_suite(scale).iter().enumerate() {
        let r = run_cpu_study(prog.as_ref(), masks_per_var * 2, 100 + i as u64);
        stack.merge(&r.stack);
        data.merge(&r.data);
        code.merge(&r.code);
    }
    for (label, counts) in [("stack", stack), ("data", data), ("code", code)] {
        rows.push(Fig1Row {
            group: "CPU",
            class: label.to_string(),
            counts,
        });
    }
    rows
}

/// Render the figure as text.
pub fn render(rows: &[Fig1Row]) -> String {
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.group.to_string(),
                r.class.clone(),
                report::pct(r.failure()),
                report::pct(r.sdc()),
                report::pct(r.not_manifested()),
                format!("{}", r.counts.total()),
            ]
        })
        .collect();
    let mut out =
        String::from("Fig. 1 — error sensitivity by program type / corrupted data type\n");
    out.push_str(&report::table(
        &[
            "group",
            "data type",
            "crash/hang %",
            "SDC %",
            "not manifested %",
            "n",
        ],
        &body,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_reproduces_paper_orderings() {
        let rows = run(ProblemScale::Quick, 6);
        let find = |g: &str, c: &str| {
            rows.iter()
                .find(|r| r.group == g && r.class == c)
                .unwrap_or_else(|| panic!("row {g}/{c}"))
        };

        let hpc_fp = find("GPU HPC", "floating-point");
        let hpc_int = find("GPU HPC", "integer");

        // Observation 1: substantial SDC ratios in HPC GPU programs.
        assert!(hpc_fp.sdc() > 0.10, "FP SDC {}", hpc_fp.sdc());
        assert!(hpc_int.sdc() > 0.10, "int SDC {}", hpc_int.sdc());

        // Observation 2: FP faults rarely crash; integer/pointer faults do.
        assert!(hpc_fp.failure() < 0.05, "FP failure {}", hpc_fp.failure());
        assert!(
            hpc_int.failure() > hpc_fp.failure(),
            "int faults crash more than FP"
        );

        // Graphics: single-bit faults are not user-noticeable.
        for r in rows.iter().filter(|r| r.group == "GPU graphics") {
            assert!(r.sdc() < 0.05, "graphics {}: sdc {}", r.class, r.sdc());
        }

        // CPU: SDC far below the GPU HPC level; crashes common.
        let cpu_sdc_max = rows
            .iter()
            .filter(|r| r.group == "CPU")
            .map(|r| r.sdc())
            .fold(0.0f64, f64::max);
        let gpu_sdc_avg = (hpc_fp.sdc() + hpc_int.sdc()) / 2.0;
        assert!(
            cpu_sdc_max < gpu_sdc_avg,
            "CPU SDC ({cpu_sdc_max:.2}) below GPU HPC SDC ({gpu_sdc_avg:.2})"
        );
    }
}
