//! Plain-text table/bar rendering for the figure reports.
//!
//! The implementations live in [`hauberk_telemetry::report`] so that the
//! figure harness, the campaign CLI, and the metrics tables all format
//! output through one path; this module re-exports them under the name the
//! figure modules have always used.

pub use hauberk_telemetry::report::{bar, pct, table, Emitter, Table};
