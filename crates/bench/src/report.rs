//! Plain-text table/bar rendering for the figure reports.

/// Render a percentage as a fixed-width bar plus number.
pub fn bar(pct: f64, width: usize) -> String {
    let filled = ((pct / 100.0) * width as f64).round().clamp(0.0, width as f64) as usize;
    let mut s = String::with_capacity(width + 8);
    for i in 0..width {
        s.push(if i < filled { '#' } else { '.' });
    }
    s.push_str(&format!(" {pct:5.1}%"));
    s
}

/// Render a simple aligned table: `header` then `rows`; column widths are
/// derived from content.
pub fn table(header: &[&str], rows: &[Vec<String>]) -> String {
    let cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for r in rows {
        for (i, cell) in r.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let emit = |out: &mut String, cells: &[String]| {
        for (i, c) in cells.iter().enumerate().take(cols) {
            if i > 0 {
                out.push_str("  ");
            }
            out.push_str(&format!("{c:<width$}", width = widths[i]));
        }
        while out.ends_with(' ') {
            out.pop();
        }
        out.push('\n');
    };
    emit(
        &mut out,
        &header.iter().map(|h| h.to_string()).collect::<Vec<_>>(),
    );
    let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for r in rows {
        emit(&mut out, r);
    }
    out
}

/// Format a ratio as a percent string.
pub fn pct(x: f64) -> String {
    format!("{:.1}", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bar_is_proportional() {
        assert!(bar(0.0, 10).starts_with(".........."));
        assert!(bar(50.0, 10).starts_with("#####....."));
        assert!(bar(100.0, 10).starts_with("##########"));
        assert!(bar(150.0, 10).starts_with("##########"), "clamped");
    }

    #[test]
    fn table_aligns_columns() {
        let t = table(
            &["name", "value"],
            &[
                vec!["a".into(), "1".into()],
                vec!["long-name".into(), "2".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[3].starts_with("long-name"));
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.1234), "12.3");
    }
}
