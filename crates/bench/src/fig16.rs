//! Fig. 16 — false-positive ratio of the loop error detectors vs. number of
//! training input sets, and the effect of the `alpha` range widening.
//!
//! Methodology follows §IX.C: 52 datasets per program; for each training
//! count `n`, repeat: pick `n` random training sets and 2 disjoint test
//! sets, train the ranges on the union of the training sets' profiled
//! accumulator samples, and count a false positive when a fault-free run on
//! a test set raises any range alarm. Since a fault-free FT run's checked
//! values are exactly the profiler's recorded samples for that dataset, the
//! study profiles each dataset once and evaluates set-membership — the
//! semantics are identical to launching the FT build, at a fraction of the
//! cost.

use crate::report;
use hauberk::builds::{build, BuildVariant, FtOptions};
use hauberk::program::{run_program, HostProgram};
use hauberk::ranges::{profile_ranges, RangeSet};
use hauberk::runtime::ProfilerRuntime;
use hauberk_benchmarks::{program_by_name, ProblemScale};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// The training-count schedule of Fig. 16's x-axis.
pub const TRAIN_COUNTS: [usize; 8] = [1, 3, 5, 7, 10, 18, 30, 50];

/// Per-dataset profiled samples for one program (one entry per detector).
pub struct ProfiledProgram {
    /// Program name.
    pub name: &'static str,
    /// `samples[dataset][detector]` — the averaged-accumulator values each
    /// fault-free run would check.
    pub samples: Vec<Vec<Vec<f64>>>,
    /// Per-dataset, per-detector trained range sets.
    pub ranges: Vec<Vec<RangeSet>>,
}

/// Profile `n_datasets` datasets of one program.
pub fn profile_all(prog: &dyn HostProgram, n_datasets: usize) -> ProfiledProgram {
    let base = prog.build_kernel();
    let b = build(&base, BuildVariant::Profiler(FtOptions::default())).expect("profiler build");
    let n_det = b.detectors.len();
    let mut samples = Vec::with_capacity(n_datasets);
    let mut ranges = Vec::with_capacity(n_datasets);
    for ds in 0..n_datasets as u64 {
        let mut pr = ProfilerRuntime::default();
        let run = run_program(prog, &b.kernel, ds, &mut pr, u64::MAX);
        assert!(
            run.outcome.is_completed(),
            "{}: {:?}",
            prog.name(),
            run.outcome
        );
        let per_det: Vec<Vec<f64>> = (0..n_det).map(|d| pr.samples(d as u32).to_vec()).collect();
        ranges.push(per_det.iter().map(|s| profile_ranges(s)).collect());
        samples.push(per_det);
    }
    ProfiledProgram {
        name: prog.name(),
        samples,
        ranges,
    }
}

/// Would a fault-free run on `dataset` raise an alarm under `trained`
/// ranges (with `alpha` widening)?
pub fn test_alarms(pp: &ProfiledProgram, trained: &[RangeSet], dataset: usize, alpha: f64) -> bool {
    let effective: Vec<RangeSet> = trained.iter().map(|r| r.apply_alpha(alpha)).collect();
    pp.samples[dataset]
        .iter()
        .zip(&effective)
        .any(|(vals, rs)| vals.iter().any(|v| !rs.contains(*v)))
}

/// Merge the per-dataset trained ranges of `train` datasets.
pub fn merge_training(pp: &ProfiledProgram, train: &[usize]) -> Vec<RangeSet> {
    let n_det = pp.ranges.first().map(|r| r.len()).unwrap_or(0);
    let mut merged = vec![RangeSet::default(); n_det];
    for &ds in train {
        for (m, r) in merged.iter_mut().zip(&pp.ranges[ds]) {
            m.merge(r);
        }
    }
    merged
}

/// One measured curve: FP ratio per training count.
#[derive(Debug, Clone)]
pub struct FpCurve {
    /// Program name.
    pub program: &'static str,
    /// Alpha used.
    pub alpha: f64,
    /// (training sets, false-positive ratio).
    pub points: Vec<(usize, f64)>,
}

/// Measure one program's curve.
pub fn fp_curve(pp: &ProfiledProgram, alpha: f64, repetitions: usize, seed: u64) -> FpCurve {
    let n = pp.samples.len();
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut points = Vec::new();
    for &n_train in TRAIN_COUNTS.iter().filter(|c| **c + 2 <= n) {
        let mut fp = 0usize;
        let mut total = 0usize;
        for _ in 0..repetitions {
            let mut order: Vec<usize> = (0..n).collect();
            order.shuffle(&mut rng);
            let (train, rest) = order.split_at(n_train);
            let trained = merge_training(pp, train);
            for &test in rest.iter().take(2) {
                total += 1;
                if test_alarms(pp, &trained, test, alpha) {
                    fp += 1;
                }
            }
        }
        points.push((n_train, fp as f64 / total as f64));
    }
    FpCurve {
        program: pp.name,
        alpha,
        points,
    }
}

/// The full Fig. 16: left panel (four programs at alpha=1) and right panel
/// (MRI-FHD at alpha ∈ {1, 2, 10, 100}).
pub fn run(
    scale: ProblemScale,
    n_datasets: usize,
    repetitions: usize,
) -> (Vec<FpCurve>, Vec<FpCurve>) {
    let mut left = Vec::new();
    let mut fhd: Option<ProfiledProgram> = None;
    for name in ["CP", "MRI-FHD", "PNS", "TPACF"] {
        let prog = program_by_name(name, scale).expect("known program");
        let pp = profile_all(prog.as_ref(), n_datasets);
        left.push(fp_curve(&pp, 1.0, repetitions, 42));
        if name == "MRI-FHD" {
            fhd = Some(pp);
        }
    }
    let fhd = fhd.expect("MRI-FHD profiled");
    let right = [1.0, 2.0, 10.0, 100.0]
        .iter()
        .map(|&a| fp_curve(&fhd, a, repetitions, 43))
        .collect();
    (left, right)
}

/// Render both panels.
pub fn render(left: &[FpCurve], right: &[FpCurve]) -> String {
    let mut out = String::from("Fig. 16 — false positive ratio vs. training count\n\n");
    let fmt_panel = |curves: &[FpCurve]| -> String {
        let mut header = vec!["curve".to_string()];
        if let Some(c) = curves.first() {
            header.extend(c.points.iter().map(|(n, _)| n.to_string()));
        }
        let hdr: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
        let rows: Vec<Vec<String>> = curves
            .iter()
            .map(|c| {
                let mut r = vec![format!("{} (alpha={})", c.program, c.alpha)];
                r.extend(c.points.iter().map(|(_, fp)| report::pct(*fp)));
                r
            })
            .collect();
        report::table(&hdr, &rows)
    };
    out.push_str("left: four programs, alpha = 1 (FP % per training-set count)\n");
    out.push_str(&fmt_panel(left));
    out.push_str("\nright: MRI-FHD, alpha sweep\n");
    out.push_str(&fmt_panel(right));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig16_shapes() {
        // Scaled-down: 20 datasets, 4 repetitions.
        let (left, right) = run(ProblemScale::Quick, 20, 4);

        let curve = |name: &str| left.iter().find(|c| c.program == name).unwrap();
        let at = |c: &FpCurve, n: usize| {
            c.points
                .iter()
                .find(|(x, _)| *x == n)
                .unwrap_or_else(|| panic!("{}: no point at {n}: {:?}", c.program, c.points))
                .1
        };

        // PNS (fixed simulation model) converges to ~0 false positives
        // after a handful of training sets.
        assert!(
            at(curve("PNS"), 10) < 0.15,
            "PNS: {:?}",
            curve("PNS").points
        );

        // MRI-FHD's range detectors stay imprecise far longer (the paper's
        // plateau; our interval-union model eventually closes the gaps, so
        // we check the mid-range of the curve — see EXPERIMENTS.md).
        let fhd_mid = at(curve("MRI-FHD"), 5).max(at(curve("MRI-FHD"), 7));
        assert!(fhd_mid > 0.2, "MRI-FHD: {:?}", curve("MRI-FHD").points);
        assert!(
            fhd_mid > at(curve("PNS"), 5).max(at(curve("PNS"), 7)),
            "MRI-FHD is the imprecise detector of the suite"
        );

        // alpha=100 crushes MRI-FHD's false positives early (paper: ~0
        // after 7 training sets).
        let a1 = right.iter().find(|c| c.alpha == 1.0).unwrap();
        let a100 = right.iter().find(|c| c.alpha == 100.0).unwrap();
        let early = |c: &FpCurve| at(c, 5) + at(c, 7) + at(c, 10);
        assert!(
            early(a100) < early(a1) * 0.5 + 1e-9,
            "alpha=100 ({:?}) vs alpha=1 ({:?})",
            a100.points,
            a1.points
        );
        // And alpha widening is monotone at each point.
        for (p1, p100) in a1.points.iter().zip(&a100.points) {
            assert!(p100.1 <= p1.1 + 1e-9);
        }
    }
}
