//! §IX.D — Hauberk instrumentation time.
//!
//! The paper reports ~0.7 s per kernel for the transformation proper (the
//! 81 s average includes C preprocessing and parsing of full CUDA sources).
//! This bench times our equivalents per benchmark kernel: parsing the
//! mini-CUDA source, the FT derivation (non-loop + loop passes including the
//! dataflow analyses), and the FI mutation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hauberk::builds::{build, BuildVariant, FtOptions};
use hauberk_benchmarks::{hpc_suite, ProblemScale};
use std::hint::black_box;

fn bench_instrumentation(c: &mut Criterion) {
    let mut g = c.benchmark_group("instrumentation_time");
    for prog in hpc_suite(ProblemScale::Quick) {
        let kernel = prog.build_kernel();
        g.bench_with_input(
            BenchmarkId::new("ft_derivation", prog.name()),
            &kernel,
            |b, k| b.iter(|| build(black_box(k), BuildVariant::Ft(FtOptions::default())).unwrap()),
        );
        g.bench_with_input(
            BenchmarkId::new("fi_mutation", prog.name()),
            &kernel,
            |b, k| b.iter(|| build(black_box(k), BuildVariant::Fi).unwrap()),
        );
    }
    g.finish();
}

fn bench_parse(c: &mut Criterion) {
    use hauberk_kir::parser::parse_kernel;
    c.bench_function("parse_cp_source", |b| {
        b.iter(|| parse_kernel(black_box(hauberk_benchmarks::cp::KERNEL_SRC)).unwrap())
    });
}

criterion_group!(benches, bench_instrumentation, bench_parse);
criterion_main!(benches);
