//! Fig. 13 as a criterion bench: executes each protection variant of each
//! benchmark program end-to-end on the simulator. The *simulated-cycle*
//! overheads (the figure's metric) are printed once per program; criterion
//! tracks the harness' own wall time, which is useful for catching
//! performance regressions of the simulator/translator themselves.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hauberk_bench::perf::measure_overheads;
use hauberk_benchmarks::{hpc_suite, ProblemScale};
use std::hint::black_box;

fn bench_fig13(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig13_overhead");
    g.sample_size(10);
    for prog in hpc_suite(ProblemScale::Quick) {
        // Print the figure's row once.
        let row = measure_overheads(prog.as_ref());
        println!(
            "fig13 {:<8} R-Naive {:.1}% R-Scatter {} Hauberk-NL {:.1}% Hauberk-L {:.1}% Hauberk {:.1}%",
            row.program,
            row.r_naive,
            row.r_scatter
                .map(|v| format!("{v:.1}%"))
                .unwrap_or_else(|| "N/A".into()),
            row.hauberk_nl,
            row.hauberk_l,
            row.hauberk
        );
        g.bench_with_input(BenchmarkId::new("measure", row.program), &prog, |b, p| {
            b.iter(|| black_box(measure_overheads(p.as_ref())))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_fig13);
criterion_main!(benches);
