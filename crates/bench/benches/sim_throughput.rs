//! Simulator throughput: how fast the warp-lockstep interpreter retires
//! simulated instructions. Fault-injection campaigns run thousands of
//! launches, so this number bounds the whole evaluation pipeline.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use hauberk_kir::parser::parse_kernel;
use hauberk_kir::{PrimTy, Value};
use hauberk_sim::{Device, Launch, NullRuntime};
use std::hint::black_box;

fn bench_throughput(c: &mut Criterion) {
    let kernel = parse_kernel(
        r#"kernel spin(out: *global f32, x: *global f32, n: i32) {
            let tid: i32 = block_idx_x() * block_dim_x() + thread_idx_x();
            let acc: f32 = 0.0;
            for (i = 0; i < n; i = i + 1) {
                acc = acc + load(x, i) * 1.0001 + 0.5;
            }
            store(out, tid, acc);
        }"#,
    )
    .unwrap();

    // Count the simulated ops of one launch for the throughput denominator.
    let ops = {
        let mut dev = Device::small_gpu();
        let out = dev.alloc(PrimTy::F32, 512);
        let x = dev.alloc(PrimTy::F32, 256);
        let r = dev.launch(
            &kernel,
            &[Value::Ptr(out), Value::Ptr(x), Value::I32(256)],
            &Launch::grid1d(16, 32),
            &mut NullRuntime,
        );
        r.completed_stats().unwrap().total_ops()
    };

    let mut g = c.benchmark_group("sim_throughput");
    g.throughput(Throughput::Elements(ops));
    g.bench_function("fp_loop_16x32", |b| {
        b.iter(|| {
            let mut dev = Device::small_gpu();
            let out = dev.alloc(PrimTy::F32, 512);
            let x = dev.alloc(PrimTy::F32, 256);
            black_box(dev.launch(
                &kernel,
                &[Value::Ptr(out), Value::Ptr(x), Value::I32(256)],
                &Launch::grid1d(16, 32),
                &mut NullRuntime,
            ))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_throughput);
criterion_main!(benches);
