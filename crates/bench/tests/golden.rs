//! Golden-file snapshot tests for the CLI surface: `figures --json` and
//! `campaign --json` must emit byte-identical documents run over run — the
//! external contract that scripts and the paper-reproduction pipeline parse.
//!
//! The simulator is deterministic by construction (pinned campaign seeds,
//! simulated clock, ordered result collection), so these are exact string
//! comparisons, not structural ones. When an intentional change shifts the
//! output, refresh the snapshots with
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p hauberk-bench --test golden
//! ```
//!
//! and review the diff like any other source change.

use std::path::PathBuf;
use std::process::Command;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

/// Run `bin` with `args`, assert success, and return stdout.
fn run(bin: &str, args: &[&str]) -> String {
    let out = Command::new(bin)
        .args(args)
        .output()
        .unwrap_or_else(|e| panic!("spawn {bin}: {e}"));
    assert!(
        out.status.success(),
        "{bin} {args:?} failed ({}):\n{}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("CLI output is UTF-8")
}

fn check_snapshot(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, actual).expect("write golden file");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "read {}: {e} (run with UPDATE_GOLDEN=1 to create)",
            path.display()
        )
    });
    if expected != actual {
        let diff_at = expected
            .bytes()
            .zip(actual.bytes())
            .position(|(a, b)| a != b)
            .unwrap_or(expected.len().min(actual.len()));
        panic!(
            "snapshot `{name}` drifted (first difference at byte {diff_at}).\n\
             If the change is intentional: UPDATE_GOLDEN=1 cargo test -p hauberk-bench --test golden\n\
             --- expected ---\n{expected}\n--- actual ---\n{actual}"
        );
    }
}

/// `figures --json` on the two cheapest deterministic sections: the static
/// detector-coverage table (fig9) and the ablation table.
#[test]
fn figures_json_snapshot() {
    let out = run(
        env!("CARGO_BIN_EXE_figures"),
        &["fig9", "ablation", "--json"],
    );
    check_snapshot("figures_fig9_ablation.json", &out);
}

/// `campaign --json` on a small pinned-seed CP campaign: the summary document
/// (outcome ratios, golden cycles, detector count, metrics) is part of the
/// reproduction contract. The engine and thread count must not matter — the
/// determinism suite asserts that; here we pin the default engine output.
#[test]
fn campaign_json_snapshot() {
    let out = run(
        env!("CARGO_BIN_EXE_campaign"),
        &[
            "CP",
            "--json",
            "--vars",
            "2",
            "--masks",
            "2",
            "--threads",
            "1",
        ],
    );
    check_snapshot("campaign_cp_small.json", &out);
}

/// The same pinned campaign under `--checkpoint`: the stdout document is
/// snapshotted in its own right AND must equal the plain snapshot byte for
/// byte — checkpointing is an execution-cost optimization, never an output
/// change. (The cycles-saved note goes to stderr, which `run` discards.)
#[test]
fn campaign_checkpoint_json_snapshot() {
    let out = run(
        env!("CARGO_BIN_EXE_campaign"),
        &[
            "CP",
            "--json",
            "--vars",
            "2",
            "--masks",
            "2",
            "--threads",
            "1",
            "--checkpoint",
        ],
    );
    check_snapshot("campaign_cp_small_checkpoint.json", &out);
    if std::env::var_os("UPDATE_GOLDEN").is_none() {
        let plain = std::fs::read_to_string(golden_path("campaign_cp_small.json"))
            .expect("plain campaign snapshot exists");
        assert_eq!(
            plain, out,
            "--checkpoint must not change a single output byte"
        );
    }
}
