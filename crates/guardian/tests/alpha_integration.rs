//! Integration of the alpha controller with the guardian's diagnosis loop:
//! a stream of executions over drifting datasets drives the false-positive
//! ratio up, the controller widens the ranges (×10), and subsequent runs
//! stop alarming — the closed control loop of §VI (iii).

use hauberk::builds::{build, BuildVariant, FtOptions};
use hauberk::program::{run_program, HostProgram};
use hauberk::ranges::{profile_ranges, RangeSet};
use hauberk::runtime::ProfilerRuntime;
use hauberk_benchmarks::mri_fhd::MriFhd;
use hauberk_benchmarks::ProblemScale;
use hauberk_guardian::{Cluster, Guardian, GuardianConfig, GuardianEvent, RecoveryOutcome};

fn train(prog: &MriFhd, datasets: &[u64]) -> (hauberk_kir::KernelDef, Vec<RangeSet>) {
    let base = prog.build_kernel();
    let profiler = build(&base, BuildVariant::Profiler(FtOptions::default())).unwrap();
    let n = profiler.detectors.len();
    let mut merged = vec![RangeSet::default(); n];
    for &ds in datasets {
        let mut pr = ProfilerRuntime::default();
        let run = run_program(prog, &profiler.kernel, ds, &mut pr, u64::MAX);
        assert!(run.outcome.is_completed());
        for (d, m) in merged.iter_mut().enumerate() {
            m.merge(&profile_ranges(pr.samples(d as u32)));
        }
    }
    let ft = build(&base, BuildVariant::Ft(FtOptions::default())).unwrap();
    (ft.kernel, merged)
}

#[test]
fn guardian_alpha_loop_absorbs_dataset_drift() {
    let prog = MriFhd::new(ProblemScale::Quick);
    // Deliberately under-train: a single dataset of a program whose
    // per-dataset intensity varies by orders of magnitude.
    let (kernel, mut ranges) = train(&prog, &[0]);

    let mut g = Guardian::new(
        GuardianConfig {
            watchdog_floor: 200_000_000,
            ..Default::default()
        },
        Cluster::healthy(1),
    );

    // Stream fresh datasets through the guardian. Each false positive is
    // diagnosed by re-execution (outputs identical -> learn + alpha
    // bookkeeping); every run must still produce a trusted output.
    let mut false_alarms = 0;
    for ds in 1..=25u64 {
        match g.run_protected(&prog, &kernel, &mut ranges, ds) {
            RecoveryOutcome::Success { false_alarm, .. } => {
                if false_alarm {
                    false_alarms += 1;
                }
            }
            other => panic!("dataset {ds}: {other:?}"),
        }
    }
    assert!(
        false_alarms > 0,
        "under-trained ranges on a drifting program must alarm sometimes"
    );
    assert!(
        g.events
            .iter()
            .filter(|e| matches!(e, GuardianEvent::FalseAlarmDiagnosed))
            .count()
            == false_alarms,
        "every false alarm went through the re-execution diagnosis"
    );

    // The combination of on-line range learning and alpha widening makes
    // later traffic mostly clean: the last 5 datasets run without alarms.
    let mut late_alarms = 0;
    for ds in 100..105u64 {
        match g.run_protected(&prog, &kernel, &mut ranges, ds) {
            RecoveryOutcome::Success { false_alarm, .. } => {
                if false_alarm {
                    late_alarms += 1;
                }
            }
            other => panic!("dataset {ds}: {other:?}"),
        }
    }
    assert!(
        late_alarms <= 2,
        "learning + alpha absorb the drift: {late_alarms} late alarms"
    );
    assert!(
        g.alpha.alpha() >= 1.0,
        "controller stayed in its legal range"
    );
}
