//! Adaptive range recalibration (§VI iii): the recovery engine widens the
//! detector ranges (multiplies by `alpha`) when the diagnosed false-positive
//! ratio is too high, and tightens when it is comfortably low.

/// Controller thresholds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AlphaConfig {
    /// Widen (×`step`) when the FP ratio exceeds this (paper: 10%).
    pub high_threshold: f64,
    /// Tighten (÷`step`) when the FP ratio is below this (paper: 5%).
    pub low_threshold: f64,
    /// Multiplicative adjustment step (paper: 10).
    pub step: f64,
    /// Diagnoses per adjustment window.
    pub window: usize,
}

impl Default for AlphaConfig {
    fn default() -> Self {
        AlphaConfig {
            high_threshold: 0.10,
            low_threshold: 0.05,
            step: 10.0,
            window: 20,
        }
    }
}

/// The `alpha` controller.
#[derive(Debug, Clone)]
pub struct AlphaController {
    cfg: AlphaConfig,
    alpha: f64,
    window_runs: usize,
    window_false_positives: usize,
}

impl AlphaController {
    /// Start at `alpha = 1`.
    pub fn new(cfg: AlphaConfig) -> Self {
        AlphaController {
            cfg,
            alpha: 1.0,
            window_runs: 0,
            window_false_positives: 0,
        }
    }

    /// Current multiplier.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Record one completed run and whether it was diagnosed as a false
    /// positive; adjusts `alpha` at the end of each window. Returns the new
    /// alpha if it changed.
    pub fn observe(&mut self, false_positive: bool) -> Option<f64> {
        self.window_runs += 1;
        if false_positive {
            self.window_false_positives += 1;
        }
        if self.window_runs < self.cfg.window {
            return None;
        }
        let ratio = self.window_false_positives as f64 / self.window_runs as f64;
        self.window_runs = 0;
        self.window_false_positives = 0;
        if ratio > self.cfg.high_threshold {
            self.alpha *= self.cfg.step;
            Some(self.alpha)
        } else if ratio < self.cfg.low_threshold && self.alpha > 1.0 {
            self.alpha = (self.alpha / self.cfg.step).max(1.0);
            Some(self.alpha)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn widens_under_high_fp_ratio() {
        let mut c = AlphaController::new(AlphaConfig {
            window: 10,
            ..Default::default()
        });
        for i in 0..10 {
            let changed = c.observe(i < 3); // 30% FP ratio
            if i < 9 {
                assert!(changed.is_none());
            }
        }
        assert_eq!(c.alpha(), 10.0);
    }

    #[test]
    fn tightens_when_fp_ratio_drops_but_never_below_one() {
        let mut c = AlphaController::new(AlphaConfig {
            window: 5,
            ..Default::default()
        });
        // Drive alpha up.
        for _ in 0..5 {
            c.observe(true);
        }
        assert_eq!(c.alpha(), 10.0);
        // Clean window: tighten back.
        for _ in 0..5 {
            c.observe(false);
        }
        assert_eq!(c.alpha(), 1.0);
        // Another clean window: stays at the floor.
        for _ in 0..5 {
            c.observe(false);
        }
        assert_eq!(c.alpha(), 1.0);
    }

    #[test]
    fn mid_band_is_stable() {
        let mut c = AlphaController::new(AlphaConfig {
            window: 100,
            ..Default::default()
        });
        for i in 0..100 {
            c.observe(i % 14 == 0); // ~7% FP: between the thresholds
        }
        assert_eq!(c.alpha(), 1.0);
    }
}
