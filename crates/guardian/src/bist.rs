//! Built-in self test (§VI ii.c): a program "specifically designed to
//! produce multiple sets of output data by examining various parts of GPU
//! hardware".
//!
//! The probe runs a small FI-instrumented exercise kernel (FP, integer, and
//! memory paths) on a fresh simulated device with the managed GPU's fault
//! regime applied, and compares against the known-good output.

use crate::cluster::ManagedGpu;
use hauberk::builds::{build, BuildVariant};
use hauberk::runtime::FiRuntime;
use hauberk_kir::parser::parse_kernel;
use hauberk_kir::{KernelDef, PrimTy, Value};
use hauberk_sim::fault::{ArmedFault, FaultSite};
use hauberk_sim::{Device, Launch, NullRuntime};

/// The BIST exercise kernel: FP chain, integer chain, memory round-trip.
pub const BIST_SRC: &str = r#"
kernel bist(out: *global f32, scratch: *global i32, n: i32) {
    let tid: i32 = block_idx_x() * block_dim_x() + thread_idx_x();
    let f: f32 = cast<f32>(tid) * 0.5 + 1.0;
    let g: f32 = sqrt(f * f + 3.0) - f;
    let acc: f32 = 0.0;
    for (i = 0; i < n; i = i + 1) {
        acc = acc + g * cast<f32>(i + 1);
    }
    let iv: i32 = tid * 2654435 + 17;
    let iw: i32 = (iv ^ (iv >> 7)) & 65535;
    store(scratch, tid, iw);
    let back: i32 = load(scratch, tid);
    store(out, tid, acc + cast<f32>(back) * 0.001);
}
"#;

fn bist_kernel() -> KernelDef {
    parse_kernel(BIST_SRC).expect("BIST kernel parses")
}

fn run_once(fault: Option<ArmedFault>) -> Option<Vec<f32>> {
    let base = bist_kernel();
    let instr = build(&base, BuildVariant::Fi).expect("BIST FI build");
    let mut dev = Device::small_gpu();
    let out = dev.alloc(PrimTy::F32, 64);
    let scratch = dev.alloc(PrimTy::I32, 64);
    let launch = Launch::grid1d(2, 32).with_budget(10_000_000);
    let args = [Value::Ptr(out), Value::Ptr(scratch), Value::I32(16)];
    let outcome = if let Some(f) = fault {
        let mut rt = FiRuntime::new(Some(f));
        dev.launch(&instr.kernel, &args, &launch, &mut rt)
    } else {
        dev.launch(&instr.kernel, &args, &launch, &mut NullRuntime)
    };
    outcome
        .is_completed()
        .then(|| dev.mem.copy_out_f32(out, 64))
}

/// Run the self test against a managed GPU's current regime at time `now`.
/// Returns `true` when the device looks healthy.
pub fn run_bist(gpu: &ManagedGpu, now: u64) -> bool {
    let golden = run_once(None).expect("fault-free BIST completes");
    // Probe several sites so the exercise covers FP, integer, and memory
    // paths — a faulty device corrupts at least one of them.
    for probe in 0..4u32 {
        let fault = gpu.fault_for_run(now).map(|f| ArmedFault {
            site: FaultSite::HookTarget { site: probe % 6 },
            thread: (probe * 17) % 64,
            occurrence: 1,
            mask: f.mask.rotate_left(probe),
        });
        if fault.is_none() {
            return true; // regime inactive: healthy
        }
        match run_once(fault) {
            Some(out) if out == golden => continue, // this probe masked it
            _ => return false,                      // corrupted or crashed
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regime::FaultRegime;

    fn fault() -> ArmedFault {
        ArmedFault {
            site: FaultSite::HookTarget { site: 0 },
            thread: 0,
            occurrence: 1,
            mask: 1 << 23,
        }
    }

    #[test]
    fn healthy_device_passes() {
        let g = ManagedGpu::healthy(0);
        assert!(run_bist(&g, 0));
    }

    #[test]
    fn permanently_faulty_device_fails() {
        let g = ManagedGpu::faulty(0, FaultRegime::Permanent, fault());
        assert!(!run_bist(&g, 0));
    }

    #[test]
    fn expired_intermittent_passes() {
        let g = ManagedGpu::faulty(0, FaultRegime::Intermittent { until: 10 }, fault());
        assert!(!run_bist(&g, 5));
        assert!(run_bist(&g, 11));
    }

    #[test]
    fn bist_is_deterministic() {
        let a = run_once(None).unwrap();
        let b = run_once(None).unwrap();
        assert_eq!(a, b);
    }
}
