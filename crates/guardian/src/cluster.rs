//! The simulated multi-GPU node: device management, disabling, migration,
//! and the doubling-back-off probe daemon (§VI ii.c).

use crate::bist::run_bist;
use crate::regime::FaultRegime;
use hauberk_sim::fault::ArmedFault;

/// One managed GPU in the node.
#[derive(Debug, Clone)]
pub struct ManagedGpu {
    /// Device index within the node.
    pub id: usize,
    /// Current health regime.
    pub regime: FaultRegime,
    /// Whether the scheduler may place work here.
    pub enabled: bool,
    /// Fault delivered into programs while the regime is active (the
    /// template's mask is varied per run so an intermittent fault corrupts
    /// each execution differently).
    pub fault_template: Option<ArmedFault>,
    /// Next time the back-off daemon probes this device (when disabled).
    pub next_probe: u64,
    /// Current probe back-off (doubles after every failed probe).
    pub backoff: u64,
    /// Completed program runs on this device.
    pub runs: u64,
}

impl ManagedGpu {
    /// A healthy device.
    pub fn healthy(id: usize) -> Self {
        ManagedGpu {
            id,
            regime: FaultRegime::Healthy,
            enabled: true,
            fault_template: None,
            next_probe: 0,
            backoff: INITIAL_BACKOFF,
            runs: 0,
        }
    }

    /// A device with a fault regime and the fault it injects while active.
    pub fn faulty(id: usize, regime: FaultRegime, fault: ArmedFault) -> Self {
        ManagedGpu {
            regime,
            fault_template: Some(fault),
            ..ManagedGpu::healthy(id)
        }
    }

    /// The fault (if any) affecting a run starting now. Varies the mask by
    /// the run counter so repeated executions corrupt differently.
    pub fn fault_for_run(&self, now: u64) -> Option<ArmedFault> {
        if !self.regime.active(now) {
            return None;
        }
        let t = self.fault_template?;
        let rot = (self.runs % 13) as u32;
        Some(ArmedFault {
            mask: t.mask.rotate_left(rot).max(1),
            ..t
        })
    }

    /// Account for one completed (or killed) run.
    pub fn note_run(&mut self) {
        self.runs += 1;
        self.regime.consume_run();
    }
}

/// Initial probe back-off, in simulated cycles.
pub const INITIAL_BACKOFF: u64 = 1_000_000;

/// A node with several GPUs and a simulated clock.
#[derive(Debug, Clone)]
pub struct Cluster {
    /// The devices.
    pub gpus: Vec<ManagedGpu>,
    /// Simulated time (advanced by executed kernel cycles).
    pub now: u64,
}

impl Cluster {
    /// A node of `n` healthy GPUs.
    pub fn healthy(n: usize) -> Self {
        Cluster {
            gpus: (0..n).map(ManagedGpu::healthy).collect(),
            now: 0,
        }
    }

    /// Pick the first enabled device.
    pub fn pick_enabled(&self) -> Option<usize> {
        self.gpus.iter().find(|g| g.enabled).map(|g| g.id)
    }

    /// Disable a device and schedule its first back-off probe.
    pub fn disable(&mut self, id: usize) {
        let g = &mut self.gpus[id];
        g.enabled = false;
        g.backoff = INITIAL_BACKOFF;
        g.next_probe = self.now + g.backoff;
    }

    /// Advance the clock.
    pub fn advance(&mut self, cycles: u64) {
        self.now += cycles;
    }

    /// The back-off daemon: probe every disabled device whose probe time has
    /// arrived; re-enable those whose BIST passes, double the back-off of
    /// those still failing (§VI: "Tbackoff is doubled after every execution
    /// of this program"). Returns the ids re-enabled.
    pub fn backoff_daemon_tick(&mut self) -> Vec<usize> {
        let now = self.now;
        let mut reenabled = Vec::new();
        for g in &mut self.gpus {
            if g.enabled || now < g.next_probe {
                continue;
            }
            if run_bist(g, now) {
                g.enabled = true;
                reenabled.push(g.id);
            } else {
                g.backoff = g.backoff.saturating_mul(2);
                g.next_probe = now + g.backoff;
            }
        }
        reenabled
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hauberk_sim::fault::FaultSite;

    fn fault() -> ArmedFault {
        ArmedFault {
            site: FaultSite::HookTarget { site: 0 },
            thread: 0,
            occurrence: 1,
            mask: 0b100,
        }
    }

    #[test]
    fn fault_varies_by_run_while_active() {
        let mut g = ManagedGpu::faulty(0, FaultRegime::Permanent, fault());
        let m0 = g.fault_for_run(0).unwrap().mask;
        g.note_run();
        let m1 = g.fault_for_run(0).unwrap().mask;
        assert_ne!(m0, m1, "intermittent/permanent faults vary per run");
        let h = ManagedGpu::healthy(1);
        assert!(h.fault_for_run(0).is_none());
    }

    #[test]
    fn backoff_doubles_until_fault_clears() {
        let mut c = Cluster::healthy(1);
        c.gpus[0] = ManagedGpu::faulty(
            0,
            FaultRegime::Intermittent {
                until: 5 * INITIAL_BACKOFF,
            },
            fault(),
        );
        c.disable(0);
        assert_eq!(c.pick_enabled(), None);

        // First probe: still faulty.
        c.advance(INITIAL_BACKOFF);
        assert!(c.backoff_daemon_tick().is_empty());
        assert_eq!(c.gpus[0].backoff, 2 * INITIAL_BACKOFF);

        // Second probe (after doubled backoff): still faulty.
        c.advance(2 * INITIAL_BACKOFF);
        assert!(c.backoff_daemon_tick().is_empty());
        assert_eq!(c.gpus[0].backoff, 4 * INITIAL_BACKOFF);

        // Third probe: the fault has expired; device re-enabled.
        c.advance(4 * INITIAL_BACKOFF);
        assert_eq!(c.backoff_daemon_tick(), vec![0]);
        assert_eq!(c.pick_enabled(), Some(0));
    }

    #[test]
    fn permanent_fault_never_reenabled() {
        let mut c = Cluster::healthy(2);
        c.gpus[0] = ManagedGpu::faulty(0, FaultRegime::Permanent, fault());
        c.disable(0);
        assert_eq!(c.pick_enabled(), Some(1), "work migrates to device 1");
        for _ in 0..6 {
            c.advance(c.gpus[0].backoff);
            assert!(c.backoff_daemon_tick().is_empty());
        }
        assert!(!c.gpus[0].enabled);
    }
}
