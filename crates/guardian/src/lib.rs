#![warn(missing_docs)]

//! # hauberk-guardian — retry-based error recovery (§VI)
//!
//! The guardian program of the Hauberk framework: a supervisor that runs the
//! instrumented GPU program, diagnoses raised SDC alarms by re-execution
//! (Fig. 11), identifies false positives and feeds them back into the value
//! ranges (on-line learning), kills hung kernels via a `T×previous` watchdog,
//! diagnoses devices with a built-in self test (BIST), disables faulty
//! devices and migrates work across a simulated multi-GPU node with a
//! doubling probe back-off, and recalibrates detector ranges via the `alpha`
//! multiplier when the observed false-positive ratio drifts.
//!
//! In the original system the guardian is a parent OS process notified via
//! `SIGCHLD`; here the supervised "process" is a simulated program run whose
//! outcome is a value, so the diagnosis *algorithm* is identical while the
//! transport is an in-process call.

pub mod alpha;
pub mod bist;
pub mod checkpoint;
pub mod cluster;
pub mod guardian;
pub mod regime;

pub use alpha::{AlphaConfig, AlphaController};
pub use checkpoint::Checkpoint;
pub use cluster::{Cluster, ManagedGpu};
pub use guardian::{Guardian, GuardianConfig, GuardianEvent, RecoveryOutcome};
pub use regime::FaultRegime;
