//! Device fault regimes: the transient / intermittent / permanent taxonomy
//! the recovery engine diagnoses (§VI ii).

/// The health regime of one simulated GPU device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultRegime {
    /// No hardware fault.
    Healthy,
    /// A transient fault affecting the next `remaining` program run(s) —
    /// typically 1: gone by the diagnostic re-execution.
    Transient {
        /// Runs still affected.
        remaining: u32,
    },
    /// An intermittent fault active until simulated time `until` — both the
    /// first execution and the re-execution are corrupted (differently), but
    /// the fault eventually clears and the back-off daemon re-enables the
    /// device.
    Intermittent {
        /// Simulated-cycle timestamp at which the fault disappears.
        until: u64,
    },
    /// A permanent fault: every run and every BIST probe fails.
    Permanent,
}

impl FaultRegime {
    /// Whether a run starting at simulated time `now` is affected.
    pub fn active(&self, now: u64) -> bool {
        match self {
            FaultRegime::Healthy => false,
            FaultRegime::Transient { remaining } => *remaining > 0,
            FaultRegime::Intermittent { until } => now < *until,
            FaultRegime::Permanent => true,
        }
    }

    /// Account for one affected run (consumes transient charges).
    pub fn consume_run(&mut self) {
        if let FaultRegime::Transient { remaining } = self {
            *remaining = remaining.saturating_sub(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transient_clears_after_consumption() {
        let mut r = FaultRegime::Transient { remaining: 1 };
        assert!(r.active(0));
        r.consume_run();
        assert!(!r.active(0));
        r.consume_run(); // idempotent at zero
        assert!(!r.active(0));
    }

    #[test]
    fn intermittent_clears_with_time() {
        let r = FaultRegime::Intermittent { until: 100 };
        assert!(r.active(50));
        assert!(!r.active(100));
    }

    #[test]
    fn permanent_never_clears() {
        let mut r = FaultRegime::Permanent;
        r.consume_run();
        assert!(r.active(u64::MAX - 1));
    }
}
