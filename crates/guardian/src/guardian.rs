//! The guardian process and the error diagnosis & tolerance algorithm of the
//! paper's Fig. 11.

use crate::alpha::{AlphaConfig, AlphaController};
use crate::bist::run_bist;
use crate::cluster::Cluster;
use hauberk::control::ControlBlock;
use hauberk::program::{run_program_traced, CorrectnessSpec, HostProgram, ProgramRun};
use hauberk::ranges::RangeSet;
use hauberk::runtime::FiFtRuntime;
use hauberk_kir::KernelDef;
use hauberk_sim::LaunchOutcome;
use hauberk_telemetry::{Event, Telemetry};

/// Guardian configuration.
#[derive(Debug, Clone, Copy)]
pub struct GuardianConfig {
    /// Hang watchdog factor `T`: a run is killed when it exceeds `T×` the
    /// previous execution time (§VI i; paper default 10).
    pub watchdog_factor: u64,
    /// Absolute watchdog floor in cycles (the paper's "certain time
    /// interval (e.g., 1 minute)"), also used for the first run.
    pub watchdog_floor: u64,
    /// Consecutive failures on the same kernel/input before device
    /// diagnosis (paper: 2).
    pub failures_before_diagnosis: u32,
    /// Total attempts before giving up.
    pub max_attempts: u32,
    /// Whether the supervised program is nondeterministic: outputs within
    /// twice the correctness requirement still count as "identical" (§VI
    /// ii.a's conservative rule).
    pub nondeterministic: bool,
}

impl Default for GuardianConfig {
    fn default() -> Self {
        GuardianConfig {
            watchdog_factor: 10,
            watchdog_floor: 40_000_000,
            failures_before_diagnosis: 2,
            max_attempts: 8,
            nondeterministic: false,
        }
    }
}

/// Log of what the guardian did (drives tests and the experiment reports).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GuardianEvent {
    /// A run started on a device.
    RunStarted {
        /// Device id.
        device: usize,
    },
    /// The kernel crashed (detected by the GPU runtime).
    CrashDetected,
    /// The watchdog killed a hung/delayed kernel.
    HangKilled,
    /// The program was restarted after a failure.
    Restarted,
    /// An SDC alarm was reported by the detectors.
    AlarmRaised,
    /// The diagnostic re-execution ran.
    Reexecuted,
    /// Both executions alarmed with identical outputs: false positive;
    /// ranges updated (on-line learning).
    FalseAlarmDiagnosed,
    /// The re-execution was clean: transient fault tolerated.
    TransientTolerated,
    /// BIST ran on a device.
    BistRun {
        /// Device id.
        device: usize,
        /// Whether it passed.
        passed: bool,
    },
    /// A device was disabled.
    DeviceDisabled {
        /// Device id.
        device: usize,
    },
    /// Execution migrated to another device.
    Migrated {
        /// New device id.
        to: usize,
    },
    /// Repeated inconsistent behaviour with healthy hardware.
    UnsupportedSoftware,
}

impl GuardianEvent {
    /// Stable snake-case step name, used in telemetry traces.
    pub fn action(&self) -> &'static str {
        match self {
            GuardianEvent::RunStarted { .. } => "run_started",
            GuardianEvent::CrashDetected => "crash_detected",
            GuardianEvent::HangKilled => "hang_killed",
            GuardianEvent::Restarted => "restarted",
            GuardianEvent::AlarmRaised => "alarm_raised",
            GuardianEvent::Reexecuted => "reexecuted",
            GuardianEvent::FalseAlarmDiagnosed => "false_alarm_diagnosed",
            GuardianEvent::TransientTolerated => "transient_tolerated",
            GuardianEvent::BistRun { passed: true, .. } => "bist_passed",
            GuardianEvent::BistRun { passed: false, .. } => "bist_failed",
            GuardianEvent::DeviceDisabled { .. } => "device_disabled",
            GuardianEvent::Migrated { .. } => "migrated",
            GuardianEvent::UnsupportedSoftware => "unsupported_software",
        }
    }

    /// Device ordinal the step applies to, when it is device-specific.
    pub fn device(&self) -> Option<usize> {
        match self {
            GuardianEvent::RunStarted { device }
            | GuardianEvent::BistRun { device, .. }
            | GuardianEvent::DeviceDisabled { device } => Some(*device),
            GuardianEvent::Migrated { to } => Some(*to),
            _ => None,
        }
    }
}

/// Final outcome of a guarded execution.
#[derive(Debug, Clone, PartialEq)]
pub enum RecoveryOutcome {
    /// The program produced a trusted output.
    Success {
        /// The accepted output.
        output: Vec<f64>,
        /// Device that produced it.
        device: usize,
        /// Total program runs consumed.
        runs: u32,
        /// Whether a false alarm was diagnosed along the way.
        false_alarm: bool,
    },
    /// Healthy hardware but irreproducible behaviour: the paper reports an
    /// unsupported-software error (bug or nondeterminism).
    UnsupportedSoftware,
    /// No enabled device remained / attempts exhausted.
    Exhausted,
}

/// The guardian.
#[derive(Debug)]
pub struct Guardian {
    /// Configuration.
    pub cfg: GuardianConfig,
    /// The GPU node.
    pub cluster: Cluster,
    /// The adaptive range controller.
    pub alpha: AlphaController,
    /// Event log.
    pub events: Vec<GuardianEvent>,
    /// Telemetry handle (disabled by default): every logged
    /// [`GuardianEvent`] is mirrored as an [`Event::Guardian`], and the
    /// supervised launches emit kernel/detector/fault events.
    pub tele: Telemetry,
    prev_cycles: Option<u64>,
}

impl Guardian {
    /// A guardian over `cluster`.
    pub fn new(cfg: GuardianConfig, cluster: Cluster) -> Self {
        Guardian {
            cfg,
            cluster,
            alpha: AlphaController::new(AlphaConfig::default()),
            events: Vec::new(),
            tele: Telemetry::disabled(),
            prev_cycles: None,
        }
    }

    /// Attach a telemetry handle.
    pub fn with_telemetry(mut self, tele: Telemetry) -> Self {
        self.tele = tele;
        self
    }

    /// Record a guardian step in the event log and the telemetry trace.
    fn log(&mut self, ev: GuardianEvent) {
        self.tele.emit_with(|| Event::Guardian {
            action: ev.action().to_string(),
            device: ev.device().map_or(-1, |d| d as i64),
        });
        self.events.push(ev);
    }

    fn watchdog_budget(&self) -> u64 {
        match self.prev_cycles {
            Some(c) => (c.saturating_mul(self.cfg.watchdog_factor)).max(self.cfg.watchdog_floor),
            None => self.cfg.watchdog_floor,
        }
    }

    /// Execute once on `device`; returns the run and the control block.
    fn execute(
        &mut self,
        prog: &dyn HostProgram,
        kernel: &KernelDef,
        ranges: &[RangeSet],
        dataset: u64,
        device: usize,
    ) -> (ProgramRun, ControlBlock) {
        self.log(GuardianEvent::RunStarted { device });
        let effective: Vec<RangeSet> = ranges
            .iter()
            .map(|r| r.apply_alpha(self.alpha.alpha()))
            .collect();
        let fault = self.cluster.gpus[device].fault_for_run(self.cluster.now);
        let cb = ControlBlock::with_ranges(effective);
        let mut rt = FiFtRuntime::new(fault, cb).with_telemetry(self.tele.clone());
        let run = run_program_traced(
            prog,
            kernel,
            dataset,
            &mut rt,
            self.watchdog_budget(),
            &self.tele,
        );
        self.cluster.gpus[device].note_run();
        self.cluster
            .advance(run.outcome.stats().kernel_cycles.max(1));
        if let LaunchOutcome::Completed(stats) = &run.outcome {
            // Watchdog budgets are in work cycles (the interpreter's
            // progress metric); kernel time drives the cluster clock.
            self.prev_cycles = Some(stats.work_cycles);
        }
        (run, rt.cb)
    }

    fn diagnose_device(&mut self, device: usize) -> bool {
        let passed = run_bist(&self.cluster.gpus[device], self.cluster.now);
        self.log(GuardianEvent::BistRun { device, passed });
        if !passed {
            self.cluster.disable(device);
            self.log(GuardianEvent::DeviceDisabled { device });
        }
        passed
    }

    /// Run `prog` (its FT build `kernel` with profiled `ranges`) under full
    /// guardian protection, implementing Fig. 11. On a diagnosed false
    /// positive the `ranges` are updated in place (on-line learning).
    pub fn run_protected(
        &mut self,
        prog: &dyn HostProgram,
        kernel: &KernelDef,
        ranges: &mut Vec<RangeSet>,
        dataset: u64,
    ) -> RecoveryOutcome {
        let spec = prog.spec();
        let mut consecutive_failures = 0u32;
        let mut current_device = match self.cluster.pick_enabled() {
            Some(d) => d,
            None => return RecoveryOutcome::Exhausted,
        };
        let mut runs = 0u32;

        for _attempt in 0..self.cfg.max_attempts {
            let (run1, cb1) = self.execute(prog, kernel, ranges, dataset, current_device);
            runs += 1;
            match &run1.outcome {
                LaunchOutcome::Crash { .. } | LaunchOutcome::Hang { .. } => {
                    self.log(if run1.outcome.is_completed() {
                        unreachable!()
                    } else if matches!(run1.outcome, LaunchOutcome::Hang { .. }) {
                        GuardianEvent::HangKilled
                    } else {
                        GuardianEvent::CrashDetected
                    });
                    consecutive_failures += 1;
                    if consecutive_failures >= self.cfg.failures_before_diagnosis {
                        consecutive_failures = 0;
                        if self.diagnose_device(current_device) {
                            self.log(GuardianEvent::UnsupportedSoftware);
                            return RecoveryOutcome::UnsupportedSoftware;
                        }
                        match self.cluster.pick_enabled() {
                            Some(d) => {
                                self.log(GuardianEvent::Migrated { to: d });
                                current_device = d;
                            }
                            None => return RecoveryOutcome::Exhausted,
                        }
                    } else {
                        self.log(GuardianEvent::Restarted);
                    }
                    continue;
                }
                LaunchOutcome::Completed(_) => {
                    consecutive_failures = 0;
                    let out1 = run1.output.clone().expect("completed run has output");
                    if !cb1.sdc_flag {
                        self.alpha.observe(false);
                        return RecoveryOutcome::Success {
                            output: out1,
                            device: current_device,
                            runs,
                            false_alarm: false,
                        };
                    }
                    // SDC alarm: diagnose by re-execution.
                    self.log(GuardianEvent::AlarmRaised);
                    let (run2, mut cb2) =
                        self.execute(prog, kernel, ranges, dataset, current_device);
                    runs += 1;
                    self.log(GuardianEvent::Reexecuted);
                    match &run2.outcome {
                        LaunchOutcome::Crash { .. } | LaunchOutcome::Hang { .. } => {
                            consecutive_failures += 1;
                            self.log(GuardianEvent::Restarted);
                            continue;
                        }
                        LaunchOutcome::Completed(_) => {
                            let out2 = run2.output.clone().expect("completed run has output");
                            if !cb2.sdc_flag {
                                // (b) transient/short-intermittent fault:
                                // take the clean re-execution's result.
                                self.log(GuardianEvent::TransientTolerated);
                                self.alpha.observe(false);
                                return RecoveryOutcome::Success {
                                    output: out2,
                                    device: current_device,
                                    runs,
                                    false_alarm: false,
                                };
                            }
                            if outputs_identical(&spec, &out1, &out2, self.cfg.nondeterministic) {
                                // (a) false alarm: learn the outlier values.
                                self.log(GuardianEvent::FalseAlarmDiagnosed);
                                cb2.learn_outliers();
                                *ranges = cb2.ranges;
                                self.alpha.observe(true);
                                return RecoveryOutcome::Success {
                                    output: out1,
                                    device: current_device,
                                    runs,
                                    false_alarm: true,
                                };
                            }
                            // (c) long intermittent / permanent fault.
                            if self.diagnose_device(current_device) {
                                self.log(GuardianEvent::UnsupportedSoftware);
                                return RecoveryOutcome::UnsupportedSoftware;
                            }
                            match self.cluster.pick_enabled() {
                                Some(d) => {
                                    self.log(GuardianEvent::Migrated { to: d });
                                    current_device = d;
                                }
                                None => return RecoveryOutcome::Exhausted,
                            }
                        }
                    }
                }
            }
        }
        RecoveryOutcome::Exhausted
    }
}

/// The §VI ii.a identity rule: exact equality for deterministic programs;
/// within twice the correctness requirement for nondeterministic ones.
pub fn outputs_identical(
    spec: &CorrectnessSpec,
    a: &[f64],
    b: &[f64],
    nondeterministic: bool,
) -> bool {
    if !nondeterministic {
        return a == b;
    }
    let doubled = match *spec {
        CorrectnessSpec::Exact => CorrectnessSpec::Exact,
        CorrectnessSpec::RelAbs { rel, abs } => CorrectnessSpec::RelAbs {
            rel: 2.0 * rel,
            abs: 2.0 * abs,
        },
        CorrectnessSpec::RelPlusEps { rel, eps } => CorrectnessSpec::RelPlusEps {
            rel: 2.0 * rel,
            eps: 2.0 * eps,
        },
        CorrectnessSpec::MriStyle {
            global_rel,
            elem_rel,
        } => CorrectnessSpec::MriStyle {
            global_rel: 2.0 * global_rel,
            elem_rel: 2.0 * elem_rel,
        },
        CorrectnessSpec::GraphicsNoticeable {
            pixel_tol,
            min_bad_pixels,
        } => CorrectnessSpec::GraphicsNoticeable {
            pixel_tol: 2.0 * pixel_tol,
            min_bad_pixels,
        },
    };
    !doubled.is_violation(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regime::FaultRegime;
    use hauberk::builds::{build, BuildVariant, FtOptions};
    use hauberk::program::{golden_run, run_program};
    use hauberk::runtime::ProfilerRuntime;
    use hauberk_benchmarks::cp::Cp;
    use hauberk_benchmarks::ProblemScale;
    use hauberk_sim::fault::{ArmedFault, FaultSite};

    /// Profile CP and hand back (FT kernel, trained ranges, an in-loop FP
    /// fault that reliably trips the range detector).
    fn cp_setup() -> (Cp, KernelDef, Vec<RangeSet>, ArmedFault) {
        let prog = Cp::new(ProblemScale::Quick);
        let base = prog.build_kernel();
        let profiler = build(&base, BuildVariant::Profiler(FtOptions::default())).unwrap();
        let mut pr = ProfilerRuntime::default();
        let run = run_program(&prog, &profiler.kernel, 0, &mut pr, u64::MAX);
        assert!(run.outcome.is_completed());
        let ranges: Vec<RangeSet> = (0..profiler.detectors.len())
            .map(|d| hauberk::ranges::profile_ranges(pr.samples(d as u32)))
            .collect();
        let fift = build(&base, BuildVariant::FiFt(FtOptions::default())).unwrap();
        // Fault: blow up the protected energy accumulator in thread 3.
        let site = fift
            .fi
            .sites
            .iter()
            .find(|s| s.var_name.starts_with("energyx") && s.in_loop)
            .expect("CP has energy FI sites");
        let fault = ArmedFault {
            site: FaultSite::HookTarget { site: site.site },
            thread: 3,
            occurrence: 5,
            mask: 0x6000_0000, // high exponent bits: astronomically large change
        };
        (prog, fift.kernel, ranges, fault)
    }

    fn guardian(cluster: Cluster) -> Guardian {
        Guardian::new(
            GuardianConfig {
                watchdog_floor: 20_000_000,
                ..Default::default()
            },
            cluster,
        )
    }

    #[test]
    fn healthy_run_passes_straight_through() {
        let (prog, kernel, mut ranges, _) = cp_setup();
        let mut g = guardian(Cluster::healthy(2));
        let (golden, _) = golden_run(&prog, 0);
        match g.run_protected(&prog, &kernel, &mut ranges, 0) {
            RecoveryOutcome::Success {
                output,
                runs,
                false_alarm,
                ..
            } => {
                assert_eq!(runs, 1);
                assert!(!false_alarm);
                assert_eq!(output, golden);
            }
            other => panic!("{other:?}"),
        }
        assert!(!g.events.contains(&GuardianEvent::AlarmRaised));
    }

    #[test]
    fn transient_fault_is_tolerated_by_reexecution() {
        let (prog, kernel, mut ranges, fault) = cp_setup();
        let mut cluster = Cluster::healthy(2);
        cluster.gpus[0] =
            crate::cluster::ManagedGpu::faulty(0, FaultRegime::Transient { remaining: 1 }, fault);
        let mut g = guardian(cluster);
        let (golden, _) = golden_run(&prog, 0);
        match g.run_protected(&prog, &kernel, &mut ranges, 0) {
            RecoveryOutcome::Success { output, runs, .. } => {
                assert_eq!(runs, 2, "one faulted run + one clean re-execution");
                assert_eq!(output, golden, "re-execution output accepted");
            }
            other => panic!("{other:?}"),
        }
        assert!(g.events.contains(&GuardianEvent::AlarmRaised));
        assert!(g.events.contains(&GuardianEvent::TransientTolerated));
    }

    #[test]
    fn permanent_fault_disables_device_and_migrates() {
        let (prog, kernel, mut ranges, fault) = cp_setup();
        let mut cluster = Cluster::healthy(2);
        cluster.gpus[0] = crate::cluster::ManagedGpu::faulty(0, FaultRegime::Permanent, fault);
        let mut g = guardian(cluster);
        let (golden, _) = golden_run(&prog, 0);
        match g.run_protected(&prog, &kernel, &mut ranges, 0) {
            RecoveryOutcome::Success { output, device, .. } => {
                assert_eq!(device, 1, "work migrated to the healthy device");
                assert_eq!(output, golden);
            }
            other => panic!("{other:?}"),
        }
        assert!(g
            .events
            .contains(&GuardianEvent::DeviceDisabled { device: 0 }));
        assert!(g.events.contains(&GuardianEvent::Migrated { to: 1 }));
        assert!(!g.cluster.gpus[0].enabled);
    }

    #[test]
    fn false_alarm_is_diagnosed_and_learned() {
        let (prog, kernel, trained, _) = cp_setup();
        // Deliberately under-trained ranges (one per detector): a tiny range
        // that the real averages fall outside of.
        let mut ranges = vec![hauberk::ranges::profile_ranges(&[1e-30]); trained.len()];
        let mut g = guardian(Cluster::healthy(1));
        match g.run_protected(&prog, &kernel, &mut ranges, 0) {
            RecoveryOutcome::Success {
                runs, false_alarm, ..
            } => {
                assert!(false_alarm);
                assert_eq!(runs, 2);
            }
            other => panic!("{other:?}"),
        }
        assert!(g.events.contains(&GuardianEvent::FalseAlarmDiagnosed));
        // On-line learning: the updated ranges accept the program now.
        let mut g2 = guardian(Cluster::healthy(1));
        match g2.run_protected(&prog, &kernel, &mut ranges, 0) {
            RecoveryOutcome::Success {
                runs, false_alarm, ..
            } => {
                assert_eq!(runs, 1, "learned ranges: no alarm on the retry");
                assert!(!false_alarm);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn deterministic_software_crash_is_reported_as_unsupported() {
        use hauberk::program::{CorrectnessSpec, MemBreakdown};
        use hauberk_kir::parser::parse_kernel;
        use hauberk_kir::{PrimTy, Value};
        use hauberk_sim::{Device, Launch};

        /// A buggy program: every run crashes (wild store beyond the device
        /// address space) — the paper's "unsupported SW error (either has a
        /// bug or is undeterministic)" leaf of Fig. 11.
        struct Buggy;
        impl hauberk::program::HostProgram for Buggy {
            fn name(&self) -> &'static str {
                "buggy"
            }
            fn build_kernel(&self) -> KernelDef {
                parse_kernel(
                    r#"kernel b(out: *global f32) {
                        store(out, 100000000, 1.0);
                    }"#,
                )
                .unwrap()
            }
            fn launch(&self) -> Launch {
                Launch::grid1d(1, 1)
            }
            fn setup(&self, dev: &mut Device, _dataset: u64) -> Vec<Value> {
                vec![Value::Ptr(dev.alloc(PrimTy::F32, 16))]
            }
            fn read_output(&self, dev: &Device, args: &[Value]) -> Vec<f64> {
                dev.mem
                    .copy_out_f32(args[0].as_ptr().unwrap(), 16)
                    .into_iter()
                    .map(|v| v as f64)
                    .collect()
            }
            fn spec(&self) -> CorrectnessSpec {
                CorrectnessSpec::Exact
            }
            fn memory_breakdown(&self) -> MemBreakdown {
                MemBreakdown::default()
            }
        }

        let mut g = guardian(Cluster::healthy(2));
        let kernel = Buggy.build_kernel();
        let mut ranges = vec![];
        match g.run_protected(&Buggy, &kernel, &mut ranges, 0) {
            RecoveryOutcome::UnsupportedSoftware => {}
            other => panic!("{other:?}"),
        }
        // Two failures, then a BIST that passes (the hardware is fine).
        assert!(g.events.contains(&GuardianEvent::Restarted));
        assert!(g.events.contains(&GuardianEvent::BistRun {
            device: 0,
            passed: true
        }));
        assert!(g.events.contains(&GuardianEvent::UnsupportedSoftware));
        assert!(g.cluster.gpus[0].enabled, "healthy device stays enabled");
    }

    #[test]
    fn outputs_identical_rules() {
        let spec = CorrectnessSpec::RelAbs {
            rel: 0.01,
            abs: 0.0,
        };
        let a = vec![100.0, 200.0];
        let near = vec![100.5, 200.0];
        assert!(outputs_identical(&spec, &a, &a, false));
        assert!(!outputs_identical(&spec, &a, &near, false));
        assert!(outputs_identical(&spec, &a, &near, true), "within 2x spec");
        let far = vec![150.0, 200.0];
        assert!(!outputs_identical(&spec, &a, &far, true));
    }
}
