//! Checkpointing (§VI i, after CheCUDA \[25\]): snapshot device memory before
//! a kernel launch so a failed run can be retried from identical state — a
//! kernel that mutates its inputs in place (TPACF's histogram, the sort
//! programs) cannot simply be re-launched on dirty memory.

use hauberk_sim::memory::MemRegion;
use hauberk_sim::Device;
use hauberk_telemetry::{Event, Telemetry};

/// A snapshot of a device's global memory.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    mem: MemRegion,
}

impl Checkpoint {
    /// Capture the device's current global memory (allocations + contents).
    pub fn capture(dev: &Device) -> Checkpoint {
        Checkpoint {
            mem: dev.mem.clone(),
        }
    }

    /// [`Checkpoint::capture`] with an [`Event::Checkpoint`] trace record.
    pub fn capture_traced(dev: &Device, tele: &Telemetry) -> Checkpoint {
        let ckpt = Checkpoint::capture(dev);
        tele.emit_with(|| Event::Checkpoint {
            action: "capture",
            words: ckpt.words(),
        });
        ckpt
    }

    /// Restore the snapshot onto the device.
    pub fn restore(&self, dev: &mut Device) {
        dev.mem = self.mem.clone();
    }

    /// [`Checkpoint::restore`] with an [`Event::Checkpoint`] trace record.
    pub fn restore_traced(&self, dev: &mut Device, tele: &Telemetry) {
        self.restore(dev);
        tele.emit_with(|| Event::Checkpoint {
            action: "restore",
            words: self.words(),
        });
    }

    /// 32-bit words of device memory the snapshot covers (allocated bytes
    /// rounded up to whole words).
    pub fn words(&self) -> u64 {
        (self.mem.allocated() as u64).div_ceil(4)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hauberk_kir::PrimTy;

    #[test]
    fn capture_restore_round_trips_memory() {
        let mut dev = Device::small_gpu();
        let p = dev.alloc(PrimTy::I32, 8);
        dev.mem.copy_in_i32(p, &[1, 2, 3, 4, 5, 6, 7, 8]);
        let ckpt = Checkpoint::capture(&dev);

        // Kernel-side mutation.
        dev.mem.copy_in_i32(p, &[9, 9, 9, 9, 9, 9, 9, 9]);
        assert_eq!(dev.mem.copy_out_i32(p, 3), vec![9, 9, 9]);

        ckpt.restore(&mut dev);
        assert_eq!(dev.mem.copy_out_i32(p, 8), vec![1, 2, 3, 4, 5, 6, 7, 8]);
        // Allocator state restored too: the next alloc lands after p's block.
        let q = dev.alloc(PrimTy::I32, 1);
        assert!(q.addr > p.addr);
    }
}
